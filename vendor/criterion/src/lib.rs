//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs a warm-up
//! iteration, then as many timed iterations as fit in a small budget
//! (~200 ms, at most 50), and prints the mean. That is enough to compare
//! the paper's "Algorithm 1 vs Algorithm 2" orders of magnitude without
//! minutes-long bench runs; it makes no confidence-interval claims.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering (`BenchmarkId::new("algorithm2", n)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), param: Some(param.to_string()) }
    }

    /// An id carrying only a parameter (unnamed function).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { name: String::new(), param: Some(param.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.param {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), param: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, param: None }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine` within the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocations out of the measurement).
        black_box(routine());
        let budget = Duration::from_millis(200);
        let max_iters = 50u64;
        let started = Instant::now();
        while self.iters < max_iters && started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// One named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stand-in sizes runs by a time
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.iters == 0 {
        println!("{label:<40} (warm-up only; routine exceeded budget)");
    } else {
        let mean = b.total / b.iters as u32;
        println!("{label:<40} mean {mean:>12.3?}   ({} iters)", b.iters);
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &BenchmarkId::from(name), f);
        self
    }
}

/// Bundles benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` calling each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
