//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *small* slice of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen_range` / `gen_bool` / `gen`. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, deterministic,
//! and dependency-free. It is **not** cryptographically secure, exactly
//! like the real `StdRng` contract does not promise reproducibility
//! across versions; this stand-in *does* promise reproducibility, which
//! the experiment harness relies on.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator seedable from integers.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the `rand 0.8` methods used here.
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The raw 64-bit source every other method builds on.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Largest multiple of `span` representable in the 64- or 128-bit draw.
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let zone = u128::MAX - (u128::MAX % span + 1) % span;
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.72)).count();
        assert!((68_000..76_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
