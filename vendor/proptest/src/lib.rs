//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest 1.x API its property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * integer range strategies (`0usize..10`, `1u32..=300`, …), tuples of
//!   strategies, [`any`], [`collection::vec`], and [`Just`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros;
//! * [`prelude::ProptestConfig`] with `with_cases`.
//!
//! Semantics: each generated test runs `cases` deterministic random
//! inputs (seeded per test name, so failures reproduce across runs) and
//! panics with the offending case index on the first failed assertion.
//! Unlike real proptest there is **no shrinking** and no persistence
//! file; a failure reports the raw case. Inputs rejected by
//! [`prop_assume!`] are resampled without counting against the case
//! budget (up to a 20× attempt cap).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 128 bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform draw from `[0, span)`; `span == 0` means the full 128-bit
    /// range. Rejection sampling, so there is no modulo bias.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        if span == 0 {
            return self.next_u128();
        }
        if span == 1 {
            return 0;
        }
        let zone = u128::MAX - (u128::MAX % span + 1) % span;
        loop {
            let v = self.next_u128();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Outcome of one test case body.
pub mod test_runner {
    /// Why a case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The input was rejected by `prop_assume!` — resample, don't fail.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing outcome with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected-input outcome with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; see [`Config::with_cases`].
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

/// Generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of one type.
    ///
    /// This stand-in keeps proptest's composition surface (`prop_map`,
    /// tuples, `collection::vec`) but samples directly instead of
    /// building value trees: there is no shrinking.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub use strategy::{Just, Strategy};

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add(rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                (lo as i128).wrapping_add(rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128 spans don't fit the i128 arithmetic above; handle them directly.
impl Strategy for Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.below_u128((hi - lo).wrapping_add(1))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a parameter-free ("arbitrary") strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers subnormals, infinities and NaNs, which
        // is what round-trip properties want to see.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_incl: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_incl: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_incl: n }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min + 1) as u128;
            let len = self.size.min + rng.below_u128(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one case body; exists so the [`proptest!`] expansion has a typed
/// seam for `return Err(...)` from the assertion macros.
pub fn run_case<F>(f: F) -> Result<(), test_runner::TestCaseError>
where
    F: FnOnce() -> Result<(), test_runner::TestCaseError>,
{
    f()
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __strats = ($($strat,)+);
                let mut __rng =
                    $crate::TestRng::seed_from_u64($crate::seed_for(stringify!($name)));
                let mut __done: u32 = 0;
                let mut __attempts: u64 = 0;
                let __max_attempts = (__config.cases as u64).saturating_mul(20).max(20);
                while __done < __config.cases {
                    if __attempts >= __max_attempts {
                        panic!(
                            "proptest `{}`: too many rejected inputs ({} attempts for {} cases)",
                            stringify!($name), __attempts, __config.cases
                        );
                    }
                    __attempts += 1;
                    let __case = __attempts - 1;
                    let ($($pat,)+) =
                        $crate::Strategy::sample(&__strats, &mut __rng);
                    match $crate::run_case(move || { $body Ok(()) }) {
                        Ok(()) => { __done += 1; }
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case #{__case}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Rejects the current input (resampled without counting as a case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (1u32..=10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((6..=15).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = collection::vec(0i32..3, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..3).contains(&x)));
        }
    }

    #[test]
    fn signed_inclusive_ranges() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn u128_wide_range() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = (0u128..=u32::MAX as u128).sample(&mut rng);
            assert!(v <= u32::MAX as u128);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// The macro pipeline itself: bindings, assume, assert.
        #[test]
        fn macro_end_to_end(a in 1u32..100, (b, c) in (0u32..10, 0u32..10)) {
            prop_assume!(a != 13);
            prop_assert!(a >= 1, "a = {a}");
            prop_assert_eq!(b + c, c + b);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in collection::vec(any::<u64>(), 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::seed_from_u64(9);
        assert_eq!(Just(42u8).sample(&mut rng), 42);
    }
}
