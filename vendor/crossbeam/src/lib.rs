//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the crossbeam 0.8 API it uses: unbounded channels
//! ([`channel::unbounded`], [`channel::Sender`], [`channel::Receiver`])
//! and scoped threads ([`thread::scope`]). Both delegate to the standard
//! library (`std::sync::mpsc`, `std::thread::scope`), which since Rust
//! 1.63 covers everything `gs-minimpi` needs: cloneable senders,
//! blocking receives, and environment-borrowing spawned threads.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Multi-producer single-consumer channels (crossbeam-channel subset).
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of an unbounded channel. Cloneable and `Send`.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a message; never blocks (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads (crossbeam-utils subset).
pub mod thread {
    use std::any::Any;

    /// A handle for spawning threads that may borrow from the caller's
    /// stack frame. Wraps [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. Matching crossbeam's
        /// signature, the closure receives the scope handle (so it could
        /// spawn siblings), which std's closure does not.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Crossbeam returns `Err` with a panic payload when an
    /// *unjoined* child panicked; with std's scope such panics re-raise
    /// instead, so the `Ok` arm is the only one ever produced — callers
    /// that `.unwrap()`/`.expect()` the result behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop((tx, tx2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let mut results = vec![0u64; 3];
        thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in results.iter_mut().enumerate() {
                let data = &data;
                handles.push(s.spawn(move |_| {
                    *slot = data[i] * 10;
                    i
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(results, vec![10, 20, 30]);
    }

    #[test]
    fn panic_propagates_through_join() {
        let caught = std::panic::catch_unwind(|| {
            thread::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            })
            .unwrap();
        });
        assert!(caught.is_err());
    }
}
