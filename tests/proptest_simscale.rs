//! Determinism contract of the million-rank simulation stack
//! (`docs/simulation.md`), property-tested:
//!
//! * the [`CalendarQueue`] pops in exactly the reference `(time, seq)`
//!   order — FIFO among ties — under arbitrary interleaved pushes and
//!   pops on tie-heavy time grids;
//! * the auto-migrating [`Engine`] (heap → calendar past the depth
//!   threshold) and the pure calendar backend fire events in the same
//!   order as the seed's pinned binary heap;
//! * `simulate_scatter_on` produces bit-identical timelines on every
//!   engine backend, and the arena fast path ([`simulate_star`])
//!   matches the classic engine bit for bit on random stars, zero-work
//!   ties included;
//! * the pooled gs-minimpi runtime ([`run_world_pooled`]) is
//!   bit-identical to thread-per-rank [`run_world`] — payloads, virtual
//!   clocks, and communication records — across worker counts, and the
//!   same holds for the fault-tolerant scatter under seeded fault
//!   plans (traces and incidents included).

use std::cell::RefCell;
use std::rc::Rc;

use grid_scatter::gridsim::{
    proportional_counts, simulate_scatter_on, simulate_star, synthetic_star, CalendarQueue,
    Engine, SimConfig,
};
use grid_scatter::minimpi::{run_world, run_world_pooled, FtConfig, TimeModel, WorldConfig};
use grid_scatter::scatter::cost::{CostFn, Processor};
use grid_scatter::scatter::fault::{FaultPlan, RecoveryConfig};
use proptest::prelude::*;

const ITEM_BYTES: u64 = 8;

/// One interleaved queue operation: `Push(delta_step)` schedules at
/// `now + delta_step * 0.25` (step 0 forces ties at the current
/// minimum), `Pop` drains one event.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Push(u8),
    Pop,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    // 3:2 push:pop mix; the vendored proptest has no `prop_oneof`, so
    // weight by hand over a small integer.
    (0u8..5, 0u8..4)
        .prop_map(|(k, d)| if k < 3 { QueueOp::Push(d) } else { QueueOp::Pop })
}

/// A star platform in scatter order (root last, free self-link) with
/// per-worker link and compute slopes drawn from tie-heavy grids.
fn star_procs(p: usize, betas: &[f64], alphas: &[f64]) -> Vec<Processor> {
    (0..p)
        .map(|i| {
            if i == p - 1 {
                Processor::linear("root", 0.0, alphas[i % alphas.len()])
            } else {
                Processor::linear(format!("w{i}"), betas[i % betas.len()], alphas[i % alphas.len()])
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Calendar pops follow the reference min-`(time, seq)` order under
    /// interleaved pushes and pops, with times drawn from a 4-value
    /// grid so every bucket sees collisions.
    #[test]
    fn calendar_pops_in_reference_order(
        ops in proptest::collection::vec(queue_op(), 0..200),
    ) {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        let mut model: Vec<(f64, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        let mut payload = 0u32;
        let mut now = 0.0f64;
        let check_pop = |q: &mut CalendarQueue<u32>, model: &mut Vec<(f64, u64, u32)>,
                             now: &mut f64| {
            // Reference: strict min by (time, seq) — times are finite
            // and non-negative, so partial_cmp is total here.
            let best = model
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
                })
                .map(|(i, _)| i);
            match (q.pop(), best) {
                (None, None) => {}
                (Some((t, s, v)), Some(i)) => {
                    let (mt, ms, mv) = model.remove(i);
                    prop_assert_eq!(t.to_bits(), mt.to_bits(), "pop time");
                    prop_assert_eq!(s, ms, "FIFO among ties");
                    prop_assert_eq!(v, mv, "payload");
                    *now = t;
                }
                (got, want) => {
                    prop_assert!(false, "pop mismatch: queue {got:?} vs model index {want:?}");
                }
            }
            Ok(())
        };
        for op in ops {
            match op {
                QueueOp::Push(step) => {
                    let t = now + f64::from(step) * 0.25;
                    seq += 1;
                    payload += 1;
                    q.push(t, seq, payload);
                    model.push((t, seq, payload));
                }
                QueueOp::Pop => check_pop(&mut q, &mut model, &mut now)?,
            }
        }
        while !model.is_empty() || !q.is_empty() {
            check_pop(&mut q, &mut model, &mut now)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The auto-migrating engine and the pure calendar backend fire
    /// events in exactly the pinned heap's order — enough upfront
    /// events to push the auto engine over its migration threshold,
    /// times from a 16-value grid so ties are everywhere.
    #[test]
    fn engine_backends_fire_in_heap_order(
        steps in proptest::collection::vec(0u8..16, 1100..1400),
    ) {
        let times: Vec<f64> = steps.iter().map(|&s| f64::from(s) * 0.5).collect();
        let run = |mut engine: Engine| -> (Vec<(u64, usize)>, bool) {
            let fired: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
            for (k, &t) in times.iter().enumerate() {
                let fired = Rc::clone(&fired);
                engine.schedule_at(t, move |e| {
                    fired.borrow_mut().push((e.now().to_bits(), k));
                });
            }
            let migrated = engine.is_calendar();
            engine.run();
            (Rc::try_unwrap(fired).unwrap().into_inner(), migrated)
        };
        let (heap_order, heap_migrated) = run(Engine::with_heap_pinned());
        let (auto_order, auto_migrated) = run(Engine::new());
        let (cal_order, _) = run(Engine::with_calendar());
        prop_assert!(!heap_migrated, "pinned engine never migrates");
        prop_assert!(auto_migrated, "depth > threshold must migrate the default engine");
        prop_assert_eq!(&auto_order, &heap_order, "migrated order == heap order");
        prop_assert_eq!(&cal_order, &heap_order, "calendar order == heap order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `simulate_scatter_on` is backend-independent: heap-pinned,
    /// auto, and calendar engines produce bit-identical timelines and
    /// event streams on random heterogeneous stars.
    #[test]
    fn scatter_sim_is_backend_independent(
        p in 2usize..40,
        beta_idx in proptest::collection::vec(0usize..4, 5),
        alpha_idx in proptest::collection::vec(0usize..3, 5),
        per in 1usize..20,
    ) {
        // Discrete slope grids so equal comm/compute durations (ties)
        // occur constantly.
        const BETA_GRID: [f64; 4] = [0.0, 1e-4, 2e-4, 5e-4];
        const ALPHA_GRID: [f64; 3] = [1e-3, 2e-3, 8e-3];
        let betas: Vec<f64> = beta_idx.iter().map(|&i| BETA_GRID[i]).collect();
        let alphas: Vec<f64> = alpha_idx.iter().map(|&i| ALPHA_GRID[i]).collect();
        let procs = star_procs(p, &betas, &alphas);
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![per; p];
        let cfg = SimConfig::ideal();
        let heap = simulate_scatter_on(&view, &counts, &cfg, Engine::with_heap_pinned());
        let auto = simulate_scatter_on(&view, &counts, &cfg, Engine::new());
        let cal = simulate_scatter_on(&view, &counts, &cfg, Engine::with_calendar());
        for other in [&auto, &cal] {
            prop_assert_eq!(heap.makespan.to_bits(), other.makespan.to_bits());
            prop_assert_eq!(&heap.timeline, &other.timeline);
            prop_assert_eq!(heap.events.len(), other.events.len());
        }
    }

    /// The arena fast path matches the classic engine bit for bit on
    /// random stars — zero-work and zero-comm ties included, the same
    /// equivalence `sim_scale` asserts at 10^7 ranks.
    #[test]
    fn fast_path_matches_classic_engine(
        p in 1usize..60,
        grid in proptest::collection::vec((0usize..3, 0usize..3), 6),
        per in 1u64..12,
    ) {
        // Zero entries included: zero-comm and zero-work transfers are
        // where tie-breaking actually decides the event order.
        const BETA_GRID: [f64; 3] = [0.0, 1e-4, 3e-4];
        const ALPHA_GRID: [f64; 3] = [0.0, 2e-3, 7e-3];
        let betas: Vec<f64> = (0..p).map(|i| BETA_GRID[grid[i % grid.len()].0]).collect();
        let alphas: Vec<f64> = (0..p).map(|i| ALPHA_GRID[grid[i % grid.len()].1]).collect();
        let counts: Vec<u64> = vec![per; p];
        let comm: Vec<f64> = betas.iter().zip(&counts).map(|(b, &c)| b * c as f64).collect();
        let work: Vec<f64> = alphas.iter().zip(&counts).map(|(a, &c)| a * c as f64).collect();
        let fast = simulate_star(&comm, &work, true);

        let procs: Vec<Processor> = betas
            .iter()
            .zip(&alphas)
            .enumerate()
            .map(|(i, (&b, &a))| Processor::linear(format!("w{i}"), b, a))
            .collect();
        let view: Vec<&Processor> = procs.iter().collect();
        let counts_usize: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
        let classic =
            simulate_scatter_on(&view, &counts_usize, &SimConfig::ideal(), Engine::with_heap_pinned());

        prop_assert_eq!(fast.makespan.to_bits(), classic.makespan.to_bits());
        prop_assert_eq!(&fast.timeline, &classic.timeline);
        prop_assert_eq!(fast.events.len(), classic.events.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pooled execution is bit-identical to thread-per-rank: same
    /// payloads, same virtual clocks, same communication records — for
    /// any worker count, including a single worker for the scatter-only
    /// (root never blocks) pattern.
    #[test]
    fn pooled_world_matches_thread_per_rank(
        p in 2usize..12,
        threads in 1usize..6,
        per in 1usize..16,
        seed in any::<u64>(),
    ) {
        // Deterministic per-seed heterogeneity on a coarse grid.
        let beta = |i: usize| 1e-4 * ((seed.wrapping_add(i as u64) % 5) + 1) as f64;
        let alpha = |i: usize| 1e-3 * ((seed.wrapping_mul(31).wrapping_add(i as u64) % 7) + 1) as f64;
        let root = p - 1;
        let model = TimeModel {
            link: (0..p).map(|i| CostFn::Linear { slope: if i == root { 0.0 } else { beta(i) } }).collect(),
            compute: (0..p).map(|i| CostFn::Linear { slope: alpha(i) }).collect(),
        };
        let counts = vec![per; p];
        let total = per * p;
        let data: Vec<u64> = (0..total as u64).collect();
        let body = |comm: &mut grid_scatter::minimpi::Comm| {
            comm.enable_tracing();
            let sendbuf = if comm.rank() == root { Some(&data[..]) } else { None };
            let mine = comm.scatterv(root, sendbuf, &counts);
            comm.model_compute(mine.len());
            (mine, comm.now().to_bits(), comm.take_trace())
        };
        let reference = run_world(p, WorldConfig::with_time(model.clone()), body);
        let pooled = run_world_pooled(p, threads, root, WorldConfig::with_time(model), body);
        prop_assert_eq!(&pooled, &reference);
    }

    /// The same bit-identity holds for the fault-tolerant scatter under
    /// seeded fault plans, recovered and degraded mode: payloads,
    /// clocks, traces, and incident logs all agree rank by rank.
    /// (`scatterv_ft` has the root blocking on acknowledgements, so the
    /// pool needs at least two workers.)
    #[test]
    fn pooled_ft_scatter_matches_thread_per_rank(
        p in 2usize..6,
        threads in 2usize..5,
        seed in any::<u64>(),
        degraded in any::<bool>(),
    ) {
        let betas = [2e-4, 5e-4, 1e-4, 3e-4, 0.0];
        let alphas = [4e-3, 2e-3, 8e-3, 3e-3, 5e-3];
        let procs: Vec<Processor> = (0..p)
            .map(|i| {
                if i == p - 1 {
                    Processor::linear("root", 0.0, alphas[i])
                } else {
                    Processor::linear(format!("w{i}"), betas[i], alphas[i])
                }
            })
            .collect();
        let counts = vec![30usize; p];
        let total: usize = counts.iter().sum();

        // Horizon for the plan: the fault-free makespan of this layout.
        let view: Vec<&Processor> = procs.iter().collect();
        let clean = grid_scatter::gridsim::fault::simulate_scatter_ft(
            &view, &counts, &FaultPlan::none(), None,
        ).unwrap();
        let faults = FaultPlan::seeded(seed, p, clean.makespan);
        let recovery = if degraded { None } else { Some(RecoveryConfig::default()) };
        let config = FtConfig {
            faults,
            recovery,
            procs: procs.clone(),
            item_bytes: ITEM_BYTES,
        };
        let data: Vec<u64> = (0..total as u64).collect();
        let body = |c: &mut grid_scatter::minimpi::Comm| {
            c.enable_tracing();
            let mine = c.scatterv_ft(
                &config,
                if c.rank() == p - 1 { Some(&data) } else { None },
                &counts,
            );
            c.model_compute_ft(&config, mine.len());
            (mine, c.now().to_bits(), c.take_trace(), c.take_incidents())
        };
        let reference = run_world(p, WorldConfig::default(), body);
        let pooled = run_world_pooled(p, threads, p - 1, WorldConfig::default(), body);
        prop_assert_eq!(&pooled, &reference);
    }
}

/// The synthetic sweep star itself: fast path == classic at a CI-sized
/// point, so the bench-gate equivalence is anchored by a plain test
/// too, not only by the committed document.
#[test]
fn synthetic_star_fast_path_matches_classic() {
    let p = 2000;
    let items = p as u64 * 10;
    let (beta, alpha) = synthetic_star(p);
    let counts = proportional_counts(&alpha, items);
    let comm: Vec<f64> = beta.iter().zip(&counts).map(|(b, &c)| b * c as f64).collect();
    let work: Vec<f64> = alpha.iter().zip(&counts).map(|(a, &c)| a * c as f64).collect();
    let fast = simulate_star(&comm, &work, false);

    let procs: Vec<Processor> = beta
        .iter()
        .zip(&alpha)
        .enumerate()
        .map(|(i, (&b, &a))| Processor::linear(format!("w{i}"), b, a))
        .collect();
    let view: Vec<&Processor> = procs.iter().collect();
    let counts_usize: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
    let classic =
        simulate_scatter_on(&view, &counts_usize, &SimConfig::ideal(), Engine::with_heap_pinned());
    assert_eq!(fast.makespan.to_bits(), classic.makespan.to_bits());
    assert_eq!(fast.timeline, classic.timeline);
}
