//! Cross-crate consistency: the planner's analytic prediction (Eq. 1/2),
//! the discrete-event simulator, and the minimpi virtual clock must all
//! tell the same story.

use grid_scatter::gridsim::sim::{simulate_plan, simulate_scatter, SimConfig};
use grid_scatter::prelude::*;
use grid_scatter::scatter::paper::table1_platform;
use grid_scatter::scatter::planner::Strategy;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn prediction_equals_simulation_for_every_strategy() {
    let platform = table1_platform();
    for strategy in [
        Strategy::Uniform,
        Strategy::Exact,
        Strategy::Heuristic,
        Strategy::ClosedForm,
    ] {
        let plan = Planner::new(platform.clone())
            .strategy(strategy)
            .plan(5_000)
            .unwrap();
        let sim = simulate_plan(&platform, &plan, &[]);
        assert_eq!(
            sim.timeline, plan.predicted,
            "{strategy:?}: DES must equal the analytic timeline exactly"
        );
        assert!(close(sim.makespan, plan.predicted_makespan));
    }
}

#[test]
fn simulation_is_order_sensitive_like_the_model() {
    let platform = table1_platform();
    let n = 100_000;
    let mk = |policy| {
        let plan = Planner::new(platform.clone())
            .strategy(Strategy::Heuristic)
            .order_policy(policy)
            .plan(n)
            .unwrap();
        simulate_plan(&platform, &plan, &[]).makespan
    };
    let desc = mk(OrderPolicy::DescendingBandwidth);
    let asc = mk(OrderPolicy::AscendingBandwidth);
    assert!(desc < asc, "descending {desc} must beat ascending {asc}");
}

#[test]
fn perturbed_simulation_diverges_from_prediction() {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(50_000)
        .unwrap();
    // Slow down the machine that computes longest.
    let mut loads = vec![LoadTrace::none(); platform.len()];
    loads[3] = LoadTrace::new(vec![(0.0, 1.5)]); // sekhmet
    let perturbed = simulate_plan(&platform, &plan, &loads);
    assert!(perturbed.makespan > plan.predicted_makespan);
    // And only the victim (plus nobody else) moved.
    let pos = plan.order.iter().position(|&i| i == 3).unwrap();
    for (i, (&sim_f, &pred_f)) in perturbed
        .timeline
        .finish
        .iter()
        .zip(&plan.predicted.finish)
        .enumerate()
    {
        if i == pos {
            assert!(sim_f > pred_f);
        } else {
            assert!(close(sim_f, pred_f), "proc {i}: {sim_f} vs {pred_f}");
        }
    }
}

#[test]
fn uniform_counts_reproduce_scatter_semantics() {
    // A scatter of n items with uniform distribution: every block within
    // one item of n/p, laid out contiguously.
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Uniform)
        .plan(817_101)
        .unwrap();
    for &c in &plan.counts {
        assert!(c == 51068 || c == 51069);
    }
    // displs form a permutation-consistent contiguous layout.
    let mut blocks: Vec<(usize, usize)> = plan
        .displs
        .iter()
        .zip(&plan.counts)
        .map(|(&d, &c)| (d, c))
        .collect();
    blocks.sort();
    let mut expect = 0;
    for (d, c) in blocks {
        assert_eq!(d, expect);
        expect += c;
    }
    assert_eq!(expect, 817_101);
}

#[test]
fn des_engine_handles_degenerate_platforms() {
    // One processor (the root alone).
    let platform = Platform::new(vec![Processor::linear("solo", 0.0, 0.01)], 0).unwrap();
    let plan = Planner::new(platform.clone()).strategy(Strategy::Exact).plan(100).unwrap();
    let sim = simulate_plan(&platform, &plan, &[]);
    assert!(close(sim.makespan, 1.0));

    // Zero items.
    let plan0 = Planner::new(platform.clone()).strategy(Strategy::Exact).plan(0).unwrap();
    let sim0 = simulate_plan(&platform, &plan0, &[]);
    assert_eq!(sim0.makespan, 0.0);
}

#[test]
fn metrics_agree_between_model_and_sim() {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::ClosedForm)
        .plan(20_000)
        .unwrap();
    let sim = simulate_plan(&platform, &plan, &[]);
    let m_model = RunMetrics::from_timeline(&plan.predicted);
    let m_sim = RunMetrics::from_timeline(&sim.timeline);
    assert!(close(m_model.makespan, m_sim.makespan));
    assert!(close(m_model.stair_area, m_sim.stair_area));
    assert!(close(m_model.compute_area, m_sim.compute_area));
}

#[test]
fn direct_scatter_sim_matches_planned_sim() {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(10_000)
        .unwrap();
    let view = platform.ordered(&plan.order);
    let by_hand = simulate_scatter(&view, &plan.counts_in_order(), &SimConfig::ideal());
    let by_plan = simulate_plan(&platform, &plan, &[]);
    assert_eq!(by_hand.timeline, by_plan.timeline);
}
