//! Invariants of the observability schema (`docs/observability.md`),
//! checked across all three trace producers: for every trace, per-rank
//! busy + idle = makespan, bytes are conserved (Σ link bytes = Σ counts ×
//! item size), and the event stream is well-ordered; and the makespan a
//! simulator trace reports equals the analytic Eq. (2) value.

use grid_scatter::gridsim::sim::simulate_plan;
use grid_scatter::prelude::*;
use grid_scatter::scatter::analysis::analyze;
use grid_scatter::scatter::obs::{EventKind, Trace, TraceSummary};
use grid_scatter::scatter::paper::table1_platform;
use grid_scatter::scatter::planner::{Plan, Strategy};
use proptest::prelude::*;
// The planner also exports a `Strategy`; pull proptest's trait in
// anonymously so `prop_map` resolves.
use proptest::strategy::Strategy as _;

const ITEM_BYTES: u64 = 8;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// All three producers for one plan: predicted, simulated, executed.
fn three_traces(platform: &Platform, plan: &Plan) -> Vec<Trace> {
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    let counts = plan.counts_in_order();
    let predicted = plan.predicted_trace(platform, ITEM_BYTES);
    let simulated = simulate_plan(platform, plan, &[]).trace(&names, &counts, ITEM_BYTES);

    let model = grid_scatter::minimpi::TimeModel::from_platform(platform, ITEM_BYTES as usize)
        .reordered(&plan.order);
    let p = platform.len();
    let root = p - 1;
    let counts_bytes: Vec<usize> = counts.iter().map(|c| c * ITEM_BYTES as usize).collect();
    let total_bytes: usize = counts_bytes.iter().sum();
    let records = grid_scatter::minimpi::run_world(
        p,
        grid_scatter::minimpi::WorldConfig::with_time(model),
        move |c| {
            c.enable_tracing();
            let buf = vec![0u8; total_bytes];
            let mine =
                c.scatterv(root, if c.rank() == root { Some(&buf) } else { None }, &counts_bytes);
            c.model_compute(mine.len() / ITEM_BYTES as usize);
            c.take_trace()
        },
    );
    let executed = grid_scatter::minimpi::executed_trace(&names, ITEM_BYTES, &records);
    vec![predicted, simulated, executed]
}

/// The schema invariants one trace must satisfy.
fn assert_invariants(trace: &Trace, n: usize) {
    // Well-ordered per rank, properly bracketed, in-range — validate()
    // is the normative check.
    trace.validate().unwrap_or_else(|e| panic!("{:?}: {e}", trace.source));
    let summary = TraceSummary::from_trace(trace);

    // Per-processor busy + idle = makespan.
    for r in &summary.ranks {
        assert!(
            close(r.busy + r.idle, summary.makespan),
            "{:?} rank {}: busy {} + idle {} != makespan {}",
            trace.source,
            r.rank,
            r.busy,
            r.idle,
            summary.makespan
        );
    }

    // Byte conservation: Σ per-link bytes = Σ distribution counts × item
    // size = n × item size (the root's kept block is a self-link).
    let link_total: u64 = summary.links.iter().map(|l| l.bytes).sum();
    assert_eq!(link_total, n as u64 * ITEM_BYTES, "{:?}", trace.source);
    assert_eq!(summary.total_bytes, link_total);

    // Events are globally sorted and per-rank monotone with matched
    // start/end pairs per phase.
    let mut prev_t = 0.0f64;
    for e in &trace.events {
        assert!(e.t >= prev_t, "{:?}: events not time-sorted", trace.source);
        prev_t = e.t;
    }
    for rank in 0..trace.num_ranks() {
        let evs: Vec<_> = trace.events_for_rank(rank).collect();
        let starts = evs.iter().filter(|e| e.kind == EventKind::SendStart).count();
        let ends = evs.iter().filter(|e| e.kind == EventKind::SendEnd).count();
        assert_eq!(starts, ends, "{:?} rank {rank}: unbalanced sends", trace.source);
        let cs = evs.iter().filter(|e| e.kind == EventKind::ComputeStart).count();
        let ce = evs.iter().filter(|e| e.kind == EventKind::ComputeEnd).count();
        assert_eq!(cs, ce, "{:?} rank {rank}: unbalanced computes", trace.source);
    }
}

#[test]
fn invariants_hold_for_all_three_producers_on_table1() {
    let platform = table1_platform();
    for strategy in [Strategy::Uniform, Strategy::Heuristic, Strategy::ClosedForm] {
        let plan = Planner::new(platform.clone()).strategy(strategy).plan(12_345).unwrap();
        for trace in three_traces(&platform, &plan) {
            assert_invariants(&trace, 12_345);
        }
    }
}

#[test]
fn all_three_sources_agree_on_the_schedule() {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone()).strategy(Strategy::Heuristic).plan(40_000).unwrap();
    let traces = three_traces(&platform, &plan);
    let makespans: Vec<f64> =
        traces.iter().map(|t| TraceSummary::from_trace(t).makespan).collect();
    assert_eq!(makespans[0], makespans[1], "prediction vs DES must match exactly");
    assert!(close(makespans[0], makespans[2]), "{} vs {}", makespans[0], makespans[2]);
}

#[test]
fn zero_items_give_an_empty_but_valid_story() {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone()).strategy(Strategy::Heuristic).plan(0).unwrap();
    for trace in three_traces(&platform, &plan) {
        trace.validate().unwrap();
        let summary = TraceSummary::from_trace(&trace);
        assert_eq!(summary.makespan, 0.0);
        assert_eq!(summary.total_bytes, 0);
    }
}

/// Random linear platform: root first (beta 0), then workers.
fn platform_strategy(max_p: usize) -> impl proptest::strategy::Strategy<Value = Platform> {
    let worker = (1u32..=300, 1u32..=300).prop_map(|(b, a)| (b as f64 * 1e-3, a as f64 * 1e-2));
    (proptest::collection::vec(worker, 1..max_p), 1u32..=300).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::linear("root", 0.0, root_a as f64 * 1e-2)];
        for (i, (b, a)) in workers.into_iter().enumerate() {
            procs.push(Processor::linear(format!("w{i}"), b, a));
        }
        Platform::new(procs, 0).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// On any platform, the makespan derived from the simulator's trace
    /// equals the analytic Eq. (2) value of the same distribution.
    #[test]
    fn simulated_trace_makespan_is_eq2(platform in platform_strategy(6), n in 1usize..=5_000) {
        let plan = Planner::new(platform.clone())
            .strategy(Strategy::Heuristic)
            .plan(n)
            .unwrap();
        let names: Vec<&str> = plan.order.iter()
            .map(|&i| platform.procs()[i].name.as_str())
            .collect();
        let counts = plan.counts_in_order();
        let sim = simulate_plan(&platform, &plan, &[]);
        let trace = sim.trace(&names, &counts, ITEM_BYTES);
        let summary = TraceSummary::from_trace(&trace);
        // Eq. (2): T = max_i T_i over the ordered view.
        let view = platform.ordered(&plan.order);
        let report = analyze(&view, &counts);
        prop_assert!(close(summary.makespan, report.makespan),
                     "trace {} vs Eq.(2) {}", summary.makespan, report.makespan);
        // And the invariants hold on random platforms too.
        trace.validate().unwrap();
        for r in &summary.ranks {
            prop_assert!(close(r.busy + r.idle, summary.makespan));
        }
        prop_assert_eq!(summary.total_bytes, n as u64 * ITEM_BYTES);
    }
}
