//! Property tests for the observability JSON codec: every combination of
//! the schema-v1 *optional* fields — `plan_timing`, `label`, `incidents`
//! and the `metrics` block — must survive an export → parse round trip
//! exactly, and parsers must skip unknown fields (forward compatibility
//! with later minor additions, which is what keeps the schema at v1).

use grid_scatter::prelude::{Processor, TraceSummary};
use grid_scatter::scatter::distribution::timeline;
use grid_scatter::scatter::metrics::{MetricsSnapshot, Registry};
use grid_scatter::scatter::obs::json::{trace_from_json, trace_to_json};
use grid_scatter::scatter::obs::{Incident, IncidentKind, PlanTiming, Trace, TraceSource};
use proptest::prelude::*;

/// A small but real fault-free trace to hang the optional fields on.
fn base_trace() -> Trace {
    let procs =
        [Processor::linear("w1", 0.5, 1.0), Processor::linear("root", 0.0, 2.0)];
    let view: Vec<&Processor> = procs.iter().collect();
    let counts = vec![5usize, 3];
    let tl = timeline(&view, &counts);
    Trace::from_timeline(TraceSource::Simulated, &["w1", "root"], &counts, 8, &tl)
}

/// Strings exercising every JSON escape class the writer knows about.
fn tricky_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] =
        &['a', 'B', '"', '\\', ',', '\n', '\t', ' ', '/', 'é', '𝄞', '\u{1}', '0'];
    collection::vec(0usize..ALPHABET.len(), 0..12)
        .prop_map(|idx| idx.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Finite `f64`s across many magnitudes, signs and subnormals — the
/// writer's shortest-round-trip rendering must reproduce each exactly.
fn any_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            (bits >> 12) as f64 * 1e-3
        }
    })
}

/// Integers that survive the f64-backed JSON number representation
/// (the codec rejects integers above 2^53, by design).
fn json_u64() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

fn plan_timing() -> impl Strategy<Value = PlanTiming> {
    (
        tricky_string(),
        1usize..64,
        any::<bool>(),
        collection::vec(any_finite_f64().prop_map(f64::abs), 3..=3),
        json_u64(),
        json_u64(),
    )
        .prop_map(|(strategy, threads, pruned, secs, cache_hits, cache_misses)| PlanTiming {
            strategy,
            threads,
            pruned,
            tabulate_secs: secs[0],
            solve_secs: secs[1],
            total_secs: secs[2],
            cache_hits,
            cache_misses,
        })
}

fn incidents() -> impl Strategy<Value = Vec<Incident>> {
    let incident = (any_finite_f64(), 0usize..3, 0usize..2, json_u64(), tricky_string())
        .prop_map(|(t, kind, rank, items, info)| Incident {
            t,
            kind: [IncidentKind::Fault, IncidentKind::Retry, IncidentKind::Replan][kind],
            rank,
            items,
            info,
        });
    collection::vec(incident, 0..5)
}

/// A metrics snapshot built by driving a *local* registry — counters,
/// a gauge that may go negative, and a histogram whose observations
/// exercise many buckets including the +∞ overflow one.
fn metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        collection::vec((tricky_string(), json_u64()), 0..4),
        any_finite_f64(),
        collection::vec(any_finite_f64().prop_map(f64::abs), 0..20),
    )
        .prop_map(|(counters, gauge, observations)| {
            let reg = Registry::new();
            for (i, (name, v)) in counters.into_iter().enumerate() {
                // Registry names must be unique per kind; suffix with the
                // index so tricky duplicates cannot collide.
                reg.counter(&format!("c{i}_{name}"), "prop counter").add(v);
            }
            reg.gauge("g", "prop gauge").set(gauge);
            let h = reg.histogram("h", "prop histogram");
            for v in observations {
                h.observe(v);
            }
            h.observe(f64::MAX); // lands in the +∞ bucket
            reg.snapshot()
        })
}

/// Present-or-absent wrapper: half the cases exercise the field, half
/// exercise its omission.
fn optional<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(present, v)| present.then_some(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any subset of the optional fields round-trips exactly.
    #[test]
    fn optional_fields_round_trip(
        timing in optional(plan_timing()),
        label in optional(tricky_string()),
        incs in incidents(),
        metrics in optional(metrics_snapshot()),
    ) {
        let (with_timing, with_label, with_metrics) =
            (timing.is_some(), label.is_some(), metrics.is_some());
        let mut trace = base_trace();
        trace.plan_timing = timing;
        trace.label = label;
        trace.incidents = incs;
        trace.metrics = metrics;

        let json = trace_to_json(&trace);
        let back = trace_from_json(&json).expect("exported JSON reparses");
        prop_assert_eq!(&back, &trace);

        // Absent fields must stay absent (not default-materialized).
        prop_assert_eq!(back.plan_timing.is_some(), with_timing);
        prop_assert_eq!(back.label.is_some(), with_label);
        prop_assert_eq!(back.metrics.is_some(), with_metrics);
    }

    /// Unknown fields — scalars, arrays, nested objects — are skipped
    /// wherever they appear, so a v1 parser reads documents written by
    /// later producers that only *added* fields.
    #[test]
    fn unknown_fields_are_ignored(
        label in tricky_string(),
        metrics in metrics_snapshot(),
        junk_num in any_finite_f64(),
        junk_str in tricky_string(),
    ) {
        let mut trace = base_trace();
        trace.label = Some(label);
        trace.metrics = Some(metrics);
        let json = trace_to_json(&trace);

        let junk = format!(
            "\"future_scalar\": {junk_num}, \
             \"future_obj\": {{\"nested\": [1, null, {}]}}, \
             \"future_str\": {}, ",
            serde_free_quote(&junk_str),
            serde_free_quote(&junk_str),
        );
        // Inject at the top level (right after the opening brace) and
        // inside the metrics object.
        let doped = json
            .replacen("{\n", &format!("{{\n  {junk}\n"), 1)
            .replacen("\"counters\":", &format!("{junk} \"counters\":"), 1);
        let back = trace_from_json(&doped).expect("unknown fields are skipped");
        prop_assert_eq!(&back, &trace);

        // A trace that grew unknown fields still summarizes identically.
        let s1 = TraceSummary::from_trace(&trace);
        let s2 = TraceSummary::from_trace(&back);
        prop_assert_eq!(s1.makespan, s2.makespan);
        prop_assert_eq!(s1.total_bytes, s2.total_bytes);
    }
}

/// JSON-quotes a string the same way the writer under test does — by
/// going through it: serialize a trace whose label is `s` and extract
/// nothing; instead, quote manually with the minimal escapes.
fn serde_free_quote(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
