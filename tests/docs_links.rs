//! Documentation as a first-class artifact: every relative markdown
//! link under `docs/` (and in `README.md`) must resolve, and the worked
//! console examples in `docs/robustness.md`, `docs/observability.md`,
//! `docs/serve.md`, and `docs/simulation.md` must reproduce — each `$ gs …` command is re-run
//! through the CLI's library entry points and compared line by line
//! against the output shown in the document (`...` lines elide;
//! `planning:` timing lines are ignored, they are the only
//! nondeterministic output). `gs serve … &` commands start a real
//! daemon on an ephemeral port; subsequent `gs client` commands are
//! routed to it, so the serve walkthrough exercises real sockets.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use gs_cli::commands::{
    cmd_calibrate, cmd_metrics, cmd_metrics_json, cmd_plan, cmd_report, cmd_report_drift,
    cmd_report_spans, cmd_sim, cmd_sim_spanned, cmd_simulate, cmd_trace, cmd_trace_spanned,
    PlanOptions, SimOptions,
};
use gs_cli::serve_cmd::{cmd_client, start_daemon, ClientCmd, ServeOptions};

/// Daemon state for `gs serve` / `gs client` walkthroughs: the running
/// server (if any) plus the mapping from the address the document
/// shows to the ephemeral address the test actually bound.
#[derive(Default)]
struct Daemons {
    handle: Option<gs_serve::ServerHandle>,
    addrs: HashMap<String, String>,
}

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// The `](target)` targets of all markdown links in `text`.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("](") {
        rest = &rest[at + 2..];
        if let Some(end) = rest.find(')') {
            targets.push(rest[..end].to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    targets
}

#[test]
fn relative_markdown_links_resolve() {
    let root = repo_root();
    let mut files: Vec<PathBuf> = vec![root.join("README.md")];
    for entry in fs::read_dir(root.join("docs")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(files.len() >= 4, "README + at least three docs files");
    for file in &files {
        let text = fs::read_to_string(file).unwrap();
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
            {
                continue; // offline check: external links are not fetched
            }
            let path = target.split('#').next().unwrap();
            let resolved = file.parent().unwrap().join(path);
            assert!(
                resolved.exists(),
                "{}: broken relative link `{target}`",
                file.display()
            );
        }
    }
}

/// A fenced code block: info string (language) and body lines.
struct Fence {
    lang: String,
    lines: Vec<String>,
}

fn fenced_blocks(text: &str) -> Vec<Fence> {
    let mut blocks = Vec::new();
    let mut current: Option<Fence> = None;
    for line in text.lines() {
        if let Some(info) = line.strip_prefix("```") {
            match current.take() {
                Some(fence) => blocks.push(fence),
                None => {
                    current = Some(Fence { lang: info.trim().to_string(), lines: Vec::new() })
                }
            }
        } else if let Some(fence) = &mut current {
            fence.lines.push(line.to_string());
        }
    }
    blocks
}

/// Parses one `gs …` command line into a call against the CLI library,
/// reading "files" (platforms and redirected outputs alike) from `vfs`.
fn run_gs(cmdline: &str, vfs: &mut HashMap<String, String>, daemons: &mut Daemons) {
    let (cmd, redirect) = match cmdline.split_once(" > ") {
        Some((c, f)) => (c.trim(), Some(f.trim().to_string())),
        None => (cmdline.trim(), None),
    };
    // `gs serve … &` backgrounds the daemon; strip the shell operator.
    let cmd = cmd.strip_suffix(" &").unwrap_or(cmd);
    let words: Vec<&str> = cmd.split_whitespace().collect();
    assert_eq!(words[0], "gs", "walkthrough commands invoke gs: {cmdline}");

    let mut opts = PlanOptions::default();
    let mut positional: Vec<&str> = Vec::new();
    let mut width = 60usize;
    let mut source = "predicted".to_string();
    let mut item_bytes = 8usize;
    let mut platform_flag: Option<String> = None;
    let mut drift_threshold: Option<f64> = None;
    let mut addr_flag: Option<String> = None;
    let mut ranks = 0usize;
    let mut pool: Option<usize> = None;
    let mut smoke = false;
    let mut spans_out: Option<String> = None;
    let mut json_flag = false;
    let mut i = 1;
    while i < words.len() {
        match words[i] {
            "--items" => {
                i += 1;
                opts.items = words[i].parse().unwrap();
            }
            "--strategy" => {
                i += 1;
                opts.strategy = words[i].to_string();
            }
            "--threads" => {
                i += 1;
                opts.threads = words[i].parse().unwrap();
            }
            "--faults" => {
                i += 1;
                opts.faults = Some(words[i].to_string());
            }
            "--no-recovery" => opts.no_recovery = true,
            "--width" => {
                i += 1;
                width = words[i].parse().unwrap();
            }
            "--source" => {
                i += 1;
                source = words[i].to_string();
            }
            "--item-bytes" => {
                i += 1;
                item_bytes = words[i].parse().unwrap();
            }
            "--platform" => {
                i += 1;
                platform_flag = Some(words[i].to_string());
            }
            "--drift-threshold" => {
                i += 1;
                drift_threshold = Some(words[i].parse().unwrap());
            }
            "--addr" => {
                i += 1;
                addr_flag = Some(words[i].to_string());
            }
            "--ranks" => {
                i += 1;
                ranks = words[i].parse().unwrap();
            }
            "--pool" => {
                i += 1;
                pool = Some(words[i].parse().unwrap());
            }
            "--smoke" => smoke = true,
            "--spans" => {
                i += 1;
                spans_out = Some(words[i].to_string());
            }
            "--json" => json_flag = true,
            flag if flag.starts_with("--") => panic!("walkthrough uses unknown flag {flag}"),
            word => positional.push(word),
        }
        i += 1;
    }

    let read = |vfs: &HashMap<String, String>, f: &str| -> String {
        vfs.get(f)
            .unwrap_or_else(|| panic!("walkthrough reads `{f}` before writing it"))
            .clone()
    };
    let out = match positional[0] {
        "plan" => cmd_plan(&read(vfs, positional[1]), &opts, false).unwrap(),
        "simulate" => cmd_simulate(&read(vfs, positional[1]), &opts, width, false).unwrap(),
        "trace" => match &spans_out {
            None => cmd_trace(&read(vfs, positional[1]), &opts, &source, item_bytes).unwrap(),
            Some(f) => {
                let (out, spans) =
                    cmd_trace_spanned(&read(vfs, positional[1]), &opts, &source, item_bytes)
                        .unwrap();
                vfs.insert(f.clone(), spans);
                out
            }
        },
        "report" if spans_out.is_some() => {
            cmd_report_spans(&read(vfs, spans_out.as_deref().unwrap())).unwrap()
        }
        "report" => {
            let texts: Vec<String> =
                positional[1..].iter().map(|f| read(vfs, f)).collect();
            match drift_threshold {
                None => cmd_report(&texts, width).unwrap(),
                Some(threshold) => {
                    // The drift gate's *output* is shown either way; the
                    // pass/fail bool only drives the process exit code.
                    let platform = read(vfs, platform_flag.as_deref().unwrap());
                    cmd_report_drift(&texts, width, &platform, threshold).unwrap().0
                }
            }
        }
        "calibrate" => {
            let texts: Vec<String> =
                positional[1..].iter().map(|f| read(vfs, f)).collect();
            cmd_calibrate(&texts).unwrap()
        }
        "metrics" if json_flag => {
            cmd_metrics_json(&read(vfs, positional[1]), &opts, item_bytes).unwrap()
        }
        "metrics" => cmd_metrics(&read(vfs, positional[1]), &opts, item_bytes).unwrap(),
        "sim" => {
            let sim_opts =
                SimOptions { ranks, items: opts.items, pool, smoke, emit_trace: false };
            match &spans_out {
                None => cmd_sim(&sim_opts).unwrap(),
                Some(f) => {
                    let (out, spans) = cmd_sim_spanned(&sim_opts).unwrap();
                    vfs.insert(f.clone(), spans);
                    out
                }
            }
        }
        "serve" => {
            // Bind an ephemeral port, remember it under the address the
            // document shows. A backgrounded daemon prints nothing here
            // (its banner goes to the daemon's own stdout).
            let documented = addr_flag.clone().unwrap_or_else(|| "127.0.0.1:7070".into());
            let (handle, _banner) = start_daemon(&ServeOptions {
                addr: "127.0.0.1:0".into(),
                ..Default::default()
            })
            .unwrap();
            daemons.addrs.insert(documented, handle.addr().to_string());
            assert!(
                daemons.handle.replace(handle).is_none(),
                "walkthrough starts a second daemon without shutting down the first"
            );
            String::new()
        }
        "client" => {
            let documented = positional[1];
            let addr = daemons
                .addrs
                .get(documented)
                .unwrap_or_else(|| panic!("walkthrough talks to `{documented}` before serving"))
                .clone();
            let params = |file: &str| (read(vfs, file), opts.items as u64, opts.strategy.clone());
            let client_cmd = match positional[2] {
                "ping" => ClientCmd::Ping,
                "plan" => {
                    let (platform, items, strategy) = params(positional[3]);
                    ClientCmd::Plan { platform, items, strategy }
                }
                "simulate" => {
                    let (platform, items, strategy) = params(positional[3]);
                    ClientCmd::Simulate { platform, items, strategy }
                }
                "calibrate" => ClientCmd::Calibrate {
                    traces: positional[3..].iter().map(|f| read(vfs, f)).collect(),
                },
                "metrics" => ClientCmd::Metrics,
                "shutdown" => ClientCmd::Shutdown,
                other => panic!("walkthrough uses unknown client operation {other}"),
            };
            let shutting_down = matches!(client_cmd, ClientCmd::Shutdown);
            let out = cmd_client(&addr, client_cmd).unwrap();
            if shutting_down {
                daemons.handle.take().expect("daemon running").join();
            }
            out
        }
        other => panic!("walkthrough uses unknown subcommand {other}"),
    };
    match redirect {
        Some(file) => {
            vfs.insert(file, out);
        }
        None => vfs.insert("$last".into(), out).map(|_| ()).unwrap_or(()),
    }
}

/// `expected` must be a prefix-anchored subsequence of `actual`: plain
/// lines match exactly (modulo trailing whitespace), `...` skips any
/// number of lines, `planning:` lines are ignored on both sides.
fn assert_output_matches(actual: &str, expected: &[String], context: &str) {
    let keep = |l: &&str| !l.trim_start().starts_with("planning:");
    let actual: Vec<&str> = actual.lines().filter(keep).collect();
    let expected: Vec<&str> =
        expected.iter().map(String::as_str).filter(keep).collect();
    let mut ai = 0;
    let mut eliding = false;
    for e in &expected {
        if e.trim() == "..." {
            eliding = true;
            continue;
        }
        if eliding {
            while ai < actual.len() && actual[ai].trim_end() != e.trim_end() {
                ai += 1;
            }
            assert!(
                ai < actual.len(),
                "{context}: documented line not found after elision:\n  {e}"
            );
            eliding = false;
        } else {
            assert!(ai < actual.len(), "{context}: output ended before:\n  {e}");
            assert_eq!(
                actual[ai].trim_end(),
                e.trim_end(),
                "{context}: output diverges from the document at line {ai}"
            );
        }
        ai += 1;
    }
    if !eliding {
        assert_eq!(
            ai,
            actual.len(),
            "{context}: command printed more than the document shows \
             (add a trailing `...` to elide): next line:\n  {}",
            actual.get(ai).unwrap_or(&"")
        );
    }
}

/// Platform files a document defines in ```text fences, in order of
/// appearance: any fence containing a `proc ` line parses as a platform.
fn platform_fences(blocks: &[Fence]) -> Vec<String> {
    blocks
        .iter()
        .filter(|b| b.lang == "text" && b.lines.iter().any(|l| l.starts_with("proc ")))
        .map(|b| b.lines.join("\n"))
        .collect()
}

/// Replays every `$ gs …` command of the document's console fences
/// against the library, comparing output line by line. Returns the
/// number of commands replayed.
fn replay_console_blocks(blocks: &[Fence], vfs: &mut HashMap<String, String>) -> usize {
    // Walkthroughs replay one at a time: span capture (`--spans`) is
    // process-global, so a concurrent walkthrough's spans would leak
    // into another's export and change its deterministic summary.
    static REPLAY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serial = REPLAY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut daemons = Daemons::default();
    let n = replay_console_blocks_with(blocks, vfs, &mut daemons);
    assert!(daemons.handle.is_none(), "walkthrough left a daemon running");
    n
}

fn replay_console_blocks_with(
    blocks: &[Fence],
    vfs: &mut HashMap<String, String>,
    daemons: &mut Daemons,
) -> usize {
    let console: Vec<&Fence> = blocks.iter().filter(|b| b.lang == "console").collect();
    let mut commands_run = 0;
    for block in console {
        let mut i = 0;
        while i < block.lines.len() {
            let line = &block.lines[i];
            let cmd = line
                .strip_prefix("$ ")
                .unwrap_or_else(|| panic!("console block must start with `$ `: {line}"));
            i += 1;
            let mut expected = Vec::new();
            while i < block.lines.len() && !block.lines[i].starts_with("$ ") {
                expected.push(block.lines[i].clone());
                i += 1;
            }
            let redirected = cmd.contains(" > ");
            run_gs(cmd, vfs, daemons);
            if redirected {
                assert!(expected.is_empty(), "redirected command shows no output: {cmd}");
            } else {
                let out = vfs.get("$last").cloned().unwrap_or_default();
                assert_output_matches(&out, &expected, cmd);
            }
            commands_run += 1;
        }
    }
    commands_run
}

#[test]
fn robustness_walkthrough_reproduces() {
    let text = fs::read_to_string(repo_root().join("docs/robustness.md")).unwrap();
    let blocks = fenced_blocks(&text);

    // The platform under test: the `text` fence defining demo.platform.
    let platforms = platform_fences(&blocks);
    assert!(!platforms.is_empty(), "robustness.md defines demo.platform in a ```text fence");
    let mut vfs: HashMap<String, String> = HashMap::new();
    vfs.insert("demo.platform".into(), platforms[0].clone());

    let commands_run = replay_console_blocks(&blocks, &mut vfs);
    assert!(commands_run >= 6, "the walkthrough exercises the full CLI story");
}

#[test]
fn serve_walkthrough_reproduces() {
    let text = fs::read_to_string(repo_root().join("docs/serve.md")).unwrap();
    let blocks = fenced_blocks(&text);

    let platforms = platform_fences(&blocks);
    assert!(!platforms.is_empty(), "serve.md defines demo.platform in a ```text fence");
    let mut vfs: HashMap<String, String> = HashMap::new();
    vfs.insert("demo.platform".into(), platforms[0].clone());

    let commands_run = replay_console_blocks(&blocks, &mut vfs);
    assert!(
        commands_run >= 7,
        "serve, ping, plan (miss + hit), simulate, metrics, shutdown replayed"
    );
}

#[test]
fn simulation_walkthrough_reproduces() {
    let text = fs::read_to_string(repo_root().join("docs/simulation.md")).unwrap();
    let blocks = fenced_blocks(&text);

    // `gs sim` builds its synthetic star internally — no platform file.
    let mut vfs: HashMap<String, String> = HashMap::new();
    let commands_run = replay_console_blocks(&blocks, &mut vfs);
    assert!(
        commands_run >= 3,
        "simulate, pooled execution, and the 10^5 capacity check replayed"
    );
}

#[test]
fn observability_walkthrough_reproduces() {
    let text = fs::read_to_string(repo_root().join("docs/observability.md")).unwrap();
    let blocks = fenced_blocks(&text);

    // The document defines two platforms: the grid the traces ran on and
    // the mis-specified model the drift gate must catch.
    let platforms = platform_fences(&blocks);
    assert!(platforms.len() >= 2, "observability.md defines demo.platform and wrong.platform");
    let mut vfs: HashMap<String, String> = HashMap::new();
    vfs.insert("demo.platform".into(), platforms[0].clone());
    vfs.insert("wrong.platform".into(), platforms[1].clone());

    let commands_run = replay_console_blocks(&blocks, &mut vfs);
    assert!(commands_run >= 7, "trace, calibrate, re-plan, drift gates and metrics replayed");
}
