//! The reproduction contract: every table/figure of the paper regenerates
//! with the right *shape* (who wins, by what factor, where crossovers
//! fall). Runs the gs-bench experiment functions at scaled sizes.

use gs_bench::experiments::{ablation, figures, ordering, roots, runtimes, tomo};
use gs_scatter::paper::N_RAYS_1999;

/// Figures 2/3 at full paper scale: absolute numbers land in the
/// reported ranges (the analytic model *is* Table 1, so this is close).
#[test]
fn fig2_fig3_full_scale_ranges() {
    let f2 = figures::fig2(N_RAYS_1999);
    // Paper: 259 s .. 853 s. We have no background load, so allow slack.
    assert!((200.0..330.0).contains(&f2.min_finish), "fig2 min {}", f2.min_finish);
    assert!((700.0..1000.0).contains(&f2.max_finish), "fig2 max {}", f2.max_finish);

    let f3 = figures::fig3(N_RAYS_1999);
    // Paper: 405 s .. 430 s.
    assert!((380.0..460.0).contains(&f3.max_finish), "fig3 max {}", f3.max_finish);
    assert!(f3.imbalance < 0.02, "fig3 imbalance {}", f3.imbalance);

    // Headline: ~2x.
    let speedup = f2.max_finish / f3.max_finish;
    assert!((1.7..2.4).contains(&speedup), "speedup {speedup}");
}

#[test]
fn fig4_full_scale_penalty() {
    let f3 = figures::fig3(N_RAYS_1999);
    let f4 = figures::fig4(N_RAYS_1999, false);
    let penalty = f4.max_finish - f3.max_finish;
    // Paper: +56 s, of which much was the sekhmet load peak; the pure
    // model attributes ~10 s to ordering alone. Same sign, same order.
    assert!((5.0..120.0).contains(&penalty), "penalty {penalty}");
    // With the sekhmet spike, imbalance grows toward the paper's ~10%.
    let spiked = figures::fig4(N_RAYS_1999, true);
    assert!(spiked.imbalance > f4.imbalance);
    assert!(spiked.imbalance > 0.02, "spiked imbalance {}", spiked.imbalance);
}

#[test]
fn heuristic_error_matches_papers_order_of_magnitude() {
    // Paper: < 6e-6 at n = 817,101. Test at 50k (same platform): the
    // error scales like 1/n, so the bound here is ~1e-4.
    let rows = runtimes::heuristic_error(&[50_000]);
    assert!(rows[0].rel_error < 1e-4, "rel err {}", rows[0].rel_error);
    assert!(rows[0].within_bound);
}

#[test]
fn algorithm2_dominates_algorithm1() {
    let rows = runtimes::algo_runtimes(&[3_000], 3_000);
    let r = &rows[0];
    let speedup = r.basic.unwrap() / r.optimized;
    assert!(speedup > 5.0, "Alg.2 only {speedup}x faster than Alg.1");
    // (The heuristic's runtime is ~constant in n — the LP sees only p —
    // so comparing it to Alg.1 at small n is meaningless; the paper's
    // "instantaneous vs 2 days" contrast is at n = 817,101, covered by
    // the criterion benches.)
}

#[test]
fn ordering_policy_always_optimal_on_random_linear_platforms() {
    let s = ordering::ordering_study(30, 5, 50_000, 99);
    assert_eq!(s.desc_optimal, s.trials, "Theorem 3 must hold: {s:?}");
    assert!(s.mean_gap_asc > 0.0, "ascending must lose somewhere");
}

#[test]
fn root_selection_full_scale() {
    let choice = roots::root_selection(N_RAYS_1999);
    assert_eq!(choice.candidates.len(), 16);
    // Every non-dinadan candidate pays a transfer; totals are consistent.
    for c in &choice.candidates {
        if c.root != 0 {
            assert!(c.transfer > 0.0);
        }
        assert!(choice.total_time <= c.total + 1e-9);
    }
}

#[test]
fn ablation_shapes() {
    let rows = ablation::strategy_ablation(8, 10_000, &[1.0, 8.0]);
    // Homogeneous: uniform is already near-optimal. Heterogeneous: not.
    assert!(rows[0].available_speedup < 1.3);
    assert!(rows[1].available_speedup > 1.5);
}

#[test]
fn tomography_speedup_shape() {
    let cmp = tomo::tomo_e2e(1_500, 17);
    assert!((1.5..2.7).contains(&cmp.speedup), "speedup {}", cmp.speedup);
}
