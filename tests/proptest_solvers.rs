//! Property tests over random platforms: the paper's guarantees must hold
//! on *every* valid input, not just the testbed.

use grid_scatter::prelude::{OrderPolicy, Planner, Platform, Processor};
use grid_scatter::scatter::brute::{best_order_exhaustive, brute_force_distribution};
use grid_scatter::scatter::closed_form::closed_form_distribution;
use grid_scatter::scatter::dp_basic::optimal_distribution_basic;
use grid_scatter::scatter::dp_optimized::optimal_distribution;
use grid_scatter::scatter::heuristic::heuristic_distribution;
use grid_scatter::scatter::ordering::scatter_order;
use grid_scatter::scatter::planner::Strategy as PlanStrategy;
use proptest::prelude::*;

// Silence the unused-import lint for Plan (used in type positions only on
// some configurations).
#[allow(unused_imports)]
use grid_scatter::prelude::Plan as _Plan;

/// Random linear platform: root first (beta 0), then workers.
fn platform_strategy(max_p: usize) -> impl Strategy<Value = Platform> {
    let worker = (1u32..=300, 1u32..=300).prop_map(|(b, a)| (b as f64 * 1e-3, a as f64 * 1e-2));
    (proptest::collection::vec(worker, 1..max_p), 1u32..=300).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::linear("root", 0.0, root_a as f64 * 1e-2)];
        for (i, (b, a)) in workers.into_iter().enumerate() {
            procs.push(Processor::linear(format!("w{i}"), b, a));
        }
        Platform::new(procs, 0).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Algorithm 2 ≡ Algorithm 1 ≡ exhaustive enumeration (small n).
    #[test]
    fn dp_algorithms_are_optimal(platform in platform_strategy(4), n in 0usize..=14) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let basic = optimal_distribution_basic(&view, n).unwrap();
        let opt = optimal_distribution(&view, n).unwrap();
        let brute = brute_force_distribution(&view, n);
        prop_assert!((basic.makespan - brute.makespan).abs() < 1e-9,
                     "basic {} vs brute {}", basic.makespan, brute.makespan);
        prop_assert!((opt.makespan - brute.makespan).abs() < 1e-9,
                     "optimized {} vs brute {}", opt.makespan, brute.makespan);
        prop_assert_eq!(basic.counts.iter().sum::<usize>(), n);
        prop_assert_eq!(opt.counts.iter().sum::<usize>(), n);
    }

    /// The Eq. (4) sandwich: T_rat <= T_opt <= T' <= T_rat + Σβ·1 + max α·1.
    #[test]
    fn heuristic_guarantee_always_holds(platform in platform_strategy(5), n in 1usize..=400) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let h = heuristic_distribution(&view, n).unwrap();
        let exact = optimal_distribution(&view, n).unwrap();
        prop_assert!(h.rational_makespan.to_f64() <= exact.makespan * (1.0 + 1e-12) + 1e-12);
        prop_assert!(exact.makespan <= h.makespan * (1.0 + 1e-12) + 1e-12);
        prop_assert!(h.makespan <= h.guarantee_bound * (1.0 + 1e-12) + 1e-12,
                     "Eq.(4) violated: {} > {}", h.makespan, h.guarantee_bound);
    }

    /// Closed form and LP agree exactly on linear platforms, and the
    /// closed-form shares realize simultaneous endings.
    #[test]
    fn closed_form_equals_lp(platform in platform_strategy(5), n in 1usize..=100_000) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let cf = closed_form_distribution(&view, n).unwrap();
        let h = heuristic_distribution(&view, n).unwrap();
        prop_assert_eq!(&cf.duration, &h.rational_makespan,
                        "closed form and LP must find the same optimum");
        let share_sum = cf.shares.iter().fold(gs_numeric::Rational::zero(), |a, s| a + s);
        prop_assert_eq!(share_sum, gs_numeric::Rational::from(n));
    }

    /// Theorem 3 (integer form): descending bandwidth is never beaten by
    /// more than the rounding slack by any other ordering.
    #[test]
    fn descending_order_is_best_up_to_rounding(platform in platform_strategy(4), n in 50usize..=200) {
        let desc_order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&desc_order);
        let desc = optimal_distribution(&view, n).unwrap();
        let best = best_order_exhaustive(&platform, n);
        // Integer effects can make another order win by at most one item's
        // worth of comm + comp (the §4.4 guarantee band).
        let slack: f64 = platform.procs().iter().map(|p| p.comm.eval(1)).sum::<f64>()
            + platform.procs().iter().map(|p| p.comp.eval(1)).fold(0.0, f64::max);
        prop_assert!(desc.makespan <= best.makespan + slack + 1e-9,
                     "desc {} vs best {} (+slack {slack})", desc.makespan, best.makespan);
    }

    /// The planner always conserves items and produces valid displacements.
    #[test]
    fn plans_are_well_formed(platform in platform_strategy(6), n in 0usize..=10_000) {
        for strategy in [PlanStrategy::Uniform, PlanStrategy::Heuristic, PlanStrategy::ClosedForm] {
            let plan = Planner::new(platform.clone()).strategy(strategy).plan(n).unwrap();
            prop_assert_eq!(plan.total_items(), n);
            let p = platform.len();
            let mut covered = vec![false; n];
            for i in 0..p {
                for slot in covered[plan.displs[i]..plan.displs[i] + plan.counts[i]].iter_mut() {
                    prop_assert!(!*slot, "overlapping blocks");
                    *slot = true;
                }
            }
            prop_assert!(covered.into_iter().all(|c| c), "gaps in the layout");
        }
    }

    /// Makespan monotonicity: more items never finish earlier (exact DP).
    #[test]
    fn makespan_monotone_in_n(platform in platform_strategy(4), n in 1usize..=60) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let small = optimal_distribution(&view, n).unwrap();
        let big = optimal_distribution(&view, n + 1).unwrap();
        prop_assert!(big.makespan >= small.makespan - 1e-9);
    }
}
