//! Property tests over random platforms: the paper's guarantees must hold
//! on *every* valid input, not just the testbed.

use grid_scatter::prelude::{OrderPolicy, Planner, Platform, Processor};
use grid_scatter::scatter::brute::{best_order_exhaustive, brute_force_distribution};
use grid_scatter::scatter::closed_form::closed_form_distribution;
use grid_scatter::scatter::dp_basic::optimal_distribution_basic;
use grid_scatter::scatter::dp_dc::optimal_distribution_dc;
use grid_scatter::scatter::dp_optimized::optimal_distribution;
use grid_scatter::scatter::heuristic::heuristic_distribution;
use grid_scatter::scatter::ordering::scatter_order;
use grid_scatter::scatter::planner::Strategy as PlanStrategy;
use proptest::prelude::*;

// Silence the unused-import lint for Plan (used in type positions only on
// some configurations).
#[allow(unused_imports)]
use grid_scatter::prelude::Plan as _Plan;

/// Random affine platform: root first, then workers with non-zero
/// intercepts (still monotone, so Algorithm 2 and the D&C kernel apply).
fn affine_platform_strategy(max_p: usize) -> impl Strategy<Value = Platform> {
    let worker = (0u32..=50, 1u32..=300, 0u32..=50, 1u32..=300).prop_map(|(bi, b, ai, a)| {
        (bi as f64 * 1e-2, b as f64 * 1e-3, ai as f64 * 1e-2, a as f64 * 1e-2)
    });
    (proptest::collection::vec(worker, 1..max_p), 1u32..=300).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::affine("root", 0.0, 0.0, 0.0, root_a as f64 * 1e-2)];
        for (i, (bi, b, ai, a)) in workers.into_iter().enumerate() {
            procs.push(Processor::affine(format!("w{i}"), bi, b, ai, a));
        }
        Platform::new(procs, 0).unwrap()
    })
}

/// Random platform with deliberately *non-monotone* communication costs:
/// Algorithm 2's premise is violated, so the D&C kernel must demote
/// itself to Algorithm 1 and still return the true optimum.
fn nonmonotone_platform_strategy(max_p: usize) -> impl Strategy<Value = Platform> {
    let worker = (1u32..=50, 1u32..=100).prop_map(|(amp, a)| (amp as f64 * 1e-2, a as f64 * 1e-2));
    (proptest::collection::vec(worker, 1..max_p), 1u32..=100).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::linear("root", 0.0, root_a as f64 * 1e-2)];
        for (i, (amp, a)) in workers.into_iter().enumerate() {
            // Oscillating but non-negative comm: 1, 0, 1, 0, … scaled by
            // amp — guaranteed to fail any monotonicity probe for n ≥ 2.
            procs.push(Processor::custom(
                format!("w{i}"),
                move |x| amp * ((x % 2) as f64 + 0.5) + 1e-3 * x as f64,
                move |x| a * x as f64,
            ));
        }
        Platform::new(procs, 0).unwrap()
    })
}

/// Random linear platform: root first (beta 0), then workers.
fn platform_strategy(max_p: usize) -> impl Strategy<Value = Platform> {
    let worker = (1u32..=300, 1u32..=300).prop_map(|(b, a)| (b as f64 * 1e-3, a as f64 * 1e-2));
    (proptest::collection::vec(worker, 1..max_p), 1u32..=300).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::linear("root", 0.0, root_a as f64 * 1e-2)];
        for (i, (b, a)) in workers.into_iter().enumerate() {
            procs.push(Processor::linear(format!("w{i}"), b, a));
        }
        Platform::new(procs, 0).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Algorithm 2 ≡ Algorithm 1 ≡ exhaustive enumeration (small n).
    #[test]
    fn dp_algorithms_are_optimal(platform in platform_strategy(4), n in 0usize..=14) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let basic = optimal_distribution_basic(&view, n).unwrap();
        let opt = optimal_distribution(&view, n).unwrap();
        let brute = brute_force_distribution(&view, n);
        prop_assert!((basic.makespan - brute.makespan).abs() < 1e-9,
                     "basic {} vs brute {}", basic.makespan, brute.makespan);
        prop_assert!((opt.makespan - brute.makespan).abs() < 1e-9,
                     "optimized {} vs brute {}", opt.makespan, brute.makespan);
        prop_assert_eq!(basic.counts.iter().sum::<usize>(), n);
        prop_assert_eq!(opt.counts.iter().sum::<usize>(), n);
    }

    /// The Eq. (4) sandwich: T_rat <= T_opt <= T' <= T_rat + Σβ·1 + max α·1.
    #[test]
    fn heuristic_guarantee_always_holds(platform in platform_strategy(5), n in 1usize..=400) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let h = heuristic_distribution(&view, n).unwrap();
        let exact = optimal_distribution(&view, n).unwrap();
        prop_assert!(h.rational_makespan.to_f64() <= exact.makespan * (1.0 + 1e-12) + 1e-12);
        prop_assert!(exact.makespan <= h.makespan * (1.0 + 1e-12) + 1e-12);
        prop_assert!(h.makespan <= h.guarantee_bound * (1.0 + 1e-12) + 1e-12,
                     "Eq.(4) violated: {} > {}", h.makespan, h.guarantee_bound);
    }

    /// Closed form and LP agree exactly on linear platforms, and the
    /// closed-form shares realize simultaneous endings.
    #[test]
    fn closed_form_equals_lp(platform in platform_strategy(5), n in 1usize..=100_000) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let cf = closed_form_distribution(&view, n).unwrap();
        let h = heuristic_distribution(&view, n).unwrap();
        prop_assert_eq!(&cf.duration, &h.rational_makespan,
                        "closed form and LP must find the same optimum");
        let share_sum = cf.shares.iter().fold(gs_numeric::Rational::zero(), |a, s| a + s);
        prop_assert_eq!(share_sum, gs_numeric::Rational::from(n));
    }

    /// Theorem 3 (integer form): descending bandwidth is never beaten by
    /// more than the rounding slack by any other ordering.
    #[test]
    fn descending_order_is_best_up_to_rounding(platform in platform_strategy(4), n in 50usize..=200) {
        let desc_order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&desc_order);
        let desc = optimal_distribution(&view, n).unwrap();
        let best = best_order_exhaustive(&platform, n);
        // Integer effects can make another order win by at most one item's
        // worth of comm + comp (the §4.4 guarantee band).
        let slack: f64 = platform.procs().iter().map(|p| p.comm.eval(1)).sum::<f64>()
            + platform.procs().iter().map(|p| p.comp.eval(1)).fold(0.0, f64::max);
        prop_assert!(desc.makespan <= best.makespan + slack + 1e-9,
                     "desc {} vs best {} (+slack {slack})", desc.makespan, best.makespan);
    }

    /// The planner always conserves items and produces valid displacements.
    #[test]
    fn plans_are_well_formed(platform in platform_strategy(6), n in 0usize..=10_000) {
        for strategy in [PlanStrategy::Uniform, PlanStrategy::Heuristic, PlanStrategy::ClosedForm] {
            let plan = Planner::new(platform.clone()).strategy(strategy).plan(n).unwrap();
            prop_assert_eq!(plan.total_items(), n);
            let p = platform.len();
            let mut covered = vec![false; n];
            for i in 0..p {
                for slot in covered[plan.displs[i]..plan.displs[i] + plan.counts[i]].iter_mut() {
                    prop_assert!(!*slot, "overlapping blocks");
                    *slot = true;
                }
            }
            prop_assert!(covered.into_iter().all(|c| c), "gaps in the layout");
        }
    }

    /// Makespan monotonicity: more items never finish earlier (exact DP).
    #[test]
    fn makespan_monotone_in_n(platform in platform_strategy(4), n in 1usize..=60) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let small = optimal_distribution(&view, n).unwrap();
        let big = optimal_distribution(&view, n + 1).unwrap();
        prop_assert!(big.makespan >= small.makespan - 1e-9);
    }

    /// The D&C kernel ≡ Algorithm 2 on linear costs, bit for bit —
    /// same counts (tie-breaks included) and the same makespan bits as
    /// Algorithm 1.
    #[test]
    fn dc_kernel_matches_algorithm_2_linear(platform in platform_strategy(6), n in 0usize..=300) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let dc = optimal_distribution_dc(&view, n).unwrap();
        let opt = optimal_distribution(&view, n).unwrap();
        let basic = optimal_distribution_basic(&view, n).unwrap();
        prop_assert_eq!(&dc.counts, &opt.counts, "D&C tie-breaks must match Algorithm 2");
        prop_assert_eq!(dc.makespan.to_bits(), opt.makespan.to_bits());
        prop_assert_eq!(dc.makespan.to_bits(), basic.makespan.to_bits(),
                        "dc {} vs basic {}", dc.makespan, basic.makespan);
    }

    /// Same contract on affine costs (non-zero intercepts shift every
    /// crossing point; the split recursion must not care).
    #[test]
    fn dc_kernel_matches_algorithm_2_affine(platform in affine_platform_strategy(5), n in 0usize..=200) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let dc = optimal_distribution_dc(&view, n).unwrap();
        let opt = optimal_distribution(&view, n).unwrap();
        let basic = optimal_distribution_basic(&view, n).unwrap();
        prop_assert_eq!(&dc.counts, &opt.counts, "D&C tie-breaks must match Algorithm 2");
        prop_assert_eq!(dc.makespan.to_bits(), opt.makespan.to_bits());
        prop_assert_eq!(dc.makespan.to_bits(), basic.makespan.to_bits());
    }

    /// Non-monotone costs: Algorithm 2 rejects the input outright, the
    /// D&C kernel demotes itself to Algorithm 1 — and must be fully
    /// identical to it (counts and makespan bits).
    #[test]
    fn dc_kernel_falls_back_on_nonmonotone_costs(platform in nonmonotone_platform_strategy(4), n in 0usize..=60) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        if n >= 2 && view.len() > 1 {
            prop_assert!(optimal_distribution(&view, n).is_err(),
                         "Algorithm 2 must reject oscillating costs");
        }
        let dc = optimal_distribution_dc(&view, n).unwrap();
        let basic = optimal_distribution_basic(&view, n).unwrap();
        prop_assert_eq!(&dc.counts, &basic.counts);
        prop_assert_eq!(dc.makespan.to_bits(), basic.makespan.to_bits());
    }
}

/// Degenerate shapes the split recursion must survive: no items, fewer
/// items than processors, and a single (root-only) platform.
#[test]
fn dc_kernel_degenerate_shapes() {
    let platform = Platform::new(
        vec![
            Processor::linear("root", 0.0, 3e-3),
            Processor::linear("w0", 1e-4, 2e-3),
            Processor::linear("w1", 2e-4, 1e-3),
            Processor::linear("w2", 5e-5, 4e-3),
        ],
        0,
    )
    .unwrap();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    // n = 0 and n < p.
    for n in [0usize, 1, 2, 3] {
        let dc = optimal_distribution_dc(&view, n).unwrap();
        let opt = optimal_distribution(&view, n).unwrap();
        assert_eq!(dc.counts, opt.counts, "n={n}");
        assert_eq!(dc.makespan.to_bits(), opt.makespan.to_bits(), "n={n}");
        assert_eq!(dc.counts.iter().sum::<usize>(), n);
    }
    // p = 1: the root keeps everything.
    let solo = Platform::new(vec![Processor::linear("root", 0.0, 2.0)], 0).unwrap();
    let view = solo.ordered(&[0]);
    let dc = optimal_distribution_dc(&view, 5).unwrap();
    assert_eq!(dc.counts, vec![5]);
    assert_eq!(dc.makespan, 10.0);
}
