//! Invariants of the fault-tolerant scatter (`docs/robustness.md`),
//! property-tested over seeded fault plans on random platforms:
//!
//! * **recovered mode** — for any [`FaultPlan`] whose root survives
//!   (the root cannot fault by construction), every item is computed
//!   exactly once, bytes are conserved, and each re-plan the runtime
//!   performed matches a from-scratch optimal plan of the residual
//!   instance over the survivors;
//! * **degraded mode** — lost + computed items account for every item,
//!   and the delivered ranges still tile without overlap;
//! * the executed (gs-minimpi) run agrees with the simulator **bit for
//!   bit**, because both drive the same fault oracle.

use grid_scatter::gridsim::fault::{simulate_scatter_ft, FtScatterSim};
use grid_scatter::minimpi::{executed_trace_ft, run_world, FtConfig, WorldConfig};
use grid_scatter::scatter::cost::{Platform, Processor};
use grid_scatter::scatter::fault::{replan_residual, FaultPlan, RecoveryConfig};
use grid_scatter::scatter::ordering::OrderPolicy;
use grid_scatter::scatter::planner::{Planner, Strategy};
use proptest::prelude::*;

const ITEM_BYTES: u64 = 8;

/// A platform of `p` processors in scatter order (root last, free
/// self-link), with heterogeneity drawn from the given knobs.
fn make_procs(p: usize, betas: &[f64], alphas: &[f64]) -> Vec<Processor> {
    (0..p)
        .map(|i| {
            if i == p - 1 {
                Processor::linear("root", 0.0, alphas[i])
            } else {
                Processor::linear(format!("w{i}"), betas[i], alphas[i])
            }
        })
        .collect()
}

/// The delivered ranges of every rank, checked pairwise disjoint, as a
/// sorted list.
fn sorted_disjoint_ranges(ft: &FtScatterSim) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = ft
        .assignments
        .iter()
        .flatten()
        .copied()
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        assert!(w[0].1 <= w[1].0, "overlapping deliveries: {:?} vs {:?}", w[0], w[1]);
    }
    ranges
}

/// Recovered-mode contract: `[0, n)` is tiled exactly once, nothing is
/// lost, bytes are conserved, and every re-plan was optimal for its
/// residual instance.
fn assert_recovered_invariants(ft: &FtScatterSim, procs: &[Processor], n: u64) {
    assert_eq!(ft.lost_items, 0, "recovered mode loses nothing");
    assert_eq!(ft.computed_items, n, "every item computed");
    let ranges = sorted_disjoint_ranges(ft);
    let mut next = 0u64;
    for &(lo, hi) in &ranges {
        assert_eq!(lo, next, "gap before item {lo}");
        next = hi;
    }
    assert_eq!(next, n, "items {next}..{n} never delivered");

    // Byte conservation through the trace: Σ link bytes = n × item size.
    let names: Vec<&str> = procs.iter().map(|p| p.name.as_str()).collect();
    let trace = ft.trace(&names, ITEM_BYTES);
    trace.validate().expect("recovered trace validates");
    let summary = trace.summarize().expect("recovered trace summarizes");
    assert_eq!(summary.total_bytes, n * ITEM_BYTES, "bytes conserved");

    // Each re-plan the runtime performed equals a from-scratch optimal
    // plan of (residual items, survivors) — recomputed independently
    // here via the public planner on the survivor sub-platform.
    for r in &ft.replans {
        let survivors: Vec<Processor> =
            r.survivors.iter().map(|&s| procs[s].clone()).collect();
        let sub = Platform::new(survivors, r.survivors.len() - 1).unwrap();
        let plan = Planner::new(sub)
            .strategy(Strategy::Exact)
            .order_policy(OrderPolicy::AsIs)
            .plan(r.items as usize)
            .expect("from-scratch plan of the residual instance");
        assert_eq!(
            plan.counts_in_order(),
            r.counts.iter().map(|&c| c as usize).collect::<Vec<_>>(),
            "re-plan at t={} is the optimal residual distribution",
            r.t
        );
        // And the library helper agrees with itself.
        let view: Vec<&Processor> = procs.iter().collect();
        let mut alive = vec![false; procs.len()];
        for &s in &r.survivors {
            alive[s] = true;
        }
        let rp = replan_residual(&view, &alive, r.items, Strategy::Exact).unwrap();
        assert_eq!(rp.counts, r.counts);
    }
}

/// Degraded-mode contract: no double delivery, and the loss accounting
/// is exact.
fn assert_degraded_invariants(ft: &FtScatterSim, n: u64) {
    let delivered: u64 = sorted_disjoint_ranges(ft).iter().map(|&(lo, hi)| hi - lo).sum();
    assert_eq!(delivered, ft.computed_items);
    assert_eq!(
        ft.computed_items + ft.lost_items,
        n,
        "lost + computed accounts for every item"
    );
    assert!(ft.replans.is_empty(), "degraded mode never re-plans");
}

/// Runs the same instance through the gs-minimpi fault-tolerant
/// runtime and returns its executed trace.
fn run_executed(
    procs: &[Processor],
    counts: &[usize],
    faults: &FaultPlan,
    recovery: Option<RecoveryConfig>,
) -> grid_scatter::scatter::obs::Trace {
    let p = procs.len();
    let config = FtConfig {
        faults: faults.clone(),
        recovery,
        procs: procs.to_vec(),
        item_bytes: ITEM_BYTES,
    };
    let recovered = config.recovery.is_some();
    let counts = counts.to_vec();
    let total: usize = counts.iter().sum();
    let out = run_world(p, WorldConfig::default(), move |c| {
        c.enable_tracing();
        let data: Vec<u64> = (0..total as u64).collect();
        let mine = c.scatterv_ft(
            &config,
            if c.rank() == p - 1 { Some(&data) } else { None },
            &counts,
        );
        c.model_compute_ft(&config, mine.len());
        (mine, c.take_trace(), c.take_incidents())
    });
    // Cross-check the physical payloads: items received across ranks
    // are pairwise distinct (the exactly-once property holds for the
    // real bytes, not just the bookkeeping).
    let mut all: Vec<u64> = out.iter().flat_map(|(m, _, _)| m.iter().copied()).collect();
    all.sort_unstable();
    for w in all.windows(2) {
        assert!(w[0] < w[1], "item {} delivered twice", w[0]);
    }
    let names: Vec<&str> = procs.iter().map(|p| p.name.as_str()).collect();
    let records: Vec<_> = out.iter().map(|(_, r, _)| r.clone()).collect();
    let incidents = out[p - 1].2.clone();
    executed_trace_ft(&names, ITEM_BYTES, &records, incidents, recovered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The headline property: any seeded fault plan, recovered mode —
    /// exactly-once delivery, byte conservation, optimal re-plans.
    #[test]
    fn recovered_scatter_computes_everything_exactly_once(
        p in 2usize..7,
        n in 50usize..800,
        seed in any::<u64>(),
        knobs in proptest::collection::vec((1e-5f64..1e-3, 1e-3f64..0.02), 7),
    ) {
        let betas: Vec<f64> = knobs.iter().map(|k| k.0).collect();
        let alphas: Vec<f64> = knobs.iter().map(|k| k.1).collect();
        let procs = make_procs(p, &betas, &alphas);
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![n / p + 1; p]; // any positive layout works
        let total: u64 = counts.iter().map(|&c| c as u64).sum();

        // Horizon: the fault-free makespan of this layout.
        let clean = simulate_scatter_ft(&view, &counts, &FaultPlan::none(), None).unwrap();
        let faults = FaultPlan::seeded(seed, p, clean.makespan);

        let rc = RecoveryConfig::default();
        let ft = simulate_scatter_ft(&view, &counts, &faults, Some(&rc)).unwrap();
        assert_recovered_invariants(&ft, &procs, total);
    }

    /// Degraded mode: the loss is accounted item by item.
    #[test]
    fn degraded_scatter_accounts_for_every_item(
        p in 2usize..7,
        n in 50usize..800,
        seed in any::<u64>(),
    ) {
        let betas = vec![1e-4; 7];
        let alphas = vec![5e-3; 7];
        let procs = make_procs(p, &betas, &alphas);
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![n / p + 1; p];
        let total: u64 = counts.iter().map(|&c| c as u64).sum();

        let clean = simulate_scatter_ft(&view, &counts, &FaultPlan::none(), None).unwrap();
        let faults = FaultPlan::seeded(seed, p, clean.makespan);
        let ft = simulate_scatter_ft(&view, &counts, &faults, None).unwrap();
        assert_degraded_invariants(&ft, total);
    }

    /// Simulated and executed runs share the fault oracle: identical
    /// label, incidents, makespan and per-rank schedule — on seeded
    /// plans, both modes.
    #[test]
    fn executed_run_agrees_with_simulator(
        p in 2usize..5,
        seed in any::<u64>(),
        degraded in any::<bool>(),
    ) {
        let betas = vec![2e-4, 5e-4, 1e-4, 3e-4, 0.0];
        let alphas = vec![4e-3, 2e-3, 8e-3, 3e-3, 5e-3];
        let procs = make_procs(p, &betas, &alphas);
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![40usize; p];

        let clean = simulate_scatter_ft(&view, &counts, &FaultPlan::none(), None).unwrap();
        let faults = FaultPlan::seeded(seed, p, clean.makespan);
        let recovery = if degraded { None } else { Some(RecoveryConfig::default()) };

        let sim = simulate_scatter_ft(&view, &counts, &faults, recovery.as_ref()).unwrap();
        let names: Vec<&str> = procs.iter().map(|p| p.name.as_str()).collect();
        let sim_trace = sim.trace(&names, ITEM_BYTES);
        let exec_trace = run_executed(&procs, &counts, &faults, recovery);

        prop_assert_eq!(&exec_trace.label, &sim_trace.label);
        prop_assert_eq!(&exec_trace.incidents, &sim_trace.incidents);
        let (se, ss) = (
            exec_trace.summarize().unwrap(),
            sim_trace.summarize().unwrap(),
        );
        prop_assert_eq!(se.makespan, ss.makespan);
        prop_assert_eq!(se.total_bytes, ss.total_bytes);
        for (re, rs) in se.ranks.iter().zip(&ss.ranks) {
            prop_assert_eq!(re.send, rs.send, "send of {}", rs.name);
            prop_assert_eq!(re.compute, rs.compute, "compute of {}", rs.name);
            prop_assert_eq!(re.finish, rs.finish, "finish of {}", rs.name);
            prop_assert_eq!(re.bytes_in, rs.bytes_in, "bytes of {}", rs.name);
        }
    }
}

/// The ISSUE acceptance scenario on the paper's testbed: the *fastest*
/// non-root rank (first served, biggest early block) crashes
/// mid-scatter; the recovered run still computes all items.
#[test]
fn table1_fastest_rank_crash_recovers() {
    let platform = grid_scatter::scatter::paper::table1_platform();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(20_000)
        .unwrap();
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let names: Vec<&str> = view.iter().map(|p| p.name.as_str()).collect();

    // Crash the first-served (fastest-link) rank mid-scatter: half-way
    // through its own (first) transfer, so the send itself is refused.
    let mid_transfer = view[0].comm.eval(counts[0]) * 0.5;
    let spec = format!("crash:{}@{}", names[0], mid_transfer);
    let faults = FaultPlan::parse(&spec, &names, plan.predicted_makespan).unwrap();

    let rc = RecoveryConfig::default();
    let ft = simulate_scatter_ft(&view, &counts, &faults, Some(&rc)).unwrap();
    let procs: Vec<Processor> = view.iter().map(|&p| p.clone()).collect();
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    assert_recovered_invariants(&ft, &procs, total);
    assert!(ft.dead[0], "the crashed rank is declared dead");
    assert!(!ft.replans.is_empty(), "its share was re-planned");
    assert!(
        ft.makespan > plan.predicted_makespan,
        "recovery costs time: {} vs predicted {}",
        ft.makespan,
        plan.predicted_makespan
    );
}
