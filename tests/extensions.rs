//! Cross-crate integration of the extensions: multi-round/adaptive
//! planning, gather-aware planning, the k-port ablation, the inversion
//! loop, and the source-rewriting tool — all driven through the public
//! facade.

use grid_scatter::gridsim::multiport::{simulate_multiport, MultiportConfig};
use grid_scatter::prelude::*;
use grid_scatter::scatter::gather::{
    gather_aware_distribution, makespan_with_gather, GatherProcessor,
};
use grid_scatter::scatter::multiround::{plan_rounds_with, platform_under_load};
use grid_scatter::scatter::paper::table1_platform;
use grid_scatter::scatter::planner::Strategy;
use grid_scatter::seismic::invert_app::{run_parallel_inversion, InversionConfig};
use grid_scatter::transform::{emit_plan_arrays, transform_source, CodegenOptions};

#[test]
fn adaptive_multiround_on_table1() {
    // Sekhmet (index 3) gets a 3x background job before round 2; the
    // adaptive plan sheds its load.
    let base = table1_platform();
    let mp = plan_rounds_with(&[50_000, 50_000], |round, _start| {
        let mut factors = vec![1.0; 16];
        if round == 1 {
            factors[3] = 3.0;
        }
        Ok(Planner::new(platform_under_load(&base, &factors)?).strategy(Strategy::Heuristic))
    })
    .unwrap();
    assert!(mp.rounds[1].counts[3] < mp.rounds[0].counts[3]);
    assert!(mp.predicted_total() > 0.0);
    // Both rounds distribute everything.
    for r in &mp.rounds {
        assert_eq!(r.total_items(), 50_000);
    }
}

#[test]
fn gather_aware_plan_simulates_consistently() {
    // Build gather processors over the ordered Table-1 view, plan, and
    // check the evaluator agrees with a manual prefix computation.
    let platform = table1_platform();
    let plan = Planner::new(platform.clone()).strategy(Strategy::Heuristic).plan(10_000).unwrap();
    let view = platform.ordered(&plan.order);
    let gprocs: Vec<GatherProcessor> = view
        .iter()
        .map(|p| {
            let beta = p.comm.linear_slope().unwrap_or(0.0);
            GatherProcessor::with_linear_back((*p).clone(), beta)
        })
        .collect();
    let gview: Vec<&GatherProcessor> = gprocs.iter().collect();
    let sol = gather_aware_distribution(&gview, 10_000).unwrap();
    assert_eq!(sol.counts.iter().sum::<usize>(), 10_000);
    // The evaluated makespan of the LP's own counts can't be better than
    // its rational bound.
    assert!(sol.makespan >= sol.rational_makespan.to_f64() - 1e-9);
    // And must beat (or tie) evaluating the forward-only plan.
    let fwd = makespan_with_gather(&gview, &plan.counts_in_order());
    assert!(sol.makespan <= fwd + 1e-9);
}

#[test]
fn multiport_extends_the_planner_plan() {
    let platform = table1_platform();
    let plan = Planner::new(platform.clone()).strategy(Strategy::Heuristic).plan(200_000).unwrap();
    let view = platform.ordered(&plan.order);
    let counts = plan.counts_in_order();
    let single = simulate_multiport(
        &view,
        &counts,
        &MultiportConfig::single_port(16),
        &[],
    );
    // Exactly the planner's predicted schedule.
    assert_eq!(single, plan.predicted);
    // 16 ports: no stair, same-or-better makespan.
    let many = simulate_multiport(
        &view,
        &counts,
        &MultiportConfig { ports: 16, sites: vec![0; 16], root_site: 0, wan_serializes: false },
        &[],
    );
    assert!(many.comm_start.iter().all(|&s| s == 0.0));
    assert!(many.makespan() <= single.makespan() + 1e-9);
}

#[test]
fn inversion_on_heterogeneous_grid_matches_uniform_grid_physics() {
    // The same inversion on two very different platforms must produce the
    // same scientific result (factors), differing only in virtual time.
    let mk = |platform: Platform| {
        run_parallel_inversion(&InversionConfig {
            platform,
            strategy: Strategy::Heuristic,
            policy: OrderPolicy::DescendingBandwidth,
            n_rays: 200,
            seed: 77,
            iterations: 3,
            truth_factors: vec![1.0, 1.0, 0.98, 0.98, 1.0],
        })
        .unwrap()
    };
    let hetero = mk(table1_platform());
    let homo = mk(Platform::new(
        (0..4)
            .map(|i| Processor::linear(format!("m{i}"), if i == 0 { 0.0 } else { 1e-5 }, 0.01))
            .collect(),
        0,
    )
    .unwrap());
    for (a, b) in hetero.steps.iter().zip(&homo.steps) {
        assert!((a.rms_residual - b.rms_residual).abs() < 1e-9);
        for (x, y) in a.factors.iter().zip(&b.factors) {
            assert!((x - y).abs() < 1e-9, "same physics on any grid");
        }
    }
}

#[test]
fn transform_plus_plan_round_trip() {
    // The tool's output must reference every processor of the plan.
    let plan = Planner::new(table1_platform())
        .strategy(Strategy::ClosedForm)
        .plan(817_101)
        .unwrap();
    let block = emit_plan_arrays(&plan, &CodegenOptions::default());
    assert!(block.contains("gs_counts[16]"));
    assert!(block.contains("gs_displs[16]"));

    let report = transform_source(
        "MPI_Scatter(raydata, n/P, MPI_RAY, rbuff, n/P, MPI_RAY, ROOT, MPI_COMM_WORLD);",
    );
    assert_eq!(report.rewrites.len(), 1);
    // The counts the generated block carries sum to n.
    let line = block.lines().find(|l| l.contains("gs_counts[16]")).unwrap();
    let inner = &line[line.find('{').unwrap() + 1..line.rfind('}').unwrap()];
    let sum: usize = inner.split(',').map(|v| v.trim().parse::<usize>().unwrap()).sum();
    assert_eq!(sum, 817_101);
}

#[test]
fn nonblocking_overlap_quantifies_the_papers_choice() {
    // §6: the paper keeps communication and computation phases separate.
    // With irecv-style overlap of the *result* wait, a worker's idle wait
    // disappears; quantify on a two-rank toy.
    use grid_scatter::minimpi::{run_world, Tag, TimeModel, WorldConfig};
    let model = TimeModel {
        link: vec![CostFn::Zero, CostFn::Linear { slope: 1.0 }],
        compute: vec![CostFn::Zero; 2],
    };
    let out = run_world(2, WorldConfig::with_time(model), |c| {
        if c.rank() == 0 {
            c.send::<u8>(1, Tag::user(1), &[0; 8]); // arrives t = 8
            0.0
        } else {
            // Blocking discipline (the paper's): recv, then compute.
            // vs overlapped: compute while the transfer flies.
            let req = c.irecv(0, Tag::user(1));
            c.advance(5.0); // 5 s of local work
            let _ = c.wait_bytes(req);
            c.now() // max(5, 8) = 8 — vs 13 if serialized
        }
    });
    assert_eq!(out[1], 8.0);
}
