//! Property tests for the parallel planning engine: every variant —
//! multi-threaded, upper-bound pruned, or both — must return a
//! **bit-identical** `(counts, makespan)` to the serial solvers on random
//! increasing platforms, for thread counts 1, 2 and 8.

use grid_scatter::prelude::{PlanCache, Planner, Platform, Processor, Strategy as PlanStrategy};
use grid_scatter::scatter::dp_basic::optimal_distribution_basic;
use grid_scatter::scatter::dp_dc::optimal_distribution_dc;
use grid_scatter::scatter::dp_optimized::optimal_distribution;
use grid_scatter::scatter::ordering::{scatter_order, OrderPolicy};
use grid_scatter::scatter::parallel::{
    optimal_distribution_basic_parallel, optimal_distribution_dc_parallel,
    optimal_distribution_parallel, ParallelOpts,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Random linear platform: root first (beta 0), then workers.
fn linear_platform(max_p: usize) -> impl Strategy<Value = Platform> {
    let worker = (1u32..=300, 1u32..=300).prop_map(|(b, a)| (b as f64 * 1e-3, a as f64 * 1e-2));
    (proptest::collection::vec(worker, 1..max_p), 1u32..=300).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::linear("root", 0.0, root_a as f64 * 1e-2)];
        for (i, (b, a)) in workers.into_iter().enumerate() {
            procs.push(Processor::linear(format!("w{i}"), b, a));
        }
        Platform::new(procs, 0).unwrap()
    })
}

/// Random affine platform (non-zero intercepts exercise the LP-heuristic
/// pruning bound instead of the closed form).
fn affine_platform(max_p: usize) -> impl Strategy<Value = Platform> {
    let worker = (0u32..=50, 1u32..=300, 0u32..=50, 1u32..=300)
        .prop_map(|(bi, b, ai, a)| (bi as f64 * 1e-2, b as f64 * 1e-3, ai as f64 * 1e-2, a as f64 * 1e-2));
    (proptest::collection::vec(worker, 1..max_p), 1u32..=300).prop_map(|(workers, root_a)| {
        let mut procs = vec![Processor::affine("root", 0.0, 0.0, 0.0, root_a as f64 * 1e-2)];
        for (i, (bi, b, ai, a)) in workers.into_iter().enumerate() {
            procs.push(Processor::affine(format!("w{i}"), bi, b, ai, a));
        }
        Platform::new(procs, 0).unwrap()
    })
}

const THREADS: [usize; 3] = [1, 2, 8];

fn assert_bit_identical(
    got: &grid_scatter::scatter::dp_basic::DpSolution,
    want: &grid_scatter::scatter::dp_basic::DpSolution,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.counts, &want.counts, "{}: counts differ", what);
    prop_assert_eq!(
        got.makespan.to_bits(),
        want.makespan.to_bits(),
        "{}: makespan {} vs {}",
        what,
        got.makespan,
        want.makespan
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel Algorithm 2 ≡ serial, bit for bit, for 1/2/8 threads.
    #[test]
    fn parallel_optimized_is_bit_identical(
        platform in linear_platform(6),
        n in 0usize..=300,
        chunk in 1usize..=64,
    ) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let serial = optimal_distribution(&view, n).unwrap();
        for threads in THREADS {
            let opts = ParallelOpts { threads, prune: false, chunk };
            let par = optimal_distribution_parallel(&view, n, &opts).unwrap();
            assert_bit_identical(&par, &serial, &format!("threads={threads} chunk={chunk}"))?;
        }
    }

    /// Parallel Algorithm 1 ≡ serial, bit for bit, for 1/2/8 threads.
    #[test]
    fn parallel_basic_is_bit_identical(
        platform in linear_platform(5),
        n in 0usize..=150,
        chunk in 1usize..=64,
    ) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let serial = optimal_distribution_basic(&view, n).unwrap();
        for threads in THREADS {
            let opts = ParallelOpts { threads, prune: false, chunk };
            let par = optimal_distribution_basic_parallel(&view, n, &opts).unwrap();
            assert_bit_identical(&par, &serial, &format!("threads={threads} chunk={chunk}"))?;
        }
    }

    /// Upper-bound pruning (closed-form seed on linear costs) never
    /// changes the optimum — combined with any thread count.
    #[test]
    fn pruning_preserves_the_optimum_linear(
        platform in linear_platform(6),
        n in 0usize..=300,
    ) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let serial = optimal_distribution(&view, n).unwrap();
        for threads in THREADS {
            let opts = ParallelOpts { threads, prune: true, chunk: 16 };
            let pruned = optimal_distribution_parallel(&view, n, &opts).unwrap();
            assert_bit_identical(&pruned, &serial, &format!("pruned threads={threads}"))?;
        }
    }

    /// Same with the LP-heuristic seed on affine costs.
    #[test]
    fn pruning_preserves_the_optimum_affine(
        platform in affine_platform(5),
        n in 0usize..=150,
    ) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let serial = optimal_distribution(&view, n).unwrap();
        let opts = ParallelOpts { threads: 2, prune: true, chunk: 16 };
        let pruned = optimal_distribution_parallel(&view, n, &opts).unwrap();
        assert_bit_identical(&pruned, &serial, "pruned affine")?;
    }

    /// The column-chunked D&C kernel ≡ serial Algorithm 2, bit for bit,
    /// for 1/2/8 threads and any chunk width.
    #[test]
    fn parallel_dc_is_bit_identical(
        platform in affine_platform(6),
        n in 0usize..=300,
        chunk in 1usize..=64,
    ) {
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let serial = optimal_distribution(&view, n).unwrap();
        let dc_serial = optimal_distribution_dc(&view, n).unwrap();
        assert_bit_identical(&dc_serial, &serial, "dc serial")?;
        for threads in THREADS {
            let opts = ParallelOpts { threads, prune: false, chunk };
            let dc = optimal_distribution_dc_parallel(&view, n, &opts).unwrap();
            assert_bit_identical(&dc, &serial, &format!("dc threads={threads} chunk={chunk}"))?;
        }
    }

    /// Warm-start re-planning: priming a [`PlanCache`] with a
    /// full-platform solve and re-planning over the surviving suffix
    /// must reuse cached DP columns *and* return a plan bit-identical
    /// to planning from scratch — for both exact strategies.
    #[test]
    fn warm_start_replan_is_bit_identical(
        platform in affine_platform(6),
        prime_n in 50usize..=400,
        n in 0usize..=300,
        drop_first in any::<bool>(),
    ) {
        for strategy in [PlanStrategy::Exact, PlanStrategy::ExactDc] {
            let cache = Arc::new(PlanCache::new());
            Planner::new(platform.clone())
                .strategy(strategy)
                .plan_cache(Arc::clone(&cache))
                .plan(prime_n)
                .unwrap();
            // Survivor platform: drop one worker (the scatter order is
            // recomputed, so any survivor subset is a valid re-plan).
            let procs = platform.procs();
            let surv: Vec<_> = if procs.len() == 1 {
                procs.to_vec()
            } else if drop_first {
                procs.iter().skip(1).cloned().collect()
            } else {
                procs.iter().take(procs.len() - 1).cloned().collect()
            };
            let root = surv.iter().position(|p| p.name == "root").unwrap_or(0);
            let surv = Platform::new(surv, root).unwrap();
            let cold = Planner::new(surv.clone()).strategy(strategy).plan(n).unwrap();
            let warm = Planner::new(surv)
                .strategy(strategy)
                .plan_cache(Arc::clone(&cache))
                .plan(n)
                .unwrap();
            prop_assert_eq!(&warm.counts, &cold.counts, "warm-start changed the plan");
            prop_assert_eq!(
                warm.predicted_makespan.to_bits(),
                cold.predicted_makespan.to_bits(),
                "warm {} vs cold {}",
                warm.predicted_makespan,
                cold.predicted_makespan
            );
        }
    }
}
