//! End-to-end test of the planning daemon over a real TCP socket:
//! starts `gs serve` (as a library, on an ephemeral loopback port),
//! fires concurrent identical requests from separate connections, and
//! asserts the docs/serve.md contract — exactly one compute per cache
//! key (singleflight), bit-identical plans versus a direct library
//! call, structured shed responses under admission pressure, a working
//! `/metrics` HTTP endpoint, and a clean shutdown over the wire.

use std::sync::Arc;

use gs_serve::client::scrape_metrics;
use gs_serve::engine::{Engine, EngineConfig};
use gs_serve::protocol::{
    CacheStatus, ErrorCode, Outcome, PlanParams, Request, RequestBody,
};
use gs_serve::server::serve;
use gs_serve::Client;

use grid_scatter::prelude::*;

const ITEMS: u64 = 50_000;

fn platform_text() -> String {
    grid_scatter::scatter::platform_file::render_platform(
        &grid_scatter::scatter::paper::table1_platform(),
    )
}

fn plan_request(id: &str, items: u64) -> Request {
    Request {
        id: id.into(),
        body: RequestBody::Plan(PlanParams {
            platform: platform_text(),
            items,
            strategy: "exact".into(),
        }),
    }
}

#[test]
fn herd_of_identical_requests_computes_once_and_matches_direct_planning() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr().to_string();

    // The same plan, straight from the library — what `gs plan` prints.
    let platform =
        grid_scatter::scatter::platform_file::parse_platform(&platform_text()).unwrap();
    let direct = Planner::new(platform)
        .strategy(Strategy::Exact)
        .plan(ITEMS as usize)
        .expect("direct plan");

    let herd = 8;
    let workers: Vec<_> = (0..herd)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let resp = client.call(&plan_request(&format!("herd-{i}"), ITEMS)).unwrap();
                match resp.outcome {
                    Outcome::Plan(p) => p,
                    other => panic!("herd request answered {other:?}"),
                }
            })
        })
        .collect();
    let plans: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Exactly one member of the herd was the leader (cache miss); the
    // rest were served from the flight or the result cache. Nobody
    // recomputed.
    let misses = plans.iter().filter(|p| p.cache == CacheStatus::Miss).count();
    assert_eq!(misses, 1, "singleflight must admit exactly one leader");
    for p in &plans {
        assert!(
            matches!(p.cache, CacheStatus::Miss | CacheStatus::Hit | CacheStatus::Coalesced),
            "unexpected cache status {:?}",
            p.cache
        );
    }

    // Every response is bit-identical to the direct library call: same
    // counts, displacements, order, and the exact same makespan float.
    let as_u64 = |v: &[usize]| v.iter().map(|&x| x as u64).collect::<Vec<_>>();
    for p in &plans {
        assert_eq!(p.counts, as_u64(&direct.counts));
        assert_eq!(p.displs, as_u64(&direct.displs));
        assert_eq!(p.order, as_u64(&direct.order));
        assert_eq!(p.makespan.to_bits(), direct.predicted_makespan.to_bits());
    }

    // A follow-up request on a fresh connection is a plain cache hit.
    let mut client = Client::connect(&addr).unwrap();
    match client.call(&plan_request("after", ITEMS)).unwrap().outcome {
        Outcome::Plan(p) => assert_eq!(p.cache, CacheStatus::Hit),
        other => panic!("follow-up answered {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn overload_is_shed_with_a_structured_response() {
    // max_inflight = 0 makes every planning request an admission
    // failure, deterministically.
    let engine = Arc::new(Engine::new(EngineConfig { max_inflight: 0, ..Default::default() }));
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.addr()).unwrap();

    let resp = client.call(&plan_request("shed", ITEMS)).unwrap();
    match resp.outcome {
        Outcome::Error { code, message } => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert!(message.contains("retry"), "{message}");
        }
        other => panic!("expected a shed response, got {other:?}"),
    }
    // Non-planning requests are never shed.
    let pong = client.call(&Request { id: "p".into(), body: RequestBody::Ping }).unwrap();
    assert!(matches!(pong.outcome, Outcome::Pong));

    handle.shutdown();
    handle.join();
}

#[test]
fn metrics_are_exposed_over_the_wire_and_over_http() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    client.call(&plan_request("warmup", ITEMS + 7)).unwrap();

    // In-band metrics request.
    let resp = client.call(&Request { id: "m".into(), body: RequestBody::Metrics }).unwrap();
    let Outcome::Metrics { prometheus } = resp.outcome else {
        panic!("metrics request failed: {resp:?}");
    };
    assert!(prometheus.contains("serve_requests_total"), "{prometheus}");

    // Same content via a plain HTTP GET on the same port.
    let scraped = scrape_metrics(addr).expect("scrape /metrics");
    assert!(scraped.contains("# TYPE serve_requests_total counter"), "{scraped}");
    assert!(scraped.contains("serve_connections_total"), "{scraped}");

    handle.shutdown();
    handle.join();
}

/// The observability contract of `gs serve --span-log`
/// (docs/observability.md): every answered request leaves a Chrome
/// trace-event file `req-<id>.json` whose root `request` span carries
/// the request id and at least four stage children (decode, cache,
/// compute, encode for a cache-miss plan).
#[test]
fn span_log_writes_per_request_chrome_trace_with_stage_children() {
    use gs_scatter::obs::{json, span};
    use gs_serve::server::serve_with_span_log;

    let dir = std::env::temp_dir().join(format!("gs-span-log-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    span::set_enabled(true);
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve_with_span_log(engine, "127.0.0.1:0", Some(dir.clone())).expect("bind");

    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.call(&plan_request("span-e2e", ITEMS + 13)).unwrap();
    assert!(matches!(resp.outcome, Outcome::Plan(_)), "{resp:?}");
    handle.shutdown();
    handle.join();

    // The session thread writes the file after flushing the response:
    // poll briefly instead of racing it.
    let path = dir.join("req-span-e2e.json");
    let mut text = String::new();
    for _ in 0..200 {
        if let Ok(t) = std::fs::read_to_string(&path) {
            text = t;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!text.is_empty(), "span log {path:?} was never written");

    let doc = json::parse(&text).expect("span log is valid JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents");
    let arg = |e: &json::Json, key: &str| {
        e.get("args").and_then(|a| a.get(key)).and_then(|v| v.as_str()).map(String::from)
    };
    let root = events
        .iter()
        .find(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("request")
                && arg(e, "request_id").as_deref() == Some("span-e2e")
        })
        .expect("root `request` span tagged with the request id");
    let root_span_id = arg(root, "id").expect("root span id");
    // Stage children: spans parented directly to the root.
    let stages: std::collections::BTreeSet<String> = events
        .iter()
        .filter(|e| arg(e, "parent").as_deref() == Some(root_span_id.as_str()))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .map(String::from)
        .collect();
    assert!(
        stages.len() >= 4,
        "a cache-miss plan must record >= 4 stage spans under the root, got {stages:?}"
    );
    for want in ["request.decode", "request.cache", "request.compute", "request.encode"] {
        assert!(stages.contains(want), "missing stage {want}: {stages:?}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    let resp = client.call(&Request { id: "bye".into(), body: RequestBody::Shutdown }).unwrap();
    assert!(matches!(resp.outcome, Outcome::ShuttingDown), "{resp:?}");
    // join() returning proves the accept loop exited.
    handle.join();
}
