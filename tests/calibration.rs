//! End-to-end calibration and drift-gate checks, at the `gs` command
//! level (the ISSUE acceptance criteria for the observability PR):
//!
//! * `gs calibrate` on executed traces of a synthetic affine platform
//!   recovers every `(β_i, b_i, α_i, a_i)` within 1% relative error;
//! * the drift gate passes a faithful trace and fails a perturbed model,
//!   which is exactly what the CI steps script around exit codes.

use grid_scatter::scatter::calibrate::{Calibration, DriftReport};
use grid_scatter::scatter::obs::json::trace_from_json;
use grid_scatter::scatter::planner::Strategy;
use gs_cli::commands::{cmd_calibrate, cmd_report_drift, cmd_trace, PlanOptions};
use gs_cli::platform_file::parse_platform;

/// A deliberately heterogeneous affine platform: every processor has
/// nonzero slopes *and* intercepts so all four parameters per rank are
/// observable.
const AFFINE_PLATFORM: &str = "\
proc root beta=0 alpha=0.011 comp_intercept=0.003\n\
proc w1 beta=1.3e-4 alpha=0.0047 comm_intercept=0.02 comp_intercept=0.001\n\
proc w2 beta=2.9e-4 alpha=0.0162 comm_intercept=0.007 comp_intercept=0.004\n\
proc w3 beta=6.1e-5 alpha=0.0081 comm_intercept=0.013 comp_intercept=0.002\n\
root root\n";

fn opts(items: usize) -> PlanOptions {
    PlanOptions { items, ..Default::default() }
}

fn executed(items: usize) -> String {
    cmd_trace(AFFINE_PLATFORM, &opts(items), "executed", 8).unwrap()
}

#[test]
fn calibrate_recovers_affine_params_within_one_percent() {
    // Two different problem sizes give two (n, T) samples per rank and
    // cost kind — enough to solve for slope and intercept.
    let traces: Vec<_> = [700usize, 1900]
        .iter()
        .map(|&n| trace_from_json(&executed(n)).unwrap())
        .collect();
    let cal = Calibration::from_traces(&traces).unwrap();
    let fitted = cal.platform().unwrap();
    let truth = parse_platform(AFFINE_PLATFORM).unwrap();

    for fit in fitted.procs() {
        let real = truth.procs().iter().find(|p| p.name == fit.name).unwrap();
        let (fit_ci, fit_b) = fit.comm.affine_params().unwrap_or((0.0, 0.0));
        let (real_ci, real_b) = real.comm.affine_params().unwrap_or((0.0, 0.0));
        let (fit_pi, fit_a) = fit.comp.affine_params().unwrap();
        let (real_pi, real_a) = real.comp.affine_params().unwrap();
        let within = |fitted: f64, real: f64, what: &str| {
            let rel = (fitted - real).abs() / real.abs().max(1e-12);
            assert!(rel < 0.01, "{}: {what} fitted {fitted} vs real {real} (rel {rel:.2e})",
                    fit.name);
        };
        // The root keeps its block: its link is unobservable and must
        // come back as a zero cost, not a fantasy fit.
        if fit.name == "root" {
            assert_eq!((fit_ci, fit_b), (0.0, 0.0), "root comm must fit to zero");
        } else {
            within(fit_b, real_b, "beta");
            within(fit_ci, real_ci, "comm intercept");
        }
        within(fit_a, real_a, "alpha");
        within(fit_pi, real_pi, "comp intercept");
    }
}

#[test]
fn calibrated_replan_matches_the_true_optimum() {
    let traces: Vec<_> = [700usize, 1900]
        .iter()
        .map(|&n| trace_from_json(&executed(n)).unwrap())
        .collect();
    let cal = Calibration::from_traces(&traces).unwrap();
    let replanned = cal.replan(5_000, Strategy::Heuristic).unwrap();
    let truth = parse_platform(AFFINE_PLATFORM).unwrap();
    let reference = gs_scatter::planner::Planner::new(truth).plan(5_000).unwrap();
    let rel = (replanned.predicted_makespan - reference.predicted_makespan).abs()
        / reference.predicted_makespan;
    assert!(rel < 1e-2, "replanned {} vs reference {} (rel {rel:.2e})",
            replanned.predicted_makespan, reference.predicted_makespan);
}

#[test]
fn cmd_calibrate_output_reparses_as_a_platform() {
    let out = cmd_calibrate(&[executed(700), executed(1900)]).unwrap();
    let fitted = parse_platform(&out).unwrap();
    assert_eq!(fitted.len(), 4);
    assert_eq!(fitted.procs()[fitted.root()].name, "root");
}

#[test]
fn drift_gate_exit_semantics() {
    let exec = executed(1200);

    // Faithful model: gate passes.
    let (out, ok) = cmd_report_drift(std::slice::from_ref(&exec), 40, AFFINE_PLATFORM, 0.01).unwrap();
    assert!(ok, "{out}");
    assert!(out.contains("drift check: OK"), "{out}");

    // A 2× error on one worker's compute slope: gate fails, and the
    // report names the offending rank with a flag marker.
    let wrong = AFFINE_PLATFORM.replace("alpha=0.0162", "alpha=0.0324");
    let (out, ok) = cmd_report_drift(std::slice::from_ref(&exec), 40, &wrong, 0.01).unwrap();
    assert!(!ok, "{out}");
    assert!(out.contains("FAIL"), "{out}");
    let w2_row = out
        .lines()
        .find(|l| l.trim_start().starts_with("w2") && l.contains('⚠'))
        .unwrap_or_else(|| panic!("w2 must be flagged:\n{out}"));
    assert!(w2_row.contains('⚠'));

    // The same drift measured directly: only w2 is beyond tolerance.
    let platform = parse_platform(&wrong).unwrap();
    let trace = trace_from_json(&exec).unwrap();
    let report = DriftReport::from_trace(&platform, &trace, 0.01).unwrap();
    for row in &report.rows {
        assert_eq!(row.flagged, row.name == "w2", "{}: {}", row.name, row.max_rel);
    }
}
