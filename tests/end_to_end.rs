//! Full-pipeline integration: catalog → plan → minimpi execution → results,
//! across all five crates.

use grid_scatter::minimpi::{run_world, Tag, TimeModel, WorldConfig};
use grid_scatter::prelude::*;
use grid_scatter::scatter::paper::table1_platform;
use grid_scatter::seismic::calib::trace_events_sum;
use grid_scatter::seismic::generate_catalog;

#[test]
fn tomography_on_the_table1_grid() {
    let n = 800;
    let report = run_tomography(&TomoConfig {
        platform: table1_platform(),
        strategy: Strategy::Heuristic,
        policy: OrderPolicy::DescendingBandwidth,
        n_rays: n,
        seed: 2003,
    })
    .unwrap();
    assert_eq!(report.rays_traced, n);
    assert_eq!(report.names.len(), 16);
    assert_eq!(report.names.last().unwrap(), "dinadan");
    // The real computation matches a serial trace.
    let serial = trace_events_sum(&EarthModel::default(), &generate_catalog(n, 2003));
    assert!((report.checksum - serial).abs() / serial < 1e-12);
    // The virtual schedule matches the plan's prediction.
    assert!(
        (report.virtual_makespan - report.plan.predicted_makespan).abs()
            < 1e-9 * report.plan.predicted_makespan.max(1.0)
    );
}

#[test]
fn uniform_vs_balanced_speedup_shape() {
    // The paper's headline on the emulated grid, end to end.
    let mk = |strategy| {
        run_tomography(&TomoConfig {
            platform: table1_platform(),
            strategy,
            policy: OrderPolicy::DescendingBandwidth,
            n_rays: 1_600,
            seed: 5,
        })
        .unwrap()
        .virtual_makespan
    };
    let uniform = mk(Strategy::Uniform);
    let balanced = mk(Strategy::Heuristic);
    let speedup = uniform / balanced;
    assert!(
        (1.5..2.7).contains(&speedup),
        "speedup {speedup} out of the paper's shape (~2x)"
    );
}

#[test]
fn virtual_time_reproduces_the_stair_effect() {
    // Equal blocks over identical links: arrival times must be an
    // arithmetic progression (Fig. 1's stair).
    let beta = 1e-3;
    let model = TimeModel {
        link: vec![
            CostFn::Linear { slope: beta },
            CostFn::Linear { slope: beta },
            CostFn::Linear { slope: beta },
            CostFn::Zero, // root
        ],
        compute: vec![CostFn::Zero; 4],
    };
    let arrivals = run_world(4, WorldConfig::with_time(model), |comm| {
        let root = 3;
        let data = vec![0u8; 3000];
        let counts = [1000usize, 1000, 1000, 0];
        let _mine = comm.scatterv(root, if comm.rank() == root { Some(&data[..]) } else { None }, &counts);
        comm.now()
    });
    assert_eq!(arrivals[0], 1.0);
    assert_eq!(arrivals[1], 2.0);
    assert_eq!(arrivals[2], 3.0);
}

#[test]
fn minimpi_matches_planner_on_custom_pipeline() {
    // Hand-rolled scatter/compute over minimpi (not via the tomography
    // app) still lands on the planner's predicted makespan.
    let platform = Platform::new(
        vec![
            Processor::linear("w0", 2e-4, 3e-3),
            Processor::linear("w1", 1e-4, 6e-3),
            Processor::linear("root", 0.0, 4e-3),
        ],
        2,
    )
    .unwrap();
    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Exact)
        .plan(4_000)
        .unwrap();
    let ordered: Vec<_> = platform.ordered(&plan.order).into_iter().cloned().collect();
    let p = ordered.len();
    let ordered_platform = Platform::new(ordered, p - 1).unwrap();
    let model = TimeModel::from_platform(&ordered_platform, 1); // 1-byte items
    let counts = plan.counts_in_order();
    let finishes = run_world(p, WorldConfig::with_time(model), |comm| {
        let root = p - 1;
        let buf = vec![7u8; 4_000];
        let mine = comm.scatterv(root, if comm.rank() == root { Some(&buf[..]) } else { None }, &counts);
        comm.model_compute(mine.len());
        comm.now()
    });
    for (rank, (&actual, &expect)) in finishes.iter().zip(&plan.predicted.finish).enumerate() {
        assert!(
            (actual - expect).abs() < 1e-9 * expect.max(1.0),
            "rank {rank}: {actual} vs {expect}"
        );
    }
}

#[test]
fn point_to_point_stress_many_ranks() {
    // All-to-all over user tags: no deadlock, no cross-matching.
    let p = 8;
    let sums = run_world(p, WorldConfig::default(), |comm| {
        let me = comm.rank() as u64;
        for dest in 0..comm.size() {
            if dest != comm.rank() {
                comm.send::<u64>(dest, Tag::user(me), &[me * 100]);
            }
        }
        let mut acc = 0u64;
        for src in 0..comm.size() {
            if src != comm.rank() {
                acc += comm.recv::<u64>(src, Tag::user(src as u64))[0];
            }
        }
        acc
    });
    let total: u64 = (0..p as u64).map(|r| r * 100).sum();
    for (rank, s) in sums.iter().enumerate() {
        assert_eq!(*s, total - rank as u64 * 100);
    }
}
