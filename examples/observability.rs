//! Observability: run one plan through all three execution paths —
//! analytic prediction, discrete-event simulation, real minimpi world —
//! and audit them against each other through the shared trace schema
//! (`docs/observability.md`).
//!
//! Run with: `cargo run --example observability`

use grid_scatter::minimpi::{executed_trace, run_world, TimeModel, WorldConfig};
use grid_scatter::prelude::*;
use grid_scatter::scatter::obs::json::trace_to_json;

fn main() {
    // A small heterogeneous grid (Table-1 units: β s/item link, α s/item
    // compute; the root holds the data).
    let platform = Platform::new(
        vec![
            Processor::linear("root", 0.0, 0.0093),
            Processor::linear("fast-cpu", 1.0e-4, 0.0046),
            Processor::linear("slow-cpu", 2.1e-4, 0.0162),
            Processor::linear("far-away", 8.2e-4, 0.0040),
        ],
        0,
    )
    .unwrap();
    let n = 50_000;
    let item_bytes = 8u64; // one f64 per item on the wire

    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(n)
        .unwrap();
    let names: Vec<&str> =
        plan.order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();
    let counts = plan.counts_in_order();

    // Path 1: the planner's Eq. (1)/(2) prediction.
    let predicted = plan.predicted_trace(&platform, item_bytes);

    // Path 2: the discrete-event simulator (unperturbed here; pass
    // LoadTrace background load to see the schedule degrade).
    let simulated = simulate_plan(&platform, &plan, &[]).trace(&names, &counts, item_bytes);

    // Path 3: a real scatterv on the threaded minimpi runtime. World
    // rank r plays scatter position r (root last), so the rank-ordered
    // single-port scatter realizes the planned order.
    let model = TimeModel::from_platform(&platform, item_bytes as usize).reordered(&plan.order);
    let p = platform.len();
    let root = p - 1;
    let counts_bytes: Vec<usize> = counts.iter().map(|c| c * item_bytes as usize).collect();
    let total: usize = counts_bytes.iter().sum();
    let records = run_world(p, WorldConfig::with_time(model), move |c| {
        c.enable_tracing();
        let buf = vec![0u8; total];
        let mine = c.scatterv(root, if c.rank() == root { Some(&buf) } else { None }, &counts_bytes);
        c.model_compute(mine.len() / item_bytes as usize);
        c.take_trace()
    });
    let executed = executed_trace(&names, item_bytes, &records);

    // All three speak the same schema; summarize and cross-check.
    for trace in [&predicted, &simulated, &executed] {
        trace.validate().expect("schema invariants hold");
        println!("{}", TraceSummary::from_trace(trace).render());
    }
    let mk = |t: &Trace| TraceSummary::from_trace(t).makespan;
    assert_eq!(mk(&predicted), mk(&simulated), "DES reproduces Eq. (2) exactly");
    assert!((mk(&executed) - mk(&predicted)).abs() < 1e-9 * mk(&predicted).max(1.0));
    println!("all three paths agree: makespan {:.4} s", mk(&predicted));

    // Export one for `gs report` (stdout here; see gs trace for files).
    let json = trace_to_json(&executed);
    println!("executed trace: {} events, {} JSON bytes", executed.events.len(), json.len());
}
