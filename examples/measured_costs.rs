//! Benchmark-driven planning (the general case the exact DPs exist for):
//! calibrate this host's real per-ray compute cost, build *tabulated*
//! cost functions from the measurements, and plan with Algorithm 2 —
//! no affine/linear assumption anywhere.
//!
//! Run with: `cargo run --release --example measured_costs`

use grid_scatter::prelude::*;
use grid_scatter::scatter::dp_optimized::optimal_distribution;
use grid_scatter::scatter::ordering::scatter_order;
use grid_scatter::seismic::calib::{measure_alpha, measured_comp_cost};

fn main() {
    let model = EarthModel::default();

    // Step 1: the Table-1 procedure — benchmark the application kernel.
    println!("calibrating this host's ray-tracing cost...");
    let alpha = measure_alpha(&model, 200, 42);
    println!("  measured alpha = {:.2e} s/ray (paper's machines: 4.0e-3 .. 1.6e-2)\n", alpha);

    // Step 2: tabulated cost functions from timed batches.
    let table = measured_comp_cost(&model, &[50, 100, 200, 400], 7);
    println!("  tabulated compute cost: {table:?}");

    // Step 3: a platform mixing the measured host with two hypothetical
    // machines derived from it (one 2x faster, one 3x slower), behind
    // synthetic links.
    let platform = Platform::new(
        vec![
            Processor { name: "this-host (root)".into(), comm: CostFn::Zero, comp: table.clone() },
            Processor {
                name: "2x-faster".into(),
                comm: CostFn::Linear { slope: alpha / 50.0 },
                comp: CostFn::Linear { slope: alpha / 2.0 },
            },
            Processor {
                name: "3x-slower".into(),
                comm: CostFn::Linear { slope: alpha / 100.0 },
                comp: CostFn::Linear { slope: alpha * 3.0 },
            },
        ],
        0,
    )
    .unwrap();

    // Step 4: exact DP on the measured (non-affine) costs.
    let n = 2_000;
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let sol = optimal_distribution(&view, n).expect("tabulated costs are increasing");

    println!("\noptimal distribution of {n} rays (Algorithm 2 on measured costs):");
    for (pos, &idx) in order.iter().enumerate() {
        println!(
            "  {:<18} {:>6} rays",
            platform.procs()[idx].name, sol.counts[pos]
        );
    }
    println!("predicted makespan: {:.3} s", sol.makespan);
    let fast_pos = order.iter().position(|&i| i == 1).unwrap();
    let slow_pos = order.iter().position(|&i| i == 2).unwrap();
    assert!(sol.counts[fast_pos] > sol.counts[slow_pos], "faster machine gets more");
}
