//! Theorem 3 in action: the order in which the single-port root serves
//! the processors matters. Descending bandwidth (the paper's policy) vs
//! ascending vs a random order, on the Table-1 grid — the §5.2 comparison
//! between Figures 3 and 4.
//!
//! Run with: `cargo run --example ordering_policy`

use grid_scatter::prelude::*;
use grid_scatter::scatter::paper::{table1_platform, N_RAYS_1999};

fn main() {
    let platform = table1_platform();
    let n = N_RAYS_1999;

    println!("balanced scatter of {n} rays under different processor orderings\n");
    println!("{:<38} {:>12} {:>12}", "ordering policy", "makespan (s)", "stair (s)");
    let mut desc_makespan = None;
    for (label, policy) in [
        ("descending bandwidth (Theorem 3)", OrderPolicy::DescendingBandwidth),
        ("ascending bandwidth (Fig. 4 control)", OrderPolicy::AscendingBandwidth),
        ("platform index order", OrderPolicy::AsIs),
        ("fastest CPU first (wrong sort key)", OrderPolicy::FastestCpuFirst),
        ("random (seed 42)", OrderPolicy::Random(42)),
    ] {
        let plan = Planner::new(platform.clone())
            .strategy(Strategy::Heuristic)
            .order_policy(policy)
            .plan(n)
            .unwrap();
        let metrics = RunMetrics::from_timeline(&plan.predicted);
        println!(
            "{:<38} {:>12.1} {:>12.1}",
            label, plan.predicted_makespan, metrics.stair_area
        );
        if policy == OrderPolicy::DescendingBandwidth {
            desc_makespan = Some(plan.predicted_makespan);
        }
    }

    let desc = desc_makespan.unwrap();
    println!(
        "\nthe paper measured +56 s for ascending vs descending ({} rays);",
        n
    );
    let asc = Planner::new(platform)
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::AscendingBandwidth)
        .plan(n)
        .unwrap()
        .predicted_makespan;
    println!("this model predicts +{:.0} s — most of it idle time spent", asc - desc);
    println!("waiting for slow links served first (the bigger stair area above).");
}
