//! The paper's application end-to-end (§2.2): seismic travel-time ray
//! tracing on the 16-processor Table-1 grid, emulated on this machine.
//!
//! Ranks are threads tracing real rays through a layered Earth model; the
//! grid's heterogeneity (CPU speeds, link bandwidths) is replayed on a
//! deterministic virtual clock.
//!
//! Run with: `cargo run --release --example seismic_tomography -- [n_rays]`

use grid_scatter::prelude::*;
use grid_scatter::scatter::paper::table1_platform;
use grid_scatter::scatter::planner::Strategy;

fn main() {
    let n_rays: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    println!("tracing {n_rays} synthetic rays on the emulated Table-1 grid\n");

    let mut reports = Vec::new();
    for (label, strategy) in [
        ("uniform MPI_Scatter (original)", Strategy::Uniform),
        ("balanced MPI_Scatterv (paper)", Strategy::Heuristic),
    ] {
        let report = run_tomography(&TomoConfig {
            platform: table1_platform(),
            strategy,
            policy: OrderPolicy::DescendingBandwidth,
            n_rays,
            seed: 1999,
        })
        .unwrap();
        println!("{label}:");
        println!(
            "  virtual makespan {:.2} s   (wall: {:.2} s of real ray tracing on this host)",
            report.virtual_makespan, report.wall_seconds
        );
        let min = report
            .virtual_finish
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        println!(
            "  finish times {:.1} .. {:.1} s  => imbalance {:.1}%",
            min,
            report.virtual_makespan,
            (report.virtual_makespan - min) / report.virtual_makespan * 100.0
        );
        println!("  travel-time checksum {:.6e}\n", report.checksum);
        reports.push(report);
    }

    println!(
        "load-balancing speedup: {:.2}x (the paper measured ~2x on the real grid)",
        reports[0].virtual_makespan / reports[1].virtual_makespan
    );
    let drift = (reports[0].checksum - reports[1].checksum).abs() / reports[0].checksum;
    assert!(drift < 1e-9, "both runs trace the same physics");
    println!("checksums agree to {drift:.1e} — same rays, different schedule.");
}
