//! Extension (§3's monitoring-daemon remark): re-planning each scatter
//! round from *instantaneous* grid conditions — on the fault layer of
//! `docs/robustness.md`.
//!
//! An SPMD code scatters work every iteration under a [`FaultPlan`]:
//! midway through the run a background job lands on one machine,
//! halving its speed, and one transfer per round is dropped in flight
//! (the recovery path retries it). A **static** plan keeps overloading
//! the slowed machine; an **adaptive** planner queries the monitor —
//! [`FaultPlan::degraded_platform`], the platform *as observable* at
//! the current time — re-plans, and shifts work away. Both run through
//! the fault-tolerant simulator (`simulate_scatter_ft`), so the dropped
//! transfer costs each of them the same timeout + retry.
//!
//! Run with: `cargo run --example adaptive_rebalance`

use grid_scatter::gridsim::fault::simulate_scatter_ft;
use grid_scatter::prelude::*;

const ROUNDS: usize = 6;
const N_PER_ROUND: usize = 40_000;

fn main() {
    let platform = Platform::new(
        vec![
            Processor::linear("root", 0.0, 0.009),
            Processor::linear("w1", 1e-5, 0.005),
            Processor::linear("w2", 2e-5, 0.005), // will get a background job
            Processor::linear("w3", 3e-5, 0.010),
        ],
        0,
    )
    .unwrap();
    let order = Planner::new(platform.clone()).plan(1).unwrap().order;
    let view = platform.ordered(&order);
    let names: Vec<&str> = order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();

    // The grid's misbehaviour, in scatter-rank space: w2 slows 2× when
    // the background job lands at t = 200 s, and the first transfer to
    // w1 of every round is lost in flight (each round is a fresh
    // session, so each round pays one timeout + retry).
    let spike_start = 200.0;
    let faults =
        FaultPlan::parse(&format!("slow:w2:2@{spike_start},flaky:w1:1"), &names, 1.0).unwrap();
    let recovery = RecoveryConfig::default();

    // --- static: plan once, reuse the counts every round -----------------
    let static_counts = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(N_PER_ROUND)
        .unwrap()
        .counts_in_order();
    let mut static_ends = Vec::new();
    let mut t = 0.0f64;
    for _ in 0..ROUNDS {
        // The round starts at absolute time t: shift the fault plan's
        // absolute times into the round's own clock.
        let ft = simulate_scatter_ft(&view, &static_counts, &faults.shifted(-t), Some(&recovery))
            .expect("static round completes");
        t += ft.makespan;
        static_ends.push(t);
    }

    // --- adaptive: before each round, query the monitor and re-plan ------
    let mut adaptive_ends = Vec::new();
    let mut retries = 0usize;
    let mut t = 0.0f64;
    for _ in 0..ROUNDS {
        // "Query the monitor": the platform as an NWS-style daemon would
        // measure it right now — slowdowns and link degradations that
        // have set in are folded into the cost functions.
        let observed = faults.degraded_platform(&platform, &order, t).unwrap();
        let plan = Planner::new(observed).strategy(Strategy::Heuristic).plan(N_PER_ROUND).unwrap();
        let counts: Vec<usize> = order.iter().map(|&i| plan.counts[i]).collect();
        let ft = simulate_scatter_ft(&view, &counts, &faults.shifted(-t), Some(&recovery))
            .expect("adaptive round completes");
        retries += ft.incidents.iter().filter(|i| i.kind == IncidentKind::Retry).count();
        assert_eq!(ft.lost_items, 0, "recovery computes every item");
        t += ft.makespan;
        adaptive_ends.push(t);
    }

    println!(
        "{ROUNDS} scatter rounds of {N_PER_ROUND} items; w2 slows 2x at t = {spike_start} s,\n\
         one transfer to w1 dropped per round (retried by the recovery path)\n"
    );
    println!("{:>6} {:>16} {:>16}", "round", "static end (s)", "adaptive end (s)");
    for r in 0..ROUNDS {
        println!("{:>6} {:>16.1} {:>16.1}", r + 1, static_ends[r], adaptive_ends[r]);
    }
    let (s_end, a_end) = (*static_ends.last().unwrap(), *adaptive_ends.last().unwrap());
    println!(
        "\ntotal: static {s_end:.1} s vs adaptive {a_end:.1} s  ({:.1}% saved by re-planning)",
        (s_end - a_end) / s_end * 100.0
    );
    println!("transient drops retried along the way: {retries}");
    assert!(a_end < s_end, "adaptive must win once the spike hits");
    assert_eq!(retries, ROUNDS, "every round's dropped transfer was recovered");
}
