//! Extension (§3's monitoring-daemon remark): re-planning each scatter
//! round from *instantaneous* grid conditions.
//!
//! An SPMD code scatters work every iteration. Midway through the run a
//! background job lands on one machine, halving its speed. A static plan
//! keeps overloading it; an adaptive planner queries the current load
//! (as a NWS-style monitor would) before each round and shifts work away.
//!
//! Run with: `cargo run --example adaptive_rebalance`

use grid_scatter::prelude::*;
use grid_scatter::gridsim::sim::simulate_multi_round;

const ROUNDS: usize = 6;
const N_PER_ROUND: usize = 40_000;

fn main() {
    let platform = Platform::new(
        vec![
            Processor::linear("root", 0.0, 0.009),
            Processor::linear("w1", 1e-5, 0.005),
            Processor::linear("w2", 2e-5, 0.005), // will get a background job
            Processor::linear("w3", 3e-5, 0.010),
        ],
        0,
    )
    .unwrap();
    let order = Planner::new(platform.clone()).plan(1).unwrap().order;
    let view = platform.ordered(&order);
    let names: Vec<&str> = order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();
    let victim_pos = names.iter().position(|&n| n == "w2").unwrap();

    // The background job: w2 runs at half speed from t = 200 s on.
    let spike_start = 200.0;
    let factor = 2.0;
    let mut loads = vec![LoadTrace::none(); 4];
    loads[victim_pos] = LoadTrace::new(vec![(spike_start, factor)]);
    let config = SimConfig::with_loads(loads);

    // --- static: plan once, reuse the counts every round -----------------
    let static_counts = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(N_PER_ROUND)
        .unwrap()
        .counts_in_order();
    let static_rounds = simulate_multi_round(
        &view,
        &vec![static_counts.clone(); ROUNDS],
        &config,
    );

    // --- adaptive: before each round, query the monitor and re-plan ------
    let mut adaptive_rounds = Vec::new();
    let mut t = 0.0f64;
    let mut plans = Vec::new();
    for _ in 0..ROUNDS {
        // "Query the monitor": effective alpha of w2 at the current time.
        let w2_factor = if t >= spike_start { factor } else { 1.0 };
        let mut procs = platform.procs().to_vec();
        if let CostFn::Linear { slope } = procs[2].comp {
            procs[2].comp = CostFn::Linear { slope: slope * w2_factor };
        }
        let now_platform = Platform::new(procs, 0).unwrap();
        let counts = Planner::new(now_platform)
            .strategy(Strategy::Heuristic)
            .plan(N_PER_ROUND)
            .unwrap()
            .counts_in_order();
        plans.push(counts);
        // Simulate everything planned so far to learn the current time.
        let sims = simulate_multi_round(&view, &plans, &config);
        t = sims.last().unwrap().makespan;
        adaptive_rounds = sims;
    }

    println!("{ROUNDS} scatter rounds of {N_PER_ROUND} items; w2 slows 2x at t = {spike_start} s\n");
    println!("{:>6} {:>16} {:>16}", "round", "static end (s)", "adaptive end (s)");
    for r in 0..ROUNDS {
        println!(
            "{:>6} {:>16.1} {:>16.1}",
            r + 1,
            static_rounds[r].makespan,
            adaptive_rounds[r].makespan
        );
    }
    let (s_end, a_end) = (
        static_rounds.last().unwrap().makespan,
        adaptive_rounds.last().unwrap().makespan,
    );
    println!(
        "\ntotal: static {s_end:.1} s vs adaptive {a_end:.1} s  ({:.1}% saved by re-planning)",
        (s_end - a_end) / s_end * 100.0
    );
    assert!(a_end < s_end, "adaptive must win once the spike hits");
}
