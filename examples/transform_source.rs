//! The §1 "software tool" in action: take the paper's §2.2 application
//! code, rewrite its `MPI_Scatter` into a planned `MPI_Scatterv`, and
//! generate the C arrays from a Table-1 plan.
//!
//! Run with: `cargo run --example transform_source`

use grid_scatter::prelude::*;
use grid_scatter::scatter::paper::{table1_platform, N_RAYS_1999};
use grid_scatter::transform::{emit_plan_arrays, transform_source, CodegenOptions};

const ORIGINAL: &str = r#"/* §2.2 of the paper, as C */
if (rank == ROOT) {
    raydata = read_rays(datafile, n);
}
MPI_Scatter(raydata, n / P, MPI_RAY, rbuff, n / P, MPI_RAY, ROOT, MPI_COMM_WORLD);
compute_work(rbuff);
"#;

fn main() {
    println!("--- original -------------------------------------------------");
    print!("{ORIGINAL}");

    // 1. Rewrite the call site.
    let report = transform_source(ORIGINAL);
    println!("\n--- transformation report --------------------------------------");
    print!("{report}");

    // 2. Plan the distribution on the Table-1 grid and generate the arrays.
    let plan = Planner::new(table1_platform())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(N_RAYS_1999)
        .unwrap();
    let arrays = emit_plan_arrays(&plan, &CodegenOptions::default());

    println!("\n--- transformed ------------------------------------------------");
    print!("{arrays}\n{}", report.source);

    assert_eq!(report.rewrites.len(), 1);
    assert!(report.source.contains("MPI_Scatterv"));
}
