//! The full iterative tomography loop of §2.1: trace the catalog, gather
//! travel-time residuals, update the layered velocity model, broadcast,
//! repeat — with every iteration's scatter load-balanced on the emulated
//! Table-1 grid.
//!
//! The ground truth has a mantle 3% slower than the starting model; watch
//! the inversion recover it while the RMS residual falls.
//!
//! Run with: `cargo run --release --example tomographic_inversion`

use grid_scatter::prelude::*;
use grid_scatter::scatter::paper::table1_platform;
use grid_scatter::scatter::planner::Strategy;
use grid_scatter::seismic::invert_app::{run_parallel_inversion, InversionConfig};

fn main() {
    let n_rays: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5_000);

    let truth = vec![1.0, 1.0, 0.97, 0.97, 1.0]; // mantle 3% slow
    println!("inverting for a mantle anomaly from {n_rays} rays on the Table-1 grid");
    println!("ground truth layer factors: {truth:?}\n");

    let report = run_parallel_inversion(&InversionConfig {
        platform: table1_platform(),
        strategy: Strategy::Heuristic,
        policy: OrderPolicy::DescendingBandwidth,
        n_rays,
        seed: 1999,
        iterations: 8,
        truth_factors: truth.clone(),
    })
    .unwrap();

    println!(
        "{:>5} {:>14} {:>42} {:>14}",
        "iter", "RMS residual", "layer factors (core..crust)", "virtual t (s)"
    );
    for (k, (step, end)) in report.steps.iter().zip(&report.round_ends).enumerate() {
        let f: Vec<String> = step.factors.iter().map(|v| format!("{v:.4}")).collect();
        println!(
            "{:>5} {:>14.6} {:>42} {:>14.1}",
            k + 1,
            step.rms_residual,
            f.join(" "),
            end
        );
    }

    let last = report.steps.last().unwrap();
    println!(
        "\nrecovered mantle factors: {:.4} / {:.4} (truth: 0.97)",
        last.factors[2], last.factors[3]
    );
    println!(
        "residual fell {:.1}x over {} iterations; total emulated time {:.1} s",
        report.steps[0].rms_residual / last.rms_residual,
        report.steps.len(),
        report.virtual_total
    );
    assert!(last.rms_residual < report.steps[0].rms_residual);
}
