//! Quickstart: plan a load-balanced scatter for a small heterogeneous
//! grid, compare it with the uniform `MPI_Scatter` baseline, and look at
//! the predicted schedule.
//!
//! Run with: `cargo run --example quickstart`

use grid_scatter::prelude::*;
use grid_scatter::gridsim::gantt;

fn main() {
    // A grid of four machines. Coefficients are in the units of the
    // paper's Table 1: β = seconds per item over the link from the root,
    // α = seconds per item of compute.
    let platform = Platform::new(
        vec![
            Processor::linear("root", 0.0, 0.0093),   // data lives here
            Processor::linear("fast-cpu", 1.0e-4, 0.0046),
            Processor::linear("slow-cpu", 2.1e-4, 0.0162),
            Processor::linear("far-away", 8.2e-4, 0.0040), // great CPU, bad link
        ],
        0,
    )
    .unwrap();

    let n = 100_000;

    // The original program: equal shares.
    let uniform = Planner::new(platform.clone())
        .strategy(Strategy::Uniform)
        .plan(n)
        .unwrap();

    // The paper's transformation: a guaranteed heuristic distribution,
    // processors ordered by descending bandwidth (Theorem 3).
    let balanced = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .order_policy(OrderPolicy::DescendingBandwidth)
        .plan(n)
        .unwrap();

    println!("distributing {n} items over {} processors\n", platform.len());
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12}",
        "machine", "uniform", "finish (s)", "balanced", "finish (s)"
    );
    for i in 0..platform.len() {
        let pos_u = uniform.order.iter().position(|&x| x == i).unwrap();
        let pos_b = balanced.order.iter().position(|&x| x == i).unwrap();
        println!(
            "{:<10} {:>10} {:>12.1} {:>10} {:>12.1}",
            platform.procs()[i].name,
            uniform.counts[i],
            uniform.predicted.finish[pos_u],
            balanced.counts[i],
            balanced.predicted.finish[pos_b],
        );
    }
    println!(
        "\nmakespan: uniform {:.1} s -> balanced {:.1} s  ({:.2}x speedup)",
        uniform.predicted_makespan,
        balanced.predicted_makespan,
        uniform.predicted_makespan / balanced.predicted_makespan
    );

    // The scatterv parameters a real MPI code would use:
    println!("\nMPI_Scatterv counts = {:?}", balanced.counts);
    println!("MPI_Scatterv displs = {:?}", balanced.displs);

    // And the predicted schedule, Fig. 1 style.
    let names: Vec<&str> = balanced
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    println!("\npredicted schedule (balanced):");
    print!("{}", gantt::render_gantt(&names, &balanced.predicted, 60));
    print!("{}", gantt::legend());
}
