//! Calibrate-and-re-plan (`docs/observability.md` as a library story):
//! closing the loop between the planner's cost model and the grid it
//! actually runs on.
//!
//! The operator's platform file is *stale*: since it was written, `w1`
//! got a link upgrade (4× more bandwidth) and a background job landed
//! on `w2` (3× slower compute). A plan computed from the stale model
//! keeps starving `w1` and overloading `w2`. The fix needs no manual
//! re-measurement: run the scatter twice at small sizes, feed the
//! executed traces to [`Calibration`], and re-plan on the fitted model
//! — the calibrated plan lands within 1% of the true optimum.
//!
//! Run with: `cargo run --example calibrated_replan`

use grid_scatter::prelude::*;
use grid_scatter::scatter::distribution::timeline;

const N: usize = 50_000;
const OBSERVE_AT: [usize; 2] = [4_000, 12_000];

/// The platform's processors in the plan's scatter order, matched by
/// name: the plan may have been computed on a *different* platform value
/// (the stale file, the calibrated fit) than the grid it runs on.
fn view_on<'a>(actual: &'a Platform, plan: &Plan, planned_on: &Platform) -> Vec<&'a Processor> {
    plan.order
        .iter()
        .map(|&i| &planned_on.procs()[i].name)
        .map(|name| actual.procs().iter().find(|p| &p.name == name).expect("same grid"))
        .collect()
}

/// What the plan's distribution costs on the grid it really runs on.
fn makespan_on(actual: &Platform, plan: &Plan, planned_on: &Platform) -> f64 {
    makespan(&view_on(actual, plan, planned_on), &plan.counts_in_order())
}

/// "Runs" the plan on the real grid: the Eq. (1) schedule of the plan's
/// counts under the *actual* cost functions, as an executed trace — what
/// a monitoring daemon would hand back to the calibrator.
fn executed_on(actual: &Platform, plan: &Plan, planned_on: &Platform) -> Trace {
    let view = view_on(actual, plan, planned_on);
    let names: Vec<&str> = view.iter().map(|p| p.name.as_str()).collect();
    let counts = plan.counts_in_order();
    let tl = timeline(&view, &counts);
    Trace::from_timeline(TraceSource::Executed, &names, &counts, 8, &tl)
}

fn main() {
    // The grid as the platform file describes it (root first).
    let believed = Platform::new(
        vec![
            Processor::affine("root", 0.0, 0.0, 0.002, 0.008),
            Processor::affine("w1", 0.010, 2.0e-4, 0.001, 0.004),
            Processor::affine("w2", 0.006, 1.0e-4, 0.003, 0.005),
            Processor::affine("w3", 0.012, 1.5e-4, 0.002, 0.009),
        ],
        0,
    )
    .unwrap();
    // The grid as it is today: w1's link upgraded, w2 runs a background job.
    let actual = Platform::new(
        vec![
            Processor::affine("root", 0.0, 0.0, 0.002, 0.008),
            Processor::affine("w1", 0.010, 0.5e-4, 0.001, 0.004),
            Processor::affine("w2", 0.006, 1.0e-4, 0.003, 0.015),
            Processor::affine("w3", 0.012, 1.5e-4, 0.002, 0.009),
        ],
        0,
    )
    .unwrap();

    // The stale plan: computed from the file, paid for on the real grid.
    let stale = Planner::new(believed.clone()).plan(N).unwrap();
    let stale_ms = makespan_on(&actual, &stale, &believed);

    // Observe: two small runs (any plan will do — here the stale one),
    // each yielding an executed trace of the *actual* grid.
    let traces: Vec<Trace> = OBSERVE_AT
        .iter()
        .map(|&n| {
            let probe = Planner::new(believed.clone()).plan(n).unwrap();
            executed_on(&actual, &probe, &believed)
        })
        .collect();

    // Calibrate and re-plan on the fitted model.
    let cal = Calibration::from_traces(&traces).unwrap();
    let fitted = cal.platform().unwrap();
    let replanned = cal.replan(N, Strategy::Heuristic).unwrap();
    let replanned_ms = makespan_on(&actual, &replanned, &fitted);

    // The yardstick: what a planner with perfect knowledge would get.
    let best = Planner::new(actual.clone()).plan(N).unwrap();
    let best_ms = best.predicted_makespan;

    println!("scatter of {N} items; the platform file is stale:");
    println!("  w1's link is 4x faster than believed, w2 computes 3x slower\n");
    println!("  {:<34} {:>12}", "plan", "makespan (s)");
    println!("  {:<34} {:>12.3}", "stale model", stale_ms);
    println!("  {:<34} {:>12.3}", "calibrated from 2 observed runs", replanned_ms);
    println!("  {:<34} {:>12.3}", "perfect knowledge (reference)", best_ms);
    println!(
        "\nre-planning from calibrated traces saves {:.1}% of the stale makespan",
        (stale_ms - replanned_ms) / stale_ms * 100.0
    );

    assert!(replanned_ms < stale_ms, "the calibrated plan must beat the stale one");
    let gap = (replanned_ms - best_ms) / best_ms;
    assert!(gap.abs() < 0.01, "calibrated plan within 1% of the optimum (gap {gap:.2e})");
}
