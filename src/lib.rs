//! # grid-scatter
//!
//! A Rust reproduction of **Genaud, Giersch & Vivien, “Load-Balancing
//! Scatter Operations for Grid Computing”** (IPPS/HCW 2003; long version
//! INRIA RR-4770): static load-balancing of `MPI_Scatter` operations on
//! heterogeneous grids by replacing them with `MPI_Scatterv` calls whose
//! block sizes come from an optimal (or guaranteed near-optimal)
//! distribution.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`scatter`] (gs-scatter) — the paper's algorithms: exact dynamic
//!   programs (Algorithms 1–2), the guaranteed LP heuristic (§3.3), the
//!   closed form for linear costs (§4), the descending-bandwidth ordering
//!   policy (Theorem 3), root selection (§3.4), and a high-level
//!   [`scatter::planner::Planner`].
//! * [`gridsim`] (gs-gridsim) — a discrete-event simulator of the
//!   single-port grid model, with background-load traces, Gantt/figure
//!   rendering and CSV export.
//! * [`minimpi`] (gs-minimpi) — an MPI-like thread runtime with
//!   deterministic virtual time, on which the example applications run.
//! * [`seismic`] (gs-seismic) — the paper's motivating workload: seismic
//!   travel-time ray tracing, synthetic catalogs, cost calibration, and
//!   the parallel tomography application of §2.2.
//! * [`lp`] (gs-lp) / [`numeric`] (gs-numeric) — exact rational simplex
//!   and the arbitrary-precision arithmetic under it.
//! * [`transform`] (gs-transform) — the §1 "software tool": rewrites
//!   `MPI_Scatter` calls in C source into planned `MPI_Scatterv` calls.
//!
//! ## Quick start
//!
//! ```
//! use grid_scatter::prelude::*;
//!
//! // Describe the grid (β = link s/item, α = compute s/item — Table 1).
//! let platform = Platform::new(vec![
//!     Processor::linear("root",   0.0,    0.009288),
//!     Processor::linear("caseb",  1.0e-5, 0.004629),
//!     Processor::linear("merlin", 8.15e-5, 0.003976),
//! ], 0).unwrap();
//!
//! // Plan a balanced scatterv for 100k items.
//! let plan = Planner::new(platform)
//!     .strategy(Strategy::Heuristic)
//!     .order_policy(OrderPolicy::DescendingBandwidth)
//!     .plan(100_000)
//!     .unwrap();
//!
//! println!("counts = {:?}, predicted makespan = {:.1}s",
//!          plan.counts, plan.predicted_makespan);
//! ```
//!
//! ## Observability
//!
//! Every execution path — planner prediction, discrete-event simulation,
//! minimpi run — emits the same versioned trace format (schema in
//! `docs/observability.md`). Building a plan and printing its predicted
//! timeline as a trace summary:
//!
//! ```
//! use grid_scatter::prelude::*;
//!
//! let platform = Platform::new(vec![
//!     Processor::linear("root", 0.0,    0.01),
//!     Processor::linear("w1",   1e-4,   0.005),
//!     Processor::linear("w2",   2e-4,   0.004),
//! ], 0).unwrap();
//! let plan = Planner::new(platform.clone()).plan(10_000).unwrap();
//!
//! // The planner's Eq. (1) schedule as an observability trace (8-B items).
//! let trace = plan.predicted_trace(&platform, 8);
//! let summary = TraceSummary::from_trace(&trace);
//! println!("{}", summary.render());          // per-rank busy/idle/bytes table
//! assert_eq!(summary.makespan, plan.predicted_makespan);
//! assert_eq!(summary.total_bytes, 10_000 * 8);
//! ```
//!
//! See `examples/` for runnable programs and the `gs-bench` crate for the
//! experiment harness regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gs_gridsim as gridsim;
pub use gs_lp as lp;
pub use gs_minimpi as minimpi;
pub use gs_numeric as numeric;
pub use gs_scatter as scatter;
pub use gs_seismic as seismic;
pub use gs_transform as transform;

/// One-stop imports for typical use.
pub mod prelude {
    pub use gs_gridsim::{simulate_plan, simulate_scatter, LoadTrace, RunMetrics, SimConfig};
    pub use gs_minimpi::{run_world, Comm, TimeModel, WorldConfig};
    pub use gs_scatter::prelude::*;
    pub use gs_seismic::{run_tomography, EarthModel, TomoConfig, TomoReport};
}
