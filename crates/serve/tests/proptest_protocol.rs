//! Property tests for the wire codec: any request/response the types
//! can express must survive encode → decode exactly; any line with
//! extra unknown members must still decode to the same value (forward
//! compatibility); and arbitrary garbage must fail with `bad_request`
//! rather than panic or misparse.

use gs_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, CacheStatus, ErrorCode,
    Outcome, PlanParams, PlanResult, Request, RequestBody, Response, SimResult,
};
use proptest::prelude::*;

/// Strings covering every escape class the writer knows about.
fn tricky_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] =
        &['a', 'Z', '"', '\\', '{', '}', ',', ':', '\n', '\r', '\t', ' ', 'é', '𝄞', '\u{1}', '7'];
    collection::vec(0usize..ALPHABET.len(), 0..16)
        .prop_map(|idx| idx.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Non-negative finite `f64`s across magnitudes (makespans are secs).
fn makespan() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let v = f64::from_bits(bits).abs();
        if v.is_finite() {
            v
        } else {
            (bits >> 12) as f64 * 1e-6
        }
    })
}

/// Integers that survive the f64-backed JSON number representation.
fn wire_u64() -> impl Strategy<Value = u64> {
    0u64..(1 << 53)
}

fn plan_params() -> impl Strategy<Value = PlanParams> {
    (tricky_string(), wire_u64(), tricky_string())
        .prop_map(|(platform, items, strategy)| PlanParams { platform, items, strategy })
}

fn request_body() -> impl Strategy<Value = RequestBody> {
    (0usize..6, plan_params(), collection::vec(tricky_string(), 0..4)).prop_map(
        |(variant, params, traces)| match variant {
            0 => RequestBody::Ping,
            1 => RequestBody::Plan(params),
            2 => RequestBody::Simulate(params),
            3 => RequestBody::Calibrate { traces },
            4 => RequestBody::Metrics,
            _ => RequestBody::Shutdown,
        },
    )
}

fn cache_status() -> impl Strategy<Value = CacheStatus> {
    (0usize..3).prop_map(|variant| match variant {
        0 => CacheStatus::Miss,
        1 => CacheStatus::Hit,
        _ => CacheStatus::Coalesced,
    })
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    (0usize..5).prop_map(|variant| match variant {
        0 => ErrorCode::BadRequest,
        1 => ErrorCode::UnsupportedVersion,
        2 => ErrorCode::PlanFailed,
        3 => ErrorCode::Overloaded,
        _ => ErrorCode::Other,
    })
}

fn outcome() -> impl Strategy<Value = Outcome> {
    let u64s = || collection::vec(wire_u64(), 0..6);
    let payload = (
        (makespan(), makespan(), cache_status()),
        (u64s(), u64s(), u64s()),
        tricky_string(),
        error_code(),
    );
    (0usize..7, payload).prop_map(
        |(variant, ((span_a, span_b, cache), (counts, displs, order), text, code))| {
            match variant {
                0 => Outcome::Pong,
                1 => Outcome::Plan(PlanResult { makespan: span_a, counts, displs, order, cache }),
                2 => Outcome::Simulate(SimResult {
                    predicted_makespan: span_a,
                    simulated_makespan: span_b,
                    cache,
                }),
                3 => Outcome::Calibrate { platform: text },
                4 => Outcome::Metrics { prometheus: text },
                5 => Outcome::ShuttingDown,
                _ => Outcome::Error { code, message: text },
            }
        },
    )
}

/// Splices an unknown member into an encoded object, right after the
/// opening brace — what a newer peer's extra fields look like on the
/// wire.
fn with_unknown_member(line: &str, value_json: &str) -> String {
    let rest = line.strip_prefix('{').expect("encoded lines are objects");
    format!("{{\"x_future_field\": {value_json}, {rest}")
}

/// Printable-ASCII garbage lines.
fn ascii_garbage() -> impl Strategy<Value = String> {
    collection::vec(0x20u8..0x7f, 0..60)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn requests_round_trip((id, body) in (tricky_string(), request_body())) {
        let req = Request { id, body };
        let line = encode_request(&req);
        prop_assert!(!line.contains('\n'), "one request per line: {:?}", line);
        prop_assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn responses_round_trip((id, outcome) in (tricky_string(), outcome())) {
        let resp = Response { id, outcome };
        let line = encode_response(&resp);
        prop_assert!(!line.contains('\n'), "one response per line: {:?}", line);
        prop_assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn unknown_members_are_ignored((req_body, variant) in (request_body(), 0usize..6)) {
        let extras = [
            "null", "true", "-12.5", "\"s\"",
            "[1, [2], {\"k\": 3}]", "{\"nested\": {\"deep\": []}}",
        ];
        let req = Request { id: "fwd".into(), body: req_body };
        let line = with_unknown_member(&encode_request(&req), extras[variant]);
        prop_assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn garbage_never_panics_and_fails_closed(line in ascii_garbage()) {
        // Either the fuzz line happens to be a valid request, or it must
        // fail with a structured error — never a panic.
        if let Err(e) = decode_request(&line) {
            prop_assert!(
                matches!(e.code, ErrorCode::BadRequest | ErrorCode::UnsupportedVersion),
                "{:?} -> {:?}", line, e
            );
        }
        let _ = decode_response(&line);
    }

    #[test]
    fn truncations_of_valid_lines_fail_closed(body in request_body()) {
        let line = encode_request(&Request { id: "t".into(), body });
        // Cutting anywhere inside the object must yield an error, not a
        // misparse: the closing brace is gone, so the parser cannot
        // accept any prefix.
        for cut in 1..line.len().min(40) {
            if !line.is_char_boundary(line.len() - cut) {
                continue; // the id/platform may hold multi-byte chars
            }
            let truncated = &line[..line.len() - cut];
            prop_assert!(
                decode_request(truncated).is_err(),
                "truncated line decoded: {:?}", truncated
            );
        }
    }
}
