//! The transport-free request handler: one [`Engine`] owns the caches,
//! the coalescing table, and the admission budget, and turns decoded
//! [`Request`]s into [`Response`]s. The TCP [`server`](crate::server)
//! is a thin loop around [`Engine::handle`]; in-process tests and the
//! `serve_load` bench call it directly.
//!
//! ## Request lifecycle (plan/simulate)
//!
//! ```text
//! request ──► result cache ──hit──────────────────────────► "hit"
//!                │ miss
//!                ▼
//!            in-flight table ──someone is computing it──► wait ──► "coalesced"
//!                │ nobody is
//!                ▼
//!            admission (in-flight computes < max_inflight)?
//!                │ no ──► error {code: "overloaded"}        (shed)
//!                ▼ yes
//!            compute (shared CostTable + sharded PlanCache) ──► "miss"
//! ```
//!
//! Every cached or coalesced answer is a clone of the leader's, so all
//! concurrent identical requests observe **bit-identical plans**.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use gs_scatter::cost_table::CostTable;
use gs_scatter::metrics::Registry;
use gs_scatter::obs::json::trace_from_json;
use gs_scatter::obs::span;
use gs_scatter::planner::{Plan, PlanCache, Planner, Strategy};
use gs_scatter::platform_file::parse_platform;
use gs_scatter::prelude::Calibration;

use crate::protocol::{
    CacheStatus, ErrorCode, Outcome, PlanParams, PlanResult, Request, RequestBody, Response,
    SimResult,
};

/// Tuning knobs for an [`Engine`]. `Default` is sized for tests and
/// small deployments; `gs serve` exposes each as a flag.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads per exact solve (passed to
    /// [`Planner::threads`]; `1` keeps each request on its own
    /// connection thread, which is the right default when many requests
    /// run concurrently).
    pub planner_threads: usize,
    /// Shards for the result cache and the underlying [`PlanCache`].
    pub cache_shards: usize,
    /// Admission budget: maximum planning computations in flight before
    /// further cache-missing requests are shed with `overloaded`.
    pub max_inflight: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { planner_threads: 1, cache_shards: 16, max_inflight: 64 }
    }
}

/// A finished computation, shared between the leader, coalesced
/// waiters, and the result cache.
#[derive(Debug)]
enum Computed {
    Plan { makespan: f64, counts: Vec<u64>, displs: Vec<u64>, order: Vec<u64> },
    Sim { predicted: f64, simulated: f64 },
}

/// One in-flight computation; waiters block on the condvar until the
/// leader publishes the outcome.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<Option<Result<Arc<Computed>, String>>>,
    cv: Condvar,
}

/// One shard of the finished-answer cache: key hash → computed result.
type ResultShard = RwLock<HashMap<u64, Arc<Computed>>>;

/// The daemon's brain: caches, coalescing, admission, instrumentation.
/// Cheap to share behind an [`Arc`]; every method takes `&self`.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    /// Cost tabulations shared by every request (keyed by cost-function
    /// identity, so distinct platforms coexist).
    cost_table: Arc<CostTable>,
    /// DP planes shared by every exact solve, sharded by root signature.
    plan_cache: Arc<PlanCache>,
    /// Finished answers keyed by `(op, platform, items, strategy)`
    /// hash, sharded to keep unrelated requests off each other's locks.
    results: Box<[ResultShard]>,
    /// Key → in-flight computation, for request coalescing.
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl Engine {
    /// Builds an engine (and registers its `serve_*` metrics).
    pub fn new(cfg: EngineConfig) -> Engine {
        let shards = cfg.cache_shards.max(1);
        Engine {
            cost_table: Arc::new(CostTable::new()),
            plan_cache: Arc::new(PlanCache::with_shards(shards)),
            results: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            inflight: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    /// The shared plan cache (exposed so operators can report
    /// [`PlanCache::hits`]/[`PlanCache::misses`] out of band).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Handles one decoded request, start to finish. Never panics on
    /// user input: every failure becomes an [`Outcome::Error`].
    ///
    /// When span tracing is enabled ([`span::set_enabled`]) the request
    /// runs under a root `request` span carrying the request id and
    /// operation, with one child per stage — `request.decode`,
    /// `request.cache`, `request.wait`, `request.shed`,
    /// `request.compute`, `request.encode` — so a Chrome trace shows
    /// exactly where each request spent its time.
    pub fn handle(&self, req: Request) -> Response {
        let reg = Registry::global();
        reg.counter("serve_requests_total", "requests handled by the serve engine").inc();
        let t0 = std::time::Instant::now();
        let Request { id, body } = req;
        let op_label = op_label(&body);
        let mut root = span::span("serve", "request");
        root.attr("request_id", &id);
        root.attr("op", op_label);
        let outcome = match body {
            RequestBody::Ping => Outcome::Pong,
            RequestBody::Metrics => {
                Outcome::Metrics { prometheus: reg.snapshot().to_prometheus() }
            }
            RequestBody::Shutdown => Outcome::ShuttingDown,
            RequestBody::Plan(p) => self.planned(Op::Plan, &p, root.id()),
            RequestBody::Simulate(p) => self.planned(Op::Simulate, &p, root.id()),
            RequestBody::Calibrate { traces } => self.calibrate(&traces),
        };
        let shed = matches!(&outcome, Outcome::Error { code: ErrorCode::Overloaded, .. });
        if matches!(outcome, Outcome::Error { .. }) {
            reg.counter("serve_errors_total", "requests answered with an error").inc();
        }
        let encode_span = span::span_with_parent("serve", "request.encode", root.id());
        let response = Response { id, outcome };
        drop(encode_span);
        // Shed requests get their own latency label: their sub-millisecond
        // rejections would otherwise drag the op's percentiles down
        // exactly when the operator most needs honest numbers.
        let latency_op = if shed { "shed" } else { op_label };
        reg.histogram_with(
            "serve_latency_seconds",
            "end-to-end request handling latency by operation",
            &[("op", latency_op)],
        )
        .observe_with_exemplar(t0.elapsed().as_secs_f64(), &response.id);
        response
    }

    /// The `plan`/`simulate` path: cache → coalesce → admit → compute.
    /// `parent` is the root request span (stage spans attach to it
    /// directly, so every stage is a first-level child in the trace).
    fn planned(&self, op: Op, params: &PlanParams, parent: u64) -> Outcome {
        let reg = Registry::global();
        let key = cache_key(op, params);
        let shard = &self.results[(key % self.results.len() as u64) as usize];
        let mut cache_span = span::span_with_parent("serve", "request.cache", parent);
        if let Some(hit) = shard.read().expect("results lock").get(&key) {
            reg.counter("serve_cache_hits_total", "requests answered from the result cache")
                .inc();
            cache_span.attr("outcome", "hit");
            return outcome_of(op, hit, CacheStatus::Hit);
        }
        cache_span.attr("outcome", "miss");
        drop(cache_span);

        // Miss: coalesce onto an identical in-flight computation, or
        // become the leader (if admitted).
        let flight = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            if let Some(existing) = inflight.get(&key) {
                let flight = Arc::clone(existing);
                drop(inflight);
                reg.counter(
                    "serve_coalesced_total",
                    "requests folded into an identical in-flight computation",
                )
                .inc();
                let _wait_span = span::span_with_parent("serve", "request.wait", parent);
                let mut done = flight.done.lock().expect("flight lock");
                while done.is_none() {
                    done = flight.cv.wait(done).expect("flight lock");
                }
                return match done.as_ref().expect("just checked") {
                    Ok(computed) => outcome_of(op, computed, CacheStatus::Coalesced),
                    Err(message) => plan_failed(message.clone()),
                };
            }
            if inflight.len() >= self.cfg.max_inflight {
                reg.counter("serve_shed_total", "requests shed by admission control").inc();
                let mut shed_span = span::span_with_parent("serve", "request.shed", parent);
                shed_span.attr("inflight", inflight.len());
                shed_span.attr("limit", self.cfg.max_inflight);
                return Outcome::Error {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "{} planning requests in flight (limit {}); retry later",
                        inflight.len(),
                        self.cfg.max_inflight
                    ),
                };
            }
            let flight = Arc::new(Flight::default());
            inflight.insert(key, Arc::clone(&flight));
            flight
        };

        // Leader: compute outside every lock, publish, wake waiters.
        reg.counter("serve_computes_total", "planning computations actually run").inc();
        let result = self.compute(op, params, parent);
        if let Ok(computed) = &result {
            shard.write().expect("results lock").insert(key, Arc::clone(computed));
        }
        self.inflight.lock().expect("inflight lock").remove(&key);
        *flight.done.lock().expect("flight lock") = Some(result.clone());
        flight.cv.notify_all();
        match result {
            Ok(computed) => outcome_of(op, &computed, CacheStatus::Miss),
            Err(message) => plan_failed(message),
        }
    }

    /// Runs the actual library calls for a cache-missing `plan` or
    /// `simulate` request.
    fn compute(&self, op: Op, params: &PlanParams, parent: u64) -> Result<Arc<Computed>, String> {
        let decode_span = span::span_with_parent("serve", "request.decode", parent);
        let platform = parse_platform(&params.platform).map_err(|e| e.to_string())?;
        if params.items == 0 {
            return Err("items must be positive".into());
        }
        let items =
            usize::try_from(params.items).map_err(|_| "items exceeds this build's usize".to_string())?;
        let strategy = parse_strategy(&params.strategy)?;
        drop(decode_span);
        let mut compute_span = span::span_with_parent("serve", "request.compute", parent);
        compute_span.attr("items", items);
        let plan = Planner::new(platform.clone())
            .strategy(strategy)
            .threads(self.cfg.planner_threads)
            .cache(Arc::clone(&self.cost_table))
            .plan_cache(Arc::clone(&self.plan_cache))
            .plan(items)
            .map_err(|e| e.to_string())?;
        Ok(Arc::new(match op {
            Op::Plan => plan_fields(&plan),
            Op::Simulate => {
                let sim = gs_gridsim::sim::simulate_plan(&platform, &plan, &[]);
                Computed::Sim { predicted: plan.predicted_makespan, simulated: sim.makespan }
            }
        }))
    }

    /// The `calibrate` path: parse traces, least-squares-fit a
    /// platform. Not cached or coalesced — trace payloads rarely
    /// repeat, and the fit is linear in the trace sizes, far cheaper
    /// than an exact solve.
    fn calibrate(&self, trace_texts: &[String]) -> Outcome {
        if trace_texts.is_empty() {
            return Outcome::Error {
                code: ErrorCode::BadRequest,
                message: "calibrate needs at least one trace".into(),
            };
        }
        let mut traces = Vec::with_capacity(trace_texts.len());
        for (i, text) in trace_texts.iter().enumerate() {
            match trace_from_json(text) {
                Ok(t) => traces.push(t),
                Err(e) => return plan_failed(format!("trace {}: {e}", i + 1)),
            }
        }
        let cal = match Calibration::from_traces(&traces) {
            Ok(c) => c,
            Err(e) => return plan_failed(e.to_string()),
        };
        let platform = match cal.platform() {
            Ok(p) => p,
            Err(e) => return plan_failed(e.to_string()),
        };
        let mut text = cal.render_notes();
        text.push_str(&gs_scatter::platform_file::render_platform(&platform));
        Outcome::Calibrate { platform: text }
    }
}

/// Which cached answer shape a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    Plan,
    Simulate,
}

/// The `op` label a request contributes to `serve_latency_seconds` (and
/// to its root span).
fn op_label(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::Ping => "ping",
        RequestBody::Metrics => "metrics",
        RequestBody::Shutdown => "shutdown",
        RequestBody::Plan(_) => "plan",
        RequestBody::Simulate(_) => "simulate",
        RequestBody::Calibrate { .. } => "calibrate",
    }
}

fn cache_key(op: Op, params: &PlanParams) -> u64 {
    let mut h = DefaultHasher::new();
    (op, &params.platform, params.items, &params.strategy).hash(&mut h);
    h.finish()
}

fn plan_fields(plan: &Plan) -> Computed {
    let to_u64 = |v: &[usize]| v.iter().map(|&x| x as u64).collect();
    Computed::Plan {
        makespan: plan.predicted_makespan,
        counts: to_u64(&plan.counts),
        displs: to_u64(&plan.displs),
        order: to_u64(&plan.order),
    }
}

fn outcome_of(op: Op, computed: &Computed, cache: CacheStatus) -> Outcome {
    match (op, computed) {
        (Op::Plan, Computed::Plan { makespan, counts, displs, order }) => {
            Outcome::Plan(PlanResult {
                makespan: *makespan,
                counts: counts.clone(),
                displs: displs.clone(),
                order: order.clone(),
                cache,
            })
        }
        (Op::Simulate, Computed::Sim { predicted, simulated }) => Outcome::Simulate(SimResult {
            predicted_makespan: *predicted,
            simulated_makespan: *simulated,
            cache,
        }),
        // Keys embed the op, so a mismatch is unreachable; answer it
        // defensively instead of panicking a serving thread.
        _ => plan_failed("internal cache shape mismatch".into()),
    }
}

fn plan_failed(message: String) -> Outcome {
    Outcome::Error { code: ErrorCode::PlanFailed, message }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s {
        "uniform" => Strategy::Uniform,
        "exact-basic" => Strategy::ExactBasic,
        "exact" => Strategy::Exact,
        "exact-dc" => Strategy::ExactDc,
        "heuristic" => Strategy::Heuristic,
        "closed-form" => Strategy::ClosedForm,
        other => {
            return Err(format!(
                "unknown strategy `{other}` \
                 (try uniform|exact|exact-basic|exact-dc|heuristic|closed-form)"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLATFORM: &str = "proc root beta=0 alpha=0.009\n\
                            proc fast beta=1e-5 alpha=0.004\n\
                            proc slow beta=2e-5 alpha=0.016\n";

    fn plan_request(id: &str, items: u64, strategy: &str) -> Request {
        Request {
            id: id.into(),
            body: RequestBody::Plan(PlanParams {
                platform: PLATFORM.into(),
                items,
                strategy: strategy.into(),
            }),
        }
    }

    fn plan_result(resp: Response) -> PlanResult {
        match resp.outcome {
            Outcome::Plan(p) => p,
            other => panic!("expected a plan, got {other:?}"),
        }
    }

    #[test]
    fn plan_matches_direct_library_call() {
        let engine = Engine::new(EngineConfig::default());
        let wire = plan_result(engine.handle(plan_request("1", 5000, "exact")));
        let direct = Planner::new(parse_platform(PLATFORM).unwrap())
            .strategy(Strategy::Exact)
            .plan(5000)
            .unwrap();
        assert_eq!(wire.makespan.to_bits(), direct.predicted_makespan.to_bits());
        assert_eq!(wire.counts, direct.counts.iter().map(|&c| c as u64).collect::<Vec<_>>());
        assert_eq!(wire.displs, direct.displs.iter().map(|&d| d as u64).collect::<Vec<_>>());
        assert_eq!(wire.cache, CacheStatus::Miss);
    }

    #[test]
    fn repeat_requests_hit_the_result_cache() {
        let engine = Engine::new(EngineConfig::default());
        let first = plan_result(engine.handle(plan_request("1", 3000, "exact-dc")));
        let second = plan_result(engine.handle(plan_request("2", 3000, "exact-dc")));
        assert_eq!(first.cache, CacheStatus::Miss);
        assert_eq!(second.cache, CacheStatus::Hit);
        assert_eq!(first.counts, second.counts);
        assert_eq!(first.makespan.to_bits(), second.makespan.to_bits());
    }

    #[test]
    fn different_params_do_not_collide() {
        let engine = Engine::new(EngineConfig::default());
        let a = plan_result(engine.handle(plan_request("1", 3000, "exact")));
        let b = plan_result(engine.handle(plan_request("2", 3001, "exact")));
        assert_eq!(b.cache, CacheStatus::Miss);
        assert_eq!(a.counts.iter().sum::<u64>(), 3000);
        assert_eq!(b.counts.iter().sum::<u64>(), 3001);
    }

    #[test]
    fn simulate_and_plan_are_cached_separately() {
        let engine = Engine::new(EngineConfig::default());
        plan_result(engine.handle(plan_request("1", 2000, "exact")));
        let sim = engine.handle(Request {
            id: "2".into(),
            body: RequestBody::Simulate(PlanParams {
                platform: PLATFORM.into(),
                items: 2000,
                strategy: "exact".into(),
            }),
        });
        match sim.outcome {
            Outcome::Simulate(s) => {
                assert_eq!(s.cache, CacheStatus::Miss, "separate key space from plan");
                assert!(s.simulated_makespan > 0.0);
                assert!((s.simulated_makespan - s.predicted_makespan).abs() < 1e-9,
                    "ideal DES agrees with Eq. (1) prediction");
            }
            other => panic!("expected simulate outcome, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let engine = Engine::new(EngineConfig::default());
        for (req, want_code) in [
            (plan_request("1", 0, "exact"), ErrorCode::PlanFailed),
            (plan_request("2", 100, "quantum"), ErrorCode::PlanFailed),
            (
                Request {
                    id: "3".into(),
                    body: RequestBody::Plan(PlanParams {
                        platform: "bogus".into(),
                        items: 10,
                        strategy: "exact".into(),
                    }),
                },
                ErrorCode::PlanFailed,
            ),
            (
                Request { id: "4".into(), body: RequestBody::Calibrate { traces: vec![] } },
                ErrorCode::BadRequest,
            ),
        ] {
            match engine.handle(req).outcome {
                Outcome::Error { code, .. } => assert_eq!(code, want_code),
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn ping_metrics_and_shutdown_respond() {
        let engine = Engine::new(EngineConfig::default());
        assert_eq!(
            engine.handle(Request { id: "1".into(), body: RequestBody::Ping }).outcome,
            Outcome::Pong
        );
        match engine.handle(Request { id: "2".into(), body: RequestBody::Metrics }).outcome {
            Outcome::Metrics { prometheus } => {
                assert!(prometheus.contains("serve_requests_total"), "{prometheus}");
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        assert_eq!(
            engine.handle(Request { id: "3".into(), body: RequestBody::Shutdown }).outcome,
            Outcome::ShuttingDown
        );
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let reg = Registry::global();
        let computes = reg.counter("serve_computes_total", "planning computations actually run");
        let before = computes.get();
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let results: Vec<PlanResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let engine = Arc::clone(&engine);
                    s.spawn(move || {
                        plan_result(engine.handle(plan_request(&format!("t{i}"), 60_000, "exact")))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computes.get() - before, 1, "the herd computes exactly one plan");
        let leader = &results[0];
        for r in &results[1..] {
            assert_eq!(r.counts, leader.counts);
            assert_eq!(r.makespan.to_bits(), leader.makespan.to_bits());
        }
        assert_eq!(
            results.iter().filter(|r| r.cache == CacheStatus::Miss).count(),
            1,
            "exactly one leader"
        );
    }

    #[test]
    fn admission_control_sheds_excess_load() {
        // A budget of zero sheds every cache-missing request, which is
        // the deterministic way to exercise the overload path.
        let engine =
            Engine::new(EngineConfig { max_inflight: 0, ..EngineConfig::default() });
        match engine.handle(plan_request("1", 1000, "exact")).outcome {
            Outcome::Error { code, message } => {
                assert_eq!(code, ErrorCode::Overloaded);
                assert!(message.contains("retry"), "{message}");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        // Pings are never shed: admission only bounds planning work.
        assert_eq!(
            engine.handle(Request { id: "2".into(), body: RequestBody::Ping }).outcome,
            Outcome::Pong
        );
    }
}
