//! The wire protocol: versioned request/response types and their
//! hand-rolled JSON codec (no serde — same policy as the obs schema).
//!
//! One request per line, one response per line, UTF-8 JSON objects.
//! The normative grammar lives in `docs/serve.md`; the codec here is the
//! reference implementation. Forward compatibility is by construction:
//! decoders look up the fields they know and **ignore every other
//! member**, so a v1 server interoperates with clients that add fields,
//! and vice versa. Structural changes bump `"v"`; a request whose `"v"`
//! is newer than [`PROTOCOL_VERSION`] is answered with an
//! `unsupported_version` error rather than misread.

use gs_scatter::obs::json::{self, push_escaped, push_f64, Json};

/// The protocol version this build speaks. Encoded as `"v"` in every
/// request and response.
pub const PROTOCOL_VERSION: u64 = 1;

/// A decoded request: client-chosen correlation id plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response, so clients can pipeline.
    pub id: String,
    /// The operation to perform.
    pub body: RequestBody,
}

/// The operation a [`Request`] asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe; answered with [`Outcome::Pong`].
    Ping,
    /// Compute a scatter plan.
    Plan(PlanParams),
    /// Compute a plan, then run the discrete-event simulator on it.
    Simulate(PlanParams),
    /// Fit affine cost parameters from executed obs-JSON traces and
    /// return the calibrated platform file.
    Calibrate {
        /// One obs-JSON trace document per element.
        traces: Vec<String>,
    },
    /// Snapshot the process-global metrics registry (Prometheus text).
    Metrics,
    /// Ask the daemon to stop accepting connections and exit.
    Shutdown,
}

/// The planning inputs shared by `plan` and `simulate` requests — the
/// same triple that keys the daemon's result cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanParams {
    /// Platform-file text (the `gs` format, parsed by
    /// [`gs_scatter::platform_file`]).
    pub platform: String,
    /// Number of items to scatter (must be positive).
    pub items: u64,
    /// Strategy name: `uniform`, `exact`, `exact-basic`, `exact-dc`,
    /// `heuristic`, or `closed-form`.
    pub strategy: String,
}

/// A decoded response: the request's id plus what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: String,
    /// The result (or error).
    pub outcome: Outcome,
}

/// What a [`Response`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Answer to [`RequestBody::Ping`].
    Pong,
    /// A computed plan.
    Plan(PlanResult),
    /// A plan plus its simulated makespan.
    Simulate(SimResult),
    /// A calibrated platform.
    Calibrate {
        /// Platform-file text, pipeable straight back into a plan
        /// request.
        platform: String,
    },
    /// A metrics snapshot.
    Metrics {
        /// Prometheus text exposition of the registry.
        prometheus: String,
    },
    /// Acknowledgement of [`RequestBody::Shutdown`]; the daemon exits
    /// after writing it.
    ShuttingDown,
    /// The request failed; nothing was computed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A scatter plan as carried on the wire. Numbers round-trip exactly
/// (shortest-representation floats, integers below 2⁵³), so a plan
/// received over the socket is bit-identical to the library's.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResult {
    /// Predicted makespan (Eq. 2), seconds.
    pub makespan: f64,
    /// Items per processor, by platform index.
    pub counts: Vec<u64>,
    /// Root-buffer offsets, by platform index.
    pub displs: Vec<u64>,
    /// Scatter order (processor indices, root last).
    pub order: Vec<u64>,
    /// How the daemon produced this answer.
    pub cache: CacheStatus,
}

/// A simulate answer: prediction and discrete-event simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Predicted makespan (Eq. 2), seconds.
    pub predicted_makespan: f64,
    /// Makespan measured by the discrete-event simulator.
    pub simulated_makespan: f64,
    /// How the daemon produced the underlying plan.
    pub cache: CacheStatus,
}

/// Where a planning answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Computed fresh by this request.
    Miss,
    /// Served from the daemon's result cache.
    Hit,
    /// Folded into another request's in-flight computation.
    Coalesced,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Coalesced => "coalesced",
        }
    }

    fn from_str(s: &str) -> Option<CacheStatus> {
        Some(match s {
            "miss" => CacheStatus::Miss,
            "hit" => CacheStatus::Hit,
            "coalesced" => CacheStatus::Coalesced,
            _ => return None,
        })
    }
}

/// Machine-readable failure classes. The set may grow in later protocol
/// versions; clients must treat unknown codes like [`ErrorCode::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not a well-formed request (bad JSON, missing
    /// `id`/`op`, unknown `op`, malformed parameters).
    BadRequest,
    /// The request's `"v"` is newer than this daemon speaks.
    UnsupportedVersion,
    /// Planning (or trace parsing, for calibrate) failed; the message
    /// carries the library error.
    PlanFailed,
    /// Admission control shed this request under load; retry later.
    Overloaded,
    /// An error code this client build does not know (forward compat).
    Other,
}

impl ErrorCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::PlanFailed => "plan_failed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Other => "other",
        }
    }

    fn from_str(s: &str) -> ErrorCode {
        match s {
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "plan_failed" => ErrorCode::PlanFailed,
            "overloaded" => ErrorCode::Overloaded,
            _ => ErrorCode::Other,
        }
    }
}

/// A decode failure: what went wrong, plus the request id when one could
/// still be extracted (so the server can address its error response).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// Failure class to answer with.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// The offending line's `id`, when recoverable.
    pub id: Option<String>,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtocolError {}

// ---- encoding -------------------------------------------------------------

fn push_str_arr(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_escaped(out, s);
    }
    out.push(']');
}

fn push_u64_arr(out: &mut String, items: &[u64]) {
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Encodes a request as one JSON line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let mut out = format!("{{\"v\": {PROTOCOL_VERSION}, \"id\": ");
    push_escaped(&mut out, &req.id);
    out.push_str(", \"op\": ");
    match &req.body {
        RequestBody::Ping => out.push_str("\"ping\""),
        RequestBody::Plan(p) | RequestBody::Simulate(p) => {
            let op = if matches!(req.body, RequestBody::Plan(_)) { "plan" } else { "simulate" };
            out.push_str(&format!("\"{op}\", \"platform\": "));
            push_escaped(&mut out, &p.platform);
            out.push_str(&format!(", \"items\": {}, \"strategy\": ", p.items));
            push_escaped(&mut out, &p.strategy);
        }
        RequestBody::Calibrate { traces } => {
            out.push_str("\"calibrate\", \"traces\": ");
            push_str_arr(&mut out, traces);
        }
        RequestBody::Metrics => out.push_str("\"metrics\""),
        RequestBody::Shutdown => out.push_str("\"shutdown\""),
    }
    out.push('}');
    out
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let mut out = format!("{{\"v\": {PROTOCOL_VERSION}, \"id\": ");
    push_escaped(&mut out, &resp.id);
    match &resp.outcome {
        Outcome::Pong => out.push_str(", \"ok\": true, \"op\": \"pong\""),
        Outcome::Plan(p) => {
            out.push_str(", \"ok\": true, \"op\": \"plan\", \"makespan\": ");
            push_f64(&mut out, p.makespan);
            out.push_str(", \"counts\": ");
            push_u64_arr(&mut out, &p.counts);
            out.push_str(", \"displs\": ");
            push_u64_arr(&mut out, &p.displs);
            out.push_str(", \"order\": ");
            push_u64_arr(&mut out, &p.order);
            out.push_str(&format!(", \"cache\": \"{}\"", p.cache.as_str()));
        }
        Outcome::Simulate(s) => {
            out.push_str(", \"ok\": true, \"op\": \"simulate\", \"predicted_makespan\": ");
            push_f64(&mut out, s.predicted_makespan);
            out.push_str(", \"simulated_makespan\": ");
            push_f64(&mut out, s.simulated_makespan);
            out.push_str(&format!(", \"cache\": \"{}\"", s.cache.as_str()));
        }
        Outcome::Calibrate { platform } => {
            out.push_str(", \"ok\": true, \"op\": \"calibrate\", \"platform\": ");
            push_escaped(&mut out, platform);
        }
        Outcome::Metrics { prometheus } => {
            out.push_str(", \"ok\": true, \"op\": \"metrics\", \"prometheus\": ");
            push_escaped(&mut out, prometheus);
        }
        Outcome::ShuttingDown => out.push_str(", \"ok\": true, \"op\": \"shutting_down\""),
        Outcome::Error { code, message } => {
            out.push_str(&format!(
                ", \"ok\": false, \"error\": {{\"code\": \"{}\", \"message\": ",
                code.as_str()
            ));
            push_escaped(&mut out, message);
            out.push('}');
        }
    }
    out.push('}');
    out
}

// ---- decoding -------------------------------------------------------------

fn bad(message: impl Into<String>, id: Option<String>) -> ProtocolError {
    ProtocolError { code: ErrorCode::BadRequest, message: message.into(), id }
}

/// Parses the line as JSON and checks the envelope (`v`, `id`) shared by
/// requests and responses. Returns the parsed document and the id.
fn envelope(line: &str) -> Result<(Json, String), ProtocolError> {
    let doc = json::parse(line).map_err(|e| bad(format!("malformed JSON: {e}"), None))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad("request must be a JSON object", None));
    }
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad("missing string field `id`", None))?;
    let v = doc
        .get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("missing integer field `v`", Some(id.clone())))?;
    if v > PROTOCOL_VERSION {
        return Err(ProtocolError {
            code: ErrorCode::UnsupportedVersion,
            message: format!("protocol version {v} not supported (this daemon speaks {PROTOCOL_VERSION})"),
            id: Some(id),
        });
    }
    Ok((doc, id))
}

fn plan_params(doc: &Json, id: &str) -> Result<PlanParams, ProtocolError> {
    let some_id = || Some(id.to_string());
    let platform = doc
        .get("platform")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `platform`", some_id()))?
        .to_string();
    let items = doc
        .get("items")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("missing integer field `items`", some_id()))?;
    let strategy = doc
        .get("strategy")
        .and_then(Json::as_str)
        .unwrap_or("heuristic")
        .to_string();
    Ok(PlanParams { platform, items, strategy })
}

/// Decodes one request line. Unknown object members are ignored
/// (forward compatibility); unknown `op` values are an error.
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    let (doc, id) = envelope(line)?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `op`", Some(id.clone())))?;
    let body = match op {
        "ping" => RequestBody::Ping,
        "plan" => RequestBody::Plan(plan_params(&doc, &id)?),
        "simulate" => RequestBody::Simulate(plan_params(&doc, &id)?),
        "calibrate" => {
            let arr = doc
                .get("traces")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing array field `traces`", Some(id.clone())))?;
            let mut traces = Vec::with_capacity(arr.len());
            for item in arr {
                traces.push(
                    item.as_str()
                        .ok_or_else(|| bad("`traces` items must be strings", Some(id.clone())))?
                        .to_string(),
                );
            }
            RequestBody::Calibrate { traces }
        }
        "metrics" => RequestBody::Metrics,
        "shutdown" => RequestBody::Shutdown,
        other => return Err(bad(format!("unknown op `{other}`"), Some(id))),
    };
    Ok(Request { id, body })
}

/// Decodes one response line. Unknown members are ignored; unknown
/// error codes map to [`ErrorCode::Other`] rather than failing, so old
/// clients survive new failure classes.
pub fn decode_response(line: &str) -> Result<Response, ProtocolError> {
    let (doc, id) = envelope(line)?;
    let some_id = || Some(id.clone());
    let ok = doc
        .get("ok")
        .and_then(|j| match j {
            Json::Bool(b) => Some(*b),
            _ => None,
        })
        .ok_or_else(|| bad("missing boolean field `ok`", some_id()))?;
    if !ok {
        let err = doc.get("error").ok_or_else(|| bad("missing `error` object", some_id()))?;
        let code = err
            .get("code")
            .and_then(Json::as_str)
            .map(ErrorCode::from_str)
            .ok_or_else(|| bad("missing string field `error.code`", some_id()))?;
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        return Ok(Response { id, outcome: Outcome::Error { code, message } });
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `op`", some_id()))?;
    let cache_of = |doc: &Json| -> Result<CacheStatus, ProtocolError> {
        doc.get("cache")
            .and_then(Json::as_str)
            .and_then(CacheStatus::from_str)
            .ok_or_else(|| bad("missing/unknown `cache` status", some_id()))
    };
    let f64_of = |doc: &Json, key: &str| -> Result<f64, ProtocolError> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("missing number field `{key}`"), some_id()))
    };
    let u64s_of = |doc: &Json, key: &str| -> Result<Vec<u64>, ProtocolError> {
        let arr = doc
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(format!("missing array field `{key}`"), some_id()))?;
        arr.iter()
            .map(|j| {
                j.as_u64()
                    .ok_or_else(|| bad(format!("`{key}` items must be integers"), some_id()))
            })
            .collect()
    };
    let outcome = match op {
        "pong" => Outcome::Pong,
        "plan" => Outcome::Plan(PlanResult {
            makespan: f64_of(&doc, "makespan")?,
            counts: u64s_of(&doc, "counts")?,
            displs: u64s_of(&doc, "displs")?,
            order: u64s_of(&doc, "order")?,
            cache: cache_of(&doc)?,
        }),
        "simulate" => Outcome::Simulate(SimResult {
            predicted_makespan: f64_of(&doc, "predicted_makespan")?,
            simulated_makespan: f64_of(&doc, "simulated_makespan")?,
            cache: cache_of(&doc)?,
        }),
        "calibrate" => Outcome::Calibrate {
            platform: doc
                .get("platform")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing string field `platform`", some_id()))?
                .to_string(),
        },
        "metrics" => Outcome::Metrics {
            prometheus: doc
                .get("prometheus")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing string field `prometheus`", some_id()))?
                .to_string(),
        },
        "shutting_down" => Outcome::ShuttingDown,
        other => return Err(bad(format!("unknown response op `{other}`"), some_id())),
    };
    Ok(Response { id, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_request(req: Request) {
        let line = encode_request(&req);
        assert_eq!(decode_request(&line).unwrap(), req, "{line}");
    }

    fn rt_response(resp: Response) {
        let line = encode_response(&resp);
        assert_eq!(decode_response(&line).unwrap(), resp, "{line}");
    }

    #[test]
    fn every_request_kind_round_trips() {
        let params = PlanParams {
            platform: "proc a beta=0 alpha=0.01\n# \"quoted\"\n".into(),
            items: 817_101,
            strategy: "exact-dc".into(),
        };
        rt_request(Request { id: "1".into(), body: RequestBody::Ping });
        rt_request(Request { id: "p/2\n".into(), body: RequestBody::Plan(params.clone()) });
        rt_request(Request { id: "s".into(), body: RequestBody::Simulate(params) });
        rt_request(Request {
            id: "c".into(),
            body: RequestBody::Calibrate { traces: vec!["{}".into(), "tab\there".into()] },
        });
        rt_request(Request { id: "m".into(), body: RequestBody::Metrics });
        rt_request(Request { id: "x".into(), body: RequestBody::Shutdown });
    }

    #[test]
    fn every_response_kind_round_trips() {
        rt_response(Response { id: "1".into(), outcome: Outcome::Pong });
        rt_response(Response {
            id: "2".into(),
            outcome: Outcome::Plan(PlanResult {
                makespan: 0.1 + 0.2, // a float with an awkward shortest form
                counts: vec![3, 0, 7],
                displs: vec![0, 3, 3],
                order: vec![2, 1, 0],
                cache: CacheStatus::Coalesced,
            }),
        });
        rt_response(Response {
            id: "3".into(),
            outcome: Outcome::Simulate(SimResult {
                predicted_makespan: 1.5e-3,
                simulated_makespan: f64::MIN_POSITIVE,
                cache: CacheStatus::Hit,
            }),
        });
        rt_response(Response {
            id: "4".into(),
            outcome: Outcome::Calibrate { platform: "proc a beta=1 alpha=1\nroot a\n".into() },
        });
        rt_response(Response {
            id: "5".into(),
            outcome: Outcome::Metrics { prometheus: "# HELP x x\nx 1\n".into() },
        });
        rt_response(Response { id: "6".into(), outcome: Outcome::ShuttingDown });
        rt_response(Response {
            id: "7".into(),
            outcome: Outcome::Error {
                code: ErrorCode::Overloaded,
                message: "64 requests in flight".into(),
            },
        });
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let req = decode_request(
            "{\"v\": 1, \"id\": \"a\", \"op\": \"ping\", \"novel_field\": {\"x\": [1, 2]}}",
        )
        .unwrap();
        assert_eq!(req.body, RequestBody::Ping);
        let resp = decode_response(
            "{\"v\": 1, \"id\": \"a\", \"ok\": true, \"op\": \"pong\", \"t_micros\": 12}",
        )
        .unwrap();
        assert_eq!(resp.outcome, Outcome::Pong);
    }

    #[test]
    fn unknown_error_codes_decode_as_other() {
        let resp = decode_response(
            "{\"v\": 1, \"id\": \"a\", \"ok\": false, \
             \"error\": {\"code\": \"quota_exceeded\", \"message\": \"m\"}}",
        )
        .unwrap();
        assert_eq!(resp.outcome, Outcome::Error { code: ErrorCode::Other, message: "m".into() });
    }

    #[test]
    fn newer_version_is_rejected_with_the_right_code() {
        let e = decode_request("{\"v\": 99, \"id\": \"a\", \"op\": \"ping\"}").unwrap_err();
        assert_eq!(e.code, ErrorCode::UnsupportedVersion);
        assert_eq!(e.id.as_deref(), Some("a"));
    }

    #[test]
    fn malformed_lines_fail_as_bad_request() {
        for line in [
            "",
            "not json",
            "[1, 2]",
            "{\"v\": 1}",                                      // no id
            "{\"id\": \"a\", \"op\": \"ping\"}",               // no v
            "{\"v\": 1, \"id\": \"a\"}",                       // no op
            "{\"v\": 1, \"id\": \"a\", \"op\": \"dance\"}",    // unknown op
            "{\"v\": 1, \"id\": \"a\", \"op\": \"plan\"}",     // plan without params
            "{\"v\": 1, \"id\": \"a\", \"op\": \"plan\", \"platform\": \"p\", \
             \"items\": -3, \"strategy\": \"exact\"}",          // negative items
        ] {
            let e = decode_request(line).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn decode_errors_recover_the_id_when_present() {
        let e = decode_request("{\"v\": 1, \"id\": \"r9\", \"op\": \"nope\"}").unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r9"));
        let e = decode_request("not json at all").unwrap_err();
        assert_eq!(e.id, None);
    }
}
