//! # gs-serve — planning as a service
//!
//! The paper's planner answers one scatter-planning question per process
//! launch; this crate turns it into a long-running daemon. A `gs serve`
//! process listens on a TCP socket, speaks a line-oriented JSON protocol
//! (one request per line, one response per line — see `docs/serve.md`
//! for the normative spec), and answers `plan` / `simulate` /
//! `calibrate` requests by calling the same `gs-scatter` library code
//! the CLI uses, so a plan computed over the wire is **bit-identical**
//! to `gs plan` on the same inputs.
//!
//! What the daemon adds over one-shot runs:
//!
//! * **A shared result cache.** Completed plans are kept in a sharded
//!   map keyed by `(platform, items, strategy)`; repeat requests are
//!   answered without re-solving. Underneath, all requests share one
//!   [`CostTable`](gs_scatter::cost_table::CostTable) and one sharded
//!   [`PlanCache`](gs_scatter::planner::PlanCache), so even *misses*
//!   warm-start from related solves.
//! * **Request coalescing.** Identical in-flight requests are folded
//!   into one computation (single-flight): a thundering herd of `k`
//!   clients asking for the same plan costs one solve, and `k-1`
//!   responses report `"cache": "coalesced"`.
//! * **Admission control.** A bounded in-flight budget sheds excess
//!   planning work with an `overloaded` error response instead of
//!   queueing without bound; shed requests are cheap and the client
//!   knows to back off.
//! * **Native observability.** Every stage increments `serve_*` metrics
//!   in the process-global registry, and the same socket answers
//!   `GET /metrics` with Prometheus text exposition.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`protocol`] | versioned request/response types and their hand-rolled JSON encoding |
//! | [`engine`] | the transport-free request handler: caching, coalescing, admission |
//! | [`server`] | the TCP listener: JSON-lines sessions plus `GET /metrics` |
//! | [`client`] | a small blocking client used by `gs client` and the benches |
//!
//! ## Example (in-process)
//!
//! ```
//! use gs_serve::engine::{Engine, EngineConfig};
//! use gs_serve::protocol::{PlanParams, Request, RequestBody, Outcome};
//!
//! let engine = Engine::new(EngineConfig::default());
//! let req = Request {
//!     id: "r1".into(),
//!     body: RequestBody::Plan(PlanParams {
//!         platform: "proc root beta=0 alpha=0.01\nproc w1 beta=1e-4 alpha=0.02\n".into(),
//!         items: 1000,
//!         strategy: "exact".into(),
//!     }),
//! };
//! let resp = engine.handle(req);
//! match resp.outcome {
//!     Outcome::Plan(result) => assert_eq!(result.counts.iter().sum::<u64>(), 1000),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use engine::{Engine, EngineConfig};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, CacheStatus, ErrorCode,
    Outcome, PlanParams, PlanResult, ProtocolError, Request, RequestBody, Response, SimResult,
    PROTOCOL_VERSION,
};
pub use server::ServerHandle;
