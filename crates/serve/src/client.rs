//! A small blocking client for the daemon, used by `gs client`, the
//! `serve_load` bench, and the integration tests. One [`Client`] owns
//! one connection; requests on it are answered in order.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_response, encode_request, ErrorCode, ProtocolError, Request, Response,
};

/// A connected client. Dropping it closes the connection.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // One small write per request, then block on the response:
        // Nagle's algorithm only adds latency to this pattern.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        let line = self.call_line(&encode_request(req)).map_err(io_err)?;
        decode_response(&line)
    }

    /// Sends one raw, already-encoded line and returns the raw response
    /// line — the escape hatch `gs client --json` uses, so scripts can
    /// speak protocol extensions this build does not model.
    pub fn call_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_string())
    }
}

/// Fetches the daemon's `/metrics` endpoint over plain HTTP and returns
/// the Prometheus text body.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response from daemon",
        )),
    }
}

fn io_err(e: std::io::Error) -> ProtocolError {
    ProtocolError { code: ErrorCode::Other, message: format!("i/o error: {e}"), id: None }
}
