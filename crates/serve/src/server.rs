//! The TCP front end: a listener accepting JSON-lines sessions (one
//! request per line, one response per line, answered in order) and, on
//! the same port, plain `GET /metrics` HTTP requests for Prometheus
//! scrapers. Transport only — every decision is [`Engine::handle`]'s.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use gs_scatter::metrics::Registry;
use gs_scatter::obs::span;

use crate::engine::Engine;
use crate::protocol::{
    decode_request, encode_response, Outcome, ProtocolError, RequestBody, Response,
};

/// A running daemon: the bound address plus the accept-loop thread.
/// Obtain one with [`serve`]; stop it with [`ServerHandle::shutdown`]
/// (or a `shutdown` request over the wire) and then
/// [`ServerHandle::join`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0 to the ephemeral
    /// port the OS picked — how tests avoid collisions).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to exit after its next accept. Safe to call
    /// more than once, and also triggered by a `shutdown` request.
    pub fn shutdown(&self) {
        request_stop(&self.stop, self.addr);
    }

    /// Waits for the accept loop to exit. Connection threads already
    /// past accept finish their current session independently.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Sets the stop flag and pokes the listener with a throwaway
/// connection so a blocking `accept` observes it.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
}

/// Binds `addr` (e.g. `"127.0.0.1:7070"`, or port `0` for an ephemeral
/// port) and serves requests on it until shut down. Each connection
/// gets its own thread; the engine's admission control bounds the
/// planning work they can queue, not the connection count.
pub fn serve(engine: Arc<Engine>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with_span_log(engine, addr, None)
}

/// [`serve`] with an optional per-request span log: when `span_log`
/// names a directory (created if missing) and span tracing is enabled
/// ([`span::set_enabled`]), every answered request writes
/// `req-<id>.json` there — a Chrome trace-event file of the spans the
/// request recorded on its session thread (root `request` span plus
/// stage children; load it at `chrome://tracing` or in Perfetto).
/// Spans recorded by planner *worker* threads land in the global ring
/// ([`span::drain`]) instead — per-request files capture the
/// session-thread breakdown, which is the whole request except the
/// inside of a multi-threaded DP column sweep.
pub fn serve_with_span_log(
    engine: Arc<Engine>,
    addr: &str,
    span_log: Option<PathBuf>,
) -> std::io::Result<ServerHandle> {
    if let Some(dir) = &span_log {
        std::fs::create_dir_all(dir)?;
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(conn) = conn else { continue };
            // Responses are one small line each; never wait for Nagle.
            let _ = conn.set_nodelay(true);
            Registry::global()
                .counter("serve_connections_total", "TCP connections accepted")
                .inc();
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&accept_stop);
            let span_log = span_log.clone();
            std::thread::spawn(move || {
                let _ = session(&engine, conn, &stop, addr, span_log.as_deref());
            });
        }
    });
    Ok(ServerHandle { addr, stop, accept_thread: Some(accept_thread) })
}

/// Serves one connection: either a single HTTP `GET /metrics` exchange
/// or a JSON-lines request/response session.
fn session(
    engine: &Engine,
    conn: TcpStream,
    stop: &AtomicBool,
    addr: SocketAddr,
    span_log: Option<&Path>,
) -> std::io::Result<()> {
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // peer closed
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if line.starts_with("GET /metrics") {
            return write_metrics_http(&mut writer);
        }
        let (response, shutdown) = respond(engine, line);
        writer.write_all(encode_response(&response).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if let Some(dir) = span_log {
            write_request_spans(dir, &response.id);
        }
        if shutdown {
            request_stop(stop, addr);
            return Ok(());
        }
    }
}

/// Drains the session thread's span buffer into
/// `dir/req-<sanitized id>.json` as a Chrome trace. Requests are
/// answered serially per session, so everything buffered since the last
/// drain belongs to the request just answered. Best-effort: a full disk
/// must not take the daemon down.
fn write_request_spans(dir: &Path, id: &str) {
    if !span::enabled() {
        return;
    }
    let spans = span::take_local();
    if spans.is_empty() {
        return;
    }
    let mut name: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if name.is_empty() {
        name.push_str("anon");
    }
    let _ = std::fs::write(dir.join(format!("req-{name}.json")), span::chrome_trace_json(&spans));
}

/// Decodes and handles one request line; the flag says whether it asked
/// the daemon to shut down.
fn respond(engine: &Engine, line: &str) -> (Response, bool) {
    match decode_request(line) {
        Ok(req) => {
            let shutdown = matches!(req.body, RequestBody::Shutdown);
            (engine.handle(req), shutdown)
        }
        Err(ProtocolError { code, message, id }) => (
            Response {
                id: id.unwrap_or_default(),
                outcome: Outcome::Error { code, message },
            },
            false,
        ),
    }
}

/// Answers a Prometheus scrape: minimal HTTP/1.1, close-delimited.
fn write_metrics_http(writer: &mut TcpStream) -> std::io::Result<()> {
    let body = Registry::global().snapshot().to_prometheus();
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}
