//! The `gs` binary: argument parsing and dispatch (logic lives in the
//! library so it is testable).

use std::process::ExitCode;

use gs_cli::commands::{
    cmd_calibrate, cmd_metrics, cmd_metrics_json, cmd_plan, cmd_report, cmd_report_drift,
    cmd_report_spans, cmd_sim, cmd_sim_spanned, cmd_simulate, cmd_table1, cmd_trace,
    cmd_trace_spanned, cmd_transform, PlanOptions, SimOptions,
};
use gs_cli::serve_cmd::{cmd_client, cmd_client_raw, start_daemon, ClientCmd, ServeOptions};
use gs_cli::CliError;

const USAGE: &str = "\
gs — load-balanced scatter planning (Genaud/Giersch/Vivien, IPPS 2003)

USAGE:
  gs table1                                     print the paper's testbed as a platform file
  gs plan <platform> --items N [opts]           compute a distribution
  gs plan <platform> --items N --emit-c         ... as C arrays for MPI_Scatterv
  gs simulate <platform> --items N [opts]       simulate and render the schedule
  gs simulate <platform> --items N --csv        ... as CSV
  gs trace <platform> --items N --source S      export a run as observability JSON
  gs report <trace.json> [<t2.json> <t3.json>]  summary + Gantt per trace; diff if several
  gs report --spans <spans.json>                self-time summary of an exported span file
  gs transform <file.c> <platform> --items N    rewrite MPI_Scatter call sites
  gs calibrate <t1.json> [<t2.json> ...]        fit per-processor costs from executed
                                                traces; prints a platform file
  gs metrics <platform> --items N [opts]        run a workload, dump runtime metrics
                                                (Prometheus text format; --json for
                                                the machine-readable object)
  gs sim --ranks N [--pool T] [opts]            simulate a synthetic big star at N ranks
                                                (docs/simulation.md); --pool also
                                                executes it on the pooled runtime

PLANNING DAEMON (docs/serve.md):
  gs serve [--addr A] [--threads T] [--shards S] [--max-inflight M]
                                                run the long-lived planning daemon
  gs client <addr> ping                         liveness check
  gs client <addr> plan <platform> --items N [--strategy S]
                                                plan via the daemon (cached)
  gs client <addr> simulate <platform> --items N [--strategy S]
                                                plan + simulate via the daemon
  gs client <addr> calibrate <t1.json> [...]    fit costs from traces via the daemon
  gs client <addr> metrics                      fetch the daemon's Prometheus text
  gs client <addr> shutdown                     stop the daemon
  gs client <addr> --json LINE                  send one raw protocol line verbatim

FAULT INJECTION (docs/robustness.md):
  gs plan     ... --faults SPEC                 forecast degraded + recovered makespans
  gs simulate ... --faults SPEC                 run the fault-tolerant simulator
  gs trace    ... --source simulated|executed --faults SPEC
                                                export a degraded/recovered trace

OPTIONS:
  --items N          number of data items (required for plan/simulate/trace/transform)
  --strategy S       uniform | exact | exact-basic | exact-dc | heuristic (default)
                     | closed-form
  --kernel K         exact DP kernel shorthand: basic | optimized | dc — overrides
                     --strategy with the matching exact strategy (docs/performance.md)
  --order O          desc (default) | asc | as-is | cpu
  --threads T        worker threads for the exact DPs (default 1, 0 = all cores);
                     results are bit-identical for any thread count
  --prune            prune the exact DP with a heuristic upper bound (same results)
  --width W          chart width for simulate/report (default 60)
  --source S         trace to export: predicted (default) | simulated | executed
  --item-bytes B     wire size of one item for trace (default 8)
  --platform FILE    platform file the traces were planned against (report drift gate)
  --drift-threshold X  with report: append an executed-vs-model drift table per
                     trace and exit nonzero if any relative deviation exceeds X
                     (e.g. 0.05 = 5%); needs --platform. docs/observability.md
  --faults SPEC      inject faults: comma-separated clauses
                       crash:<who>@<t>   fail-stop at time t (`40%` = 40% of the
                                         predicted makespan)
                       flaky:<who>:<k>   first k sends to <who> are lost
                       slow:<who>:<f>[@<t>]  CPU slows by factor f (from t)
                       link:<who>:<f>    link to <who> degrades by factor f
                       seed:<n>          add a seeded random fault mix
                     <who> = processor name or scatter position
  --no-recovery      fault-oblivious (degraded) mode: no timeout/retry/re-plan
  --addr A           serve: bind address (default 127.0.0.1:7070; port 0 picks
                     an ephemeral port, printed in the banner)
  --shards S         serve: result/plan cache shards (default 16)
  --max-inflight M   serve: planning computations admitted at once before the
                     daemon sheds load with `overloaded` responses (default 64)
  --json [LINE]      client: send LINE verbatim, print the raw response line;
                     metrics: dump the machine-readable JSON object instead of
                     Prometheus text
  --spans FILE       trace/sim: record hierarchical spans during the run and
                     write them to FILE as Chrome trace-event JSON (load at
                     chrome://tracing or ui.perfetto.dev); docs/observability.md
  --span-log DIR     serve: enable span tracing and write one Chrome trace file
                     req-<id>.json per answered request into DIR
  --ranks N          sim: world size, root included (up to 4 000 000)
  --pool T           sim: execute the plan on the pooled runtime with T worker
                     threads (0 = one per core) and diff clocks vs the simulation
  --smoke            sim: omit the wall-clock line — output becomes deterministic
  --emit-trace       sim: print observability JSON (interned `#<id>` names,
                     resolved by `gs report` against sibling traces) instead

The trace JSON schema is documented in docs/observability.md; a typical
three-way check is:
  gs trace grid.platform --items 817101 --source predicted > pred.json
  gs trace grid.platform --items 817101 --source simulated > sim.json
  gs trace grid.platform --items 817101 --source executed  > exec.json
  gs report pred.json sim.json exec.json
A predicted/degraded/recovered robustness diff (docs/robustness.md):
  gs trace grid.platform --items 817101 --source simulated > pred.json
  gs trace grid.platform --items 817101 --source simulated \\
      --faults crash:sekhmet@0.5% --no-recovery > degraded.json
  gs trace grid.platform --items 817101 --source simulated \\
      --faults crash:sekhmet@0.5% > recovered.json
  gs report pred.json degraded.json recovered.json
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        // `passed` is the drift gate of `gs report --drift-threshold`:
        // a gate failure prints the full report (no usage dump — the
        // invocation was fine) and exits nonzero so CI jobs can fail on
        // cost-model drift alone.
        Ok((out, passed)) => {
            print!("{out}");
            if passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gs: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(String, bool), CliError> {
    let mut positional = Vec::new();
    let mut opts = PlanOptions::default();
    let mut emit_c = false;
    let mut csv = false;
    let mut width = 60usize;
    let mut source = "predicted".to_string();
    let mut item_bytes = 8usize;
    let mut platform_flag: Option<String> = None;
    let mut drift_threshold: Option<f64> = None;
    let mut serve_opts = ServeOptions::default();
    let mut json_line: Option<String> = None;
    let mut metrics_json = false;
    let mut spans_out: Option<String> = None;
    let mut sim_opts = SimOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--items" => {
                opts.items = next_value(args, &mut i)?.parse().map_err(|_| bad("--items"))?;
            }
            "--strategy" => opts.strategy = next_value(args, &mut i)?,
            "--kernel" => opts.kernel = Some(next_value(args, &mut i)?),
            "--order" => opts.order = next_value(args, &mut i)?,
            "--threads" => {
                opts.threads =
                    next_value(args, &mut i)?.parse().map_err(|_| bad("--threads"))?;
            }
            "--prune" => opts.prune = true,
            "--width" => width = next_value(args, &mut i)?.parse().map_err(|_| bad("--width"))?,
            "--source" => source = next_value(args, &mut i)?,
            "--item-bytes" => {
                item_bytes =
                    next_value(args, &mut i)?.parse().map_err(|_| bad("--item-bytes"))?;
            }
            "--platform" => platform_flag = Some(next_value(args, &mut i)?),
            "--drift-threshold" => {
                drift_threshold = Some(
                    next_value(args, &mut i)?
                        .parse()
                        .map_err(|_| bad("--drift-threshold"))?,
                );
            }
            "--addr" => serve_opts.addr = next_value(args, &mut i)?,
            "--shards" => {
                serve_opts.cache_shards =
                    next_value(args, &mut i)?.parse().map_err(|_| bad("--shards"))?;
            }
            "--max-inflight" => {
                serve_opts.max_inflight =
                    next_value(args, &mut i)?.parse().map_err(|_| bad("--max-inflight"))?;
            }
            // `--json` is dual-mode: `gs client` takes a raw protocol
            // line as its value, `gs metrics` takes none. The command
            // word precedes its flags, so dispatch on it.
            "--json" => {
                if positional.first().map(String::as_str) == Some("client") {
                    json_line = Some(next_value(args, &mut i)?);
                } else {
                    metrics_json = true;
                }
            }
            "--spans" => spans_out = Some(next_value(args, &mut i)?),
            "--span-log" => {
                serve_opts.span_log = Some(next_value(args, &mut i)?.into());
            }
            "--ranks" => {
                sim_opts.ranks = next_value(args, &mut i)?.parse().map_err(|_| bad("--ranks"))?;
            }
            "--pool" => {
                sim_opts.pool =
                    Some(next_value(args, &mut i)?.parse().map_err(|_| bad("--pool"))?);
            }
            "--smoke" => sim_opts.smoke = true,
            "--emit-trace" => sim_opts.emit_trace = true,
            "--faults" => opts.faults = Some(next_value(args, &mut i)?),
            "--no-recovery" => opts.no_recovery = true,
            "--emit-c" => emit_c = true,
            "--csv" => csv = true,
            "--help" | "-h" => return Ok((USAGE.to_string(), true)),
            flag if flag.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{flag}`")))
            }
            word => positional.push(word.to_string()),
        }
        i += 1;
    }

    let command = positional.first().map(String::as_str).unwrap_or("");
    let passing = |out: String| (out, true);
    match command {
        "table1" => Ok(passing(cmd_table1())),
        "plan" => {
            let platform = read_file(positional.get(1))?;
            cmd_plan(&platform, &opts, emit_c).map(passing)
        }
        "simulate" => {
            let platform = read_file(positional.get(1))?;
            cmd_simulate(&platform, &opts, width, csv).map(passing)
        }
        "trace" => {
            let platform = read_file(positional.get(1))?;
            match &spans_out {
                None => cmd_trace(&platform, &opts, &source, item_bytes).map(passing),
                Some(path) => {
                    let (out, spans) = cmd_trace_spanned(&platform, &opts, &source, item_bytes)?;
                    std::fs::write(path, spans)?;
                    Ok(passing(out))
                }
            }
        }
        "report" => {
            if let Some(path) = &spans_out {
                return cmd_report_spans(&read_file(Some(path))?).map(passing);
            }
            let texts: Vec<String> = positional[1..]
                .iter()
                .map(|p| read_file(Some(p)))
                .collect::<Result<_, _>>()?;
            match drift_threshold {
                None => cmd_report(&texts, width).map(passing),
                Some(threshold) => {
                    let platform = read_file(platform_flag.as_ref()).map_err(|_| {
                        CliError("--drift-threshold needs --platform <file>".into())
                    })?;
                    cmd_report_drift(&texts, width, &platform, threshold)
                }
            }
        }
        "calibrate" => {
            let texts: Vec<String> = positional[1..]
                .iter()
                .map(|p| read_file(Some(p)))
                .collect::<Result<_, _>>()?;
            cmd_calibrate(&texts).map(passing)
        }
        "metrics" => {
            let platform = read_file(positional.get(1))?;
            if metrics_json {
                cmd_metrics_json(&platform, &opts, item_bytes).map(passing)
            } else {
                cmd_metrics(&platform, &opts, item_bytes).map(passing)
            }
        }
        "sim" => {
            sim_opts.items = opts.items;
            match &spans_out {
                None => cmd_sim(&sim_opts).map(passing),
                Some(path) => {
                    let (out, spans) = cmd_sim_spanned(&sim_opts)?;
                    std::fs::write(path, spans)?;
                    Ok(passing(out))
                }
            }
        }
        "serve" => {
            serve_opts.planner_threads = opts.threads;
            let (handle, banner) = start_daemon(&serve_opts)?;
            // Print (and flush) before blocking so scripts can read the
            // bound address while the daemon runs.
            print!("{banner}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            handle.join();
            Ok(passing(String::new()))
        }
        "client" => {
            let addr = positional
                .get(1)
                .ok_or_else(|| CliError("client needs a daemon address".into()))?
                .clone();
            if let Some(line) = json_line {
                return cmd_client_raw(&addr, &line).map(passing);
            }
            let op = positional.get(2).map(String::as_str).unwrap_or("");
            let params = |file: Option<&String>| -> Result<(String, u64, String), CliError> {
                Ok((read_file(file)?, opts.items as u64, opts.strategy.clone()))
            };
            let cmd = match op {
                "ping" => ClientCmd::Ping,
                "plan" => {
                    let (platform, items, strategy) = params(positional.get(3))?;
                    ClientCmd::Plan { platform, items, strategy }
                }
                "simulate" => {
                    let (platform, items, strategy) = params(positional.get(3))?;
                    ClientCmd::Simulate { platform, items, strategy }
                }
                "calibrate" => {
                    let traces: Vec<String> = positional[3..]
                        .iter()
                        .map(|p| read_file(Some(p)))
                        .collect::<Result<_, _>>()?;
                    ClientCmd::Calibrate { traces }
                }
                "metrics" => ClientCmd::Metrics,
                "shutdown" => ClientCmd::Shutdown,
                "" => return Err(CliError("client needs an operation".into())),
                other => return Err(CliError(format!("unknown client operation `{other}`"))),
            };
            cmd_client(&addr, cmd).map(passing)
        }
        "transform" => {
            let source = read_file(positional.get(1))?;
            let platform = read_file(positional.get(2))?;
            cmd_transform(&source, &platform, &opts).map(passing)
        }
        "" => Err(CliError("no command given".into())),
        other => Err(CliError(format!("unknown command `{other}`"))),
    }
}

fn next_value(args: &[String], i: &mut usize) -> Result<String, CliError> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| CliError(format!("{} needs a value", args[*i - 1])))
}

fn bad(flag: &str) -> CliError {
    CliError(format!("{flag} expects a number"))
}

fn read_file(path: Option<&String>) -> Result<String, CliError> {
    let path = path.ok_or_else(|| CliError("missing file argument".into()))?;
    Ok(std::fs::read_to_string(path)?)
}
