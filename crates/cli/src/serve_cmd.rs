//! `gs serve` and `gs client`: the CLI face of the planning daemon.
//! Argument handling lives in `main.rs`; everything here is a library
//! function so `tests/docs_links.rs` can replay the documented
//! walkthrough in-process.

use std::sync::Arc;

use gs_serve::engine::{Engine, EngineConfig};
use gs_serve::protocol::{Outcome, PlanParams, Request, RequestBody, Response};
use gs_serve::server::{serve_with_span_log, ServerHandle};
use gs_serve::Client;

use crate::CliError;

/// Knobs for `gs serve`, mirroring [`EngineConfig`] plus the bind
/// address.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7070` (port `0` = ephemeral).
    pub addr: String,
    /// Worker threads per exact solve.
    pub planner_threads: usize,
    /// Result-cache and plan-cache shards.
    pub cache_shards: usize,
    /// Admission budget before requests are shed.
    pub max_inflight: usize,
    /// `--span-log DIR`: enable span tracing and write one Chrome
    /// trace-event file per answered request into this directory.
    pub span_log: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        let cfg = EngineConfig::default();
        ServeOptions {
            addr: "127.0.0.1:7070".into(),
            planner_threads: cfg.planner_threads,
            cache_shards: cfg.cache_shards,
            max_inflight: cfg.max_inflight,
            span_log: None,
        }
    }
}

/// Starts the daemon and returns its handle plus the one-line banner
/// the binary prints. The caller decides whether to block
/// ([`ServerHandle::join`], what `gs serve` does) or keep the handle
/// (what tests do).
pub fn start_daemon(opts: &ServeOptions) -> Result<(ServerHandle, String), CliError> {
    let engine = Arc::new(Engine::new(EngineConfig {
        planner_threads: opts.planner_threads,
        cache_shards: opts.cache_shards,
        max_inflight: opts.max_inflight,
    }));
    if opts.span_log.is_some() {
        gs_scatter::obs::span::set_enabled(true);
    }
    let handle = serve_with_span_log(engine, &opts.addr, opts.span_log.clone())
        .map_err(|e| CliError(format!("cannot bind {}: {e}", opts.addr)))?;
    let banner = format!("serving on {} (protocol v{})\n", handle.addr(), gs_serve::PROTOCOL_VERSION);
    Ok((handle, banner))
}

/// One `gs client` operation (the request side of the protocol, minus
/// the envelope bookkeeping).
#[derive(Debug, Clone)]
pub enum ClientCmd {
    /// `gs client <addr> ping`
    Ping,
    /// `gs client <addr> plan <platform> --items N [--strategy S]`
    Plan {
        /// Platform-file text.
        platform: String,
        /// Items to scatter.
        items: u64,
        /// Strategy name.
        strategy: String,
    },
    /// `gs client <addr> simulate <platform> --items N [--strategy S]`
    Simulate {
        /// Platform-file text.
        platform: String,
        /// Items to scatter.
        items: u64,
        /// Strategy name.
        strategy: String,
    },
    /// `gs client <addr> calibrate <trace.json> [...]`
    Calibrate {
        /// One obs-JSON trace document per element.
        traces: Vec<String>,
    },
    /// `gs client <addr> metrics`
    Metrics,
    /// `gs client <addr> shutdown`
    Shutdown,
}

impl ClientCmd {
    fn into_request(self) -> Request {
        let body = match self {
            ClientCmd::Ping => RequestBody::Ping,
            ClientCmd::Plan { platform, items, strategy } => {
                RequestBody::Plan(PlanParams { platform, items, strategy })
            }
            ClientCmd::Simulate { platform, items, strategy } => {
                RequestBody::Simulate(PlanParams { platform, items, strategy })
            }
            ClientCmd::Calibrate { traces } => RequestBody::Calibrate { traces },
            ClientCmd::Metrics => RequestBody::Metrics,
            ClientCmd::Shutdown => RequestBody::Shutdown,
        };
        Request { id: "cli".into(), body }
    }
}

/// Connects to `addr`, performs one operation, and renders the response
/// for the terminal.
pub fn cmd_client(addr: &str, cmd: ClientCmd) -> Result<String, CliError> {
    let mut client =
        Client::connect(addr).map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
    let response = client.call(&cmd.into_request()).map_err(|e| CliError(e.to_string()))?;
    render_response(&response)
}

/// Sends one raw protocol line and returns the raw response line — the
/// `--json` escape hatch for scripts.
pub fn cmd_client_raw(addr: &str, line: &str) -> Result<String, CliError> {
    let mut client =
        Client::connect(addr).map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
    let mut out = client.call_line(line)?;
    out.push('\n');
    Ok(out)
}

/// Renders a protocol response as terminal output. Error responses
/// become [`CliError`]s (nonzero exit), with the daemon's code intact.
pub fn render_response(resp: &Response) -> Result<String, CliError> {
    Ok(match &resp.outcome {
        Outcome::Pong => "pong\n".to_string(),
        Outcome::Plan(p) => {
            let mut out = format!(
                "plan ({}): {} items, makespan {} s\n",
                cache_word(p.cache),
                p.counts.iter().sum::<u64>(),
                p.makespan,
            );
            out.push_str(&format!("counts: {:?}\n", p.counts));
            out.push_str(&format!("displs: {:?}\n", p.displs));
            out.push_str(&format!("order:  {:?}\n", p.order));
            out
        }
        Outcome::Simulate(s) => format!(
            "simulate ({}): predicted {} s, simulated {} s\n",
            cache_word(s.cache),
            s.predicted_makespan,
            s.simulated_makespan,
        ),
        Outcome::Calibrate { platform } => platform.clone(),
        Outcome::Metrics { prometheus } => prometheus.clone(),
        Outcome::ShuttingDown => "daemon shutting down\n".to_string(),
        Outcome::Error { code, message } => {
            return Err(CliError(format!("daemon error [{code:?}]: {message}")))
        }
    })
}

fn cache_word(c: gs_serve::protocol::CacheStatus) -> &'static str {
    match c {
        gs_serve::protocol::CacheStatus::Miss => "miss",
        gs_serve::protocol::CacheStatus::Hit => "hit",
        gs_serve::protocol::CacheStatus::Coalesced => "coalesced",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLATFORM: &str = "proc root beta=0 alpha=0.009\n\
                            proc fast beta=1e-5 alpha=0.004\n\
                            proc slow beta=2e-5 alpha=0.016\n";

    /// End-to-end through a real socket: daemon up, plan twice (miss
    /// then hit), ping, shut down over the wire.
    #[test]
    fn client_talks_to_daemon_over_tcp() {
        let (handle, banner) =
            start_daemon(&ServeOptions { addr: "127.0.0.1:0".into(), ..Default::default() })
                .unwrap();
        let addr = handle.addr().to_string();
        assert!(banner.contains(&addr), "{banner}");

        assert_eq!(cmd_client(&addr, ClientCmd::Ping).unwrap(), "pong\n");
        let plan = |id: &str| {
            let _ = id;
            cmd_client(
                &addr,
                ClientCmd::Plan {
                    platform: PLATFORM.into(),
                    items: 4000,
                    strategy: "exact".into(),
                },
            )
            .unwrap()
        };
        let first = plan("1");
        assert!(first.starts_with("plan (miss): 4000 items"), "{first}");
        let second = plan("2");
        assert!(second.starts_with("plan (hit): 4000 items"), "{second}");
        // Identical payload apart from the cache word.
        assert_eq!(first.replace("(miss)", "(hit)"), second);

        let raw = cmd_client_raw(&addr, "{\"v\": 1, \"id\": \"raw\", \"op\": \"ping\"}").unwrap();
        assert!(raw.contains("\"op\": \"pong\""), "{raw}");

        assert_eq!(cmd_client(&addr, ClientCmd::Shutdown).unwrap(), "daemon shutting down\n");
        handle.join();
    }

    #[test]
    fn daemon_errors_become_cli_errors() {
        let (handle, _) =
            start_daemon(&ServeOptions { addr: "127.0.0.1:0".into(), ..Default::default() })
                .unwrap();
        let addr = handle.addr().to_string();
        let e = cmd_client(
            &addr,
            ClientCmd::Plan { platform: "bogus".into(), items: 10, strategy: "exact".into() },
        )
        .unwrap_err();
        assert!(e.0.contains("PlanFailed"), "{e}");
        handle.shutdown();
        handle.join();
    }
}
