//! The `gs` subcommands, exposed as library functions so tests can drive
//! them without spawning processes. Each returns the text it would print.

use gs_gridsim::chart::{figure_rows, render_figure, summary_line};
use gs_gridsim::export::to_csv;
use gs_gridsim::sim::simulate_plan;
use gs_scatter::cost::Platform;
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::planner::{Plan, Planner, Strategy};
use gs_transform::{emit_plan_arrays, transform_source, CodegenOptions};

use crate::platform_file::{parse_platform, render_platform};
use crate::CliError;

/// Options shared by the planning-based subcommands.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Items to distribute.
    pub items: usize,
    /// Strategy name (`uniform`, `exact`, `exact-basic`, `heuristic`,
    /// `closed-form`).
    pub strategy: String,
    /// Ordering name (`desc`, `asc`, `as-is`, `cpu`).
    pub order: String,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            items: 0,
            strategy: "heuristic".into(),
            order: "desc".into(),
        }
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    Ok(match s {
        "uniform" => Strategy::Uniform,
        "exact" => Strategy::Exact,
        "exact-basic" => Strategy::ExactBasic,
        "heuristic" => Strategy::Heuristic,
        "closed-form" => Strategy::ClosedForm,
        other => {
            return Err(CliError(format!(
                "unknown strategy `{other}` (try uniform|exact|exact-basic|heuristic|closed-form)"
            )))
        }
    })
}

fn parse_order(s: &str) -> Result<OrderPolicy, CliError> {
    Ok(match s {
        "desc" => OrderPolicy::DescendingBandwidth,
        "asc" => OrderPolicy::AscendingBandwidth,
        "as-is" => OrderPolicy::AsIs,
        "cpu" => OrderPolicy::FastestCpuFirst,
        other => {
            return Err(CliError(format!(
                "unknown order `{other}` (try desc|asc|as-is|cpu)"
            )))
        }
    })
}

fn make_plan(platform: &Platform, opts: &PlanOptions) -> Result<Plan, CliError> {
    if opts.items == 0 {
        return Err(CliError("--items must be given (and positive)".into()));
    }
    Ok(Planner::new(platform.clone())
        .strategy(parse_strategy(&opts.strategy)?)
        .order_policy(parse_order(&opts.order)?)
        .plan(opts.items)?)
}

/// `gs plan`: prints the distribution and predicted schedule
/// (optionally as a C block with `emit_c`).
pub fn cmd_plan(platform_text: &str, opts: &PlanOptions, emit_c: bool) -> Result<String, CliError> {
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    if emit_c {
        return Ok(emit_plan_arrays(&plan, &CodegenOptions::default()));
    }
    let mut out = format!(
        "plan: {} items over {} processors ({} strategy, {} order)\n",
        opts.items,
        platform.len(),
        opts.strategy,
        opts.order
    );
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>12}\n",
        "processor", "count", "displ", "finish (s)"
    ));
    for (pos, &idx) in plan.order.iter().enumerate() {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>12.2}\n",
            platform.procs()[idx].name,
            plan.counts[idx],
            plan.displs[idx],
            plan.predicted.finish[pos],
        ));
    }
    out.push_str(&format!("predicted makespan: {:.3} s\n", plan.predicted_makespan));
    Ok(out)
}

/// `gs simulate`: runs the DES and renders a Figs.-2–4-style chart; when
/// `csv` is set, returns machine-readable CSV instead.
pub fn cmd_simulate(
    platform_text: &str,
    opts: &PlanOptions,
    width: usize,
    csv: bool,
) -> Result<String, CliError> {
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    let sim = simulate_plan(&platform, &plan, &[]);
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    let counts = plan.counts_in_order();
    if csv {
        return Ok(to_csv(&names, &counts, &sim.timeline));
    }
    let rows = figure_rows(&names, &counts, &sim.timeline);
    let mut out = render_figure(
        &format!("simulated scatter of {} items", opts.items),
        &rows,
        width,
    );
    out.push_str(&format!("{}\n", summary_line(&rows)));
    Ok(out)
}

/// `gs transform`: rewrites `MPI_Scatter` calls in `c_source` and
/// prepends the generated arrays.
pub fn cmd_transform(
    c_source: &str,
    platform_text: &str,
    opts: &PlanOptions,
) -> Result<String, CliError> {
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    let report = transform_source(c_source);
    if report.rewrites.is_empty() {
        return Err(CliError("no MPI_Scatter call sites found".into()));
    }
    let block = emit_plan_arrays(&plan, &CodegenOptions::default());
    Ok(format!("{block}\n{}", report.source))
}

/// `gs table1`: the paper's testbed in platform-file format.
pub fn cmd_table1() -> String {
    render_platform(&gs_scatter::paper::table1_platform())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLATFORM: &str = "proc root beta=0 alpha=0.01\nproc w1 beta=1e-4 alpha=0.004\nproc w2 beta=2e-4 alpha=0.016\nroot root\n";

    fn opts(items: usize) -> PlanOptions {
        PlanOptions { items, ..Default::default() }
    }

    #[test]
    fn plan_prints_counts() {
        let out = cmd_plan(PLATFORM, &opts(1000), false).unwrap();
        assert!(out.contains("predicted makespan"));
        assert!(out.contains("w1"));
        // Counts sum: extract column 2.
        let sum: usize = out
            .lines()
            .skip(2)
            .take(3)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(sum, 1000);
    }

    #[test]
    fn plan_emit_c() {
        let out = cmd_plan(PLATFORM, &opts(1000), true).unwrap();
        assert!(out.contains("static const int gs_counts[3]"));
    }

    #[test]
    fn simulate_renders_and_csvs() {
        let text = cmd_simulate(PLATFORM, &opts(500), 40, false).unwrap();
        assert!(text.contains('#'));
        assert!(text.contains("earliest finish"));
        let csv = cmd_simulate(PLATFORM, &opts(500), 40, true).unwrap();
        assert!(csv.starts_with("pos,name,data,"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn transform_combines_block_and_source() {
        let src = "MPI_Scatter(a, n/P, T, b, n/P, T, 0, MPI_COMM_WORLD);";
        let out = cmd_transform(src, PLATFORM, &opts(1000)).unwrap();
        assert!(out.contains("gs_counts[3]"));
        assert!(out.contains("MPI_Scatterv(a, gs_counts"));
    }

    #[test]
    fn transform_without_call_sites_errors() {
        assert!(cmd_transform("int main(){}", PLATFORM, &opts(10)).is_err());
    }

    #[test]
    fn bad_strategy_and_order_error() {
        let mut o = opts(10);
        o.strategy = "magic".into();
        assert!(cmd_plan(PLATFORM, &o, false).is_err());
        let mut o = opts(10);
        o.order = "zigzag".into();
        assert!(cmd_plan(PLATFORM, &o, false).is_err());
        assert!(cmd_plan(PLATFORM, &opts(0), false).is_err());
    }

    #[test]
    fn every_strategy_name_parses() {
        for s in ["uniform", "exact", "exact-basic", "heuristic", "closed-form"] {
            let mut o = opts(100);
            o.strategy = s.into();
            assert!(cmd_plan(PLATFORM, &o, false).is_ok(), "{s}");
        }
    }

    #[test]
    fn table1_output_reparses() {
        let text = cmd_table1();
        let plan = cmd_plan(&text, &opts(817_101), false).unwrap();
        assert!(plan.contains("dinadan"));
        assert!(plan.contains("leda"));
    }
}
