//! The `gs` subcommands, exposed as library functions so tests can drive
//! them without spawning processes. Each returns the text it would print.

use gs_gridsim::chart::{figure_rows, render_figure, summary_line};
use gs_gridsim::export::to_csv;
use gs_gridsim::fault::{simulate_plan_ft, FtScatterSim};
use gs_gridsim::gantt::{legend, render_gantt};
use gs_gridsim::sim::simulate_plan;
use gs_gridsim::{proportional_counts, simulate_star, synthetic_star};
use gs_minimpi::{
    executed_trace, executed_trace_ft, run_world, run_world_pooled, FtConfig, TimeModel,
    WorldConfig,
};
use gs_scatter::calibrate::{Calibration, DriftReport};
use gs_scatter::cost::{CostFn, Platform};
use gs_scatter::intern::NameInterner;
use gs_scatter::fault::{FaultPlan, RecoveryConfig};
use gs_scatter::obs::json::{self, metrics_to_json, trace_from_json, trace_to_json, Json};
use gs_scatter::obs::{span, Incident, Trace, TraceSummary};
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::planner::{Plan, Planner, Strategy};
use gs_transform::{emit_plan_arrays, transform_source, CodegenOptions};

use crate::platform_file::{parse_platform, render_platform};
use crate::CliError;

/// Options shared by the planning-based subcommands.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Items to distribute.
    pub items: usize,
    /// Strategy name (`uniform`, `exact`, `exact-basic`, `exact-dc`,
    /// `heuristic`, `closed-form`).
    pub strategy: String,
    /// Exact DP kernel override (`basic`, `optimized`, `dc`). When set,
    /// the plan uses the corresponding exact strategy regardless of
    /// `strategy` — shorthand for benchmarking the kernels against each
    /// other.
    pub kernel: Option<String>,
    /// Ordering name (`desc`, `asc`, `as-is`, `cpu`).
    pub order: String,
    /// Worker threads for the exact DP strategies (`0` = one per core).
    pub threads: usize,
    /// Upper-bound pruning for the `exact` strategy.
    pub prune: bool,
    /// Fault-injection spec (`docs/robustness.md` grammar), e.g.
    /// `"crash:w1@0.01,flaky:w2:1"`. `None` = fault-free.
    pub faults: Option<String>,
    /// Run faults in degraded (fault-oblivious) mode instead of the
    /// timeout/retry/re-plan recovery path.
    pub no_recovery: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            items: 0,
            strategy: "heuristic".into(),
            kernel: None,
            order: "desc".into(),
            threads: 1,
            prune: false,
            faults: None,
            no_recovery: false,
        }
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    Ok(match s {
        "uniform" => Strategy::Uniform,
        "exact" => Strategy::Exact,
        "exact-basic" => Strategy::ExactBasic,
        "exact-dc" => Strategy::ExactDc,
        "heuristic" => Strategy::Heuristic,
        "closed-form" => Strategy::ClosedForm,
        other => {
            return Err(CliError(format!(
                "unknown strategy `{other}` \
                 (try uniform|exact|exact-basic|exact-dc|heuristic|closed-form)"
            )))
        }
    })
}

fn parse_kernel(s: &str) -> Result<Strategy, CliError> {
    Ok(match s {
        "basic" => Strategy::ExactBasic,
        "optimized" => Strategy::Exact,
        "dc" => Strategy::ExactDc,
        other => {
            return Err(CliError(format!(
                "unknown kernel `{other}` (try basic|optimized|dc)"
            )))
        }
    })
}

fn parse_order(s: &str) -> Result<OrderPolicy, CliError> {
    Ok(match s {
        "desc" => OrderPolicy::DescendingBandwidth,
        "asc" => OrderPolicy::AscendingBandwidth,
        "as-is" => OrderPolicy::AsIs,
        "cpu" => OrderPolicy::FastestCpuFirst,
        other => {
            return Err(CliError(format!(
                "unknown order `{other}` (try desc|asc|as-is|cpu)"
            )))
        }
    })
}

fn make_plan(platform: &Platform, opts: &PlanOptions) -> Result<Plan, CliError> {
    if opts.items == 0 {
        return Err(CliError("--items must be given (and positive)".into()));
    }
    let strategy = match &opts.kernel {
        Some(k) => parse_kernel(k)?,
        None => parse_strategy(&opts.strategy)?,
    };
    Ok(Planner::new(platform.clone())
        .strategy(strategy)
        .order_policy(parse_order(&opts.order)?)
        .threads(opts.threads)
        .prune(opts.prune)
        .plan(opts.items)?)
}

/// Parses the `--faults` spec of `opts` against the plan's scatter
/// order: names and positions in the spec refer to processors *in the
/// order the root serves them* (root last), and `%` times are relative
/// to the fault-free predicted makespan.
fn parse_fault_plan(
    platform: &Platform,
    plan: &Plan,
    opts: &PlanOptions,
) -> Result<Option<FaultPlan>, CliError> {
    let Some(spec) = &opts.faults else { return Ok(None) };
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    let fp = FaultPlan::parse(spec, &names, plan.predicted_makespan)?;
    Ok(Some(fp))
}

/// Recovery configuration selected by `--no-recovery`.
fn recovery_of(opts: &PlanOptions) -> Option<RecoveryConfig> {
    if opts.no_recovery {
        None
    } else {
        Some(RecoveryConfig::default())
    }
}

/// One line per incident, for `gs simulate --faults` and `gs report`.
fn render_incidents(incidents: &[Incident]) -> String {
    let mut out = String::new();
    for i in incidents {
        out.push_str(&format!("  t={:<10.4} {:<7} {}\n", i.t, i.kind, i.info));
    }
    out
}

/// One-line rendering of a `PlanTiming` for the text reports.
fn render_plan_timing(t: &gs_scatter::obs::PlanTiming) -> String {
    let mut line = format!(
        "planning: {:.3} ms ({} strategy, {} thread{}",
        t.total_secs * 1e3,
        t.strategy,
        t.threads,
        if t.threads == 1 { "" } else { "s" },
    );
    if t.pruned {
        line.push_str(", pruned");
    }
    line.push(')');
    if t.cache_hits + t.cache_misses > 0 {
        line.push_str(&format!(
            " — tabulate {:.3} ms, solve {:.3} ms, cache {}/{} hits",
            t.tabulate_secs * 1e3,
            t.solve_secs * 1e3,
            t.cache_hits,
            t.cache_hits + t.cache_misses,
        ));
    }
    line.push('\n');
    line
}

/// `gs plan`: prints the distribution and predicted schedule
/// (optionally as a C block with `emit_c`).
pub fn cmd_plan(platform_text: &str, opts: &PlanOptions, emit_c: bool) -> Result<String, CliError> {
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    if emit_c {
        return Ok(emit_plan_arrays(&plan, &CodegenOptions::default()));
    }
    let how = match &opts.kernel {
        Some(k) => format!("{k} kernel"),
        None => format!("{} strategy", opts.strategy),
    };
    let mut out = format!(
        "plan: {} items over {} processors ({}, {} order)\n",
        opts.items,
        platform.len(),
        how,
        opts.order
    );
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>12}\n",
        "processor", "count", "displ", "finish (s)"
    ));
    for (pos, &idx) in plan.order.iter().enumerate() {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>12.2}\n",
            platform.procs()[idx].name,
            plan.counts[idx],
            plan.displs[idx],
            plan.predicted.finish[pos],
        ));
    }
    out.push_str(&format!("predicted makespan: {:.3} s\n", plan.predicted_makespan));
    out.push_str(&render_plan_timing(&plan.timing));
    if let Some(fp) = parse_fault_plan(&platform, &plan, opts)? {
        out.push_str(&render_fault_forecast(&platform, &plan, &fp, opts)?);
    }
    Ok(out)
}

/// The fault-injection section of `gs plan --faults`: the degraded
/// (fault-oblivious) and recovered makespans next to the fault-free
/// prediction, so the cost of a failure — and of surviving it — is
/// visible before anything runs.
fn render_fault_forecast(
    platform: &Platform,
    plan: &Plan,
    faults: &FaultPlan,
    opts: &PlanOptions,
) -> Result<String, CliError> {
    let spec = opts.faults.as_deref().unwrap_or_default();
    let mut out = format!("fault injection: {spec}\n");
    let degraded = simulate_plan_ft(platform, plan, faults, None)?;
    out.push_str(&format!(
        "  degraded : makespan {:.3} s, {} of {} items lost\n",
        degraded.makespan,
        degraded.lost_items,
        degraded.lost_items + degraded.computed_items,
    ));
    if !opts.no_recovery {
        let rc = RecoveryConfig::default();
        let recovered = simulate_plan_ft(platform, plan, faults, Some(&rc))?;
        let summary = |k| {
            recovered.incidents.iter().filter(|i| i.kind == k).count()
        };
        out.push_str(&format!(
            "  recovered: makespan {:.3} s, all items computed \
             ({} fault(s), {} retry(s), {} replan(s))\n",
            recovered.makespan,
            summary(gs_scatter::obs::IncidentKind::Fault),
            summary(gs_scatter::obs::IncidentKind::Retry),
            summary(gs_scatter::obs::IncidentKind::Replan),
        ));
        out.push_str(&format!(
            "  recovery overhead over prediction: {:.3} s ({:+.1}%)\n",
            recovered.makespan - plan.predicted_makespan,
            (recovered.makespan / plan.predicted_makespan - 1.0) * 100.0,
        ));
    }
    Ok(out)
}

/// `gs simulate`: runs the DES and renders a Figs.-2–4-style chart; when
/// `csv` is set, returns machine-readable CSV instead.
pub fn cmd_simulate(
    platform_text: &str,
    opts: &PlanOptions,
    width: usize,
    csv: bool,
) -> Result<String, CliError> {
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    if let Some(fp) = parse_fault_plan(&platform, &plan, opts)? {
        let rc = recovery_of(opts);
        let ft = simulate_plan_ft(&platform, &plan, &fp, rc.as_ref())?;
        return Ok(render_ft_sim(&ft, &names, opts, width, csv));
    }
    let sim = simulate_plan(&platform, &plan, &[]);
    let counts = plan.counts_in_order();
    if csv {
        return Ok(to_csv(&names, &counts, &sim.timeline));
    }
    let rows = figure_rows(&names, &counts, &sim.timeline);
    let mut out = render_figure(
        &format!("simulated scatter of {} items", opts.items),
        &rows,
        width,
    );
    out.push_str(&format!("{}\n", summary_line(&rows)));
    Ok(out)
}

/// Renders a fault-injected simulation: the figure shows the items each
/// rank *ended up computing* (after any re-plan), and the incident log
/// follows the chart.
fn render_ft_sim(
    ft: &FtScatterSim,
    names: &[&str],
    opts: &PlanOptions,
    width: usize,
    csv: bool,
) -> String {
    let counts: Vec<usize> = ft
        .assignments
        .iter()
        .map(|rs| rs.iter().map(|&(lo, hi)| (hi - lo) as usize).sum())
        .collect();
    if csv {
        return to_csv(names, &counts, &ft.timeline);
    }
    let mode = if ft.recovered { "recovered" } else { "degraded" };
    let rows = figure_rows(names, &counts, &ft.timeline);
    let mut out = render_figure(
        &format!("simulated scatter of {} items ({mode})", opts.items),
        &rows,
        width,
    );
    out.push_str(&format!("{}\n", summary_line(&rows)));
    if ft.lost_items > 0 {
        out.push_str(&format!("lost: {} items never computed\n", ft.lost_items));
    }
    if !ft.incidents.is_empty() {
        out.push_str("incidents:\n");
        out.push_str(&render_incidents(&ft.incidents));
    }
    out
}

/// `gs transform`: rewrites `MPI_Scatter` calls in `c_source` and
/// prepends the generated arrays.
pub fn cmd_transform(
    c_source: &str,
    platform_text: &str,
    opts: &PlanOptions,
) -> Result<String, CliError> {
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    let report = transform_source(c_source);
    if report.rewrites.is_empty() {
        return Err(CliError("no MPI_Scatter call sites found".into()));
    }
    let block = emit_plan_arrays(&plan, &CodegenOptions::default());
    Ok(format!("{block}\n{}", report.source))
}

/// `gs table1`: the paper's testbed in platform-file format.
pub fn cmd_table1() -> String {
    render_platform(&gs_scatter::paper::table1_platform())
}

/// `gs trace`: plans, then emits the schedule of one of the three
/// execution paths as schema-versioned JSON (`docs/observability.md`).
///
/// * `predicted` — the planner's analytic Eq. (1) timeline;
/// * `simulated` — the gs-gridsim discrete-event run;
/// * `executed` — an actual gs-minimpi run (threads + virtual clocks),
///   with ranks renumbered into scatter order so a rank-ordered
///   `scatterv` realizes the planned order.
pub fn cmd_trace(
    platform_text: &str,
    opts: &PlanOptions,
    source: &str,
    item_bytes: usize,
) -> Result<String, CliError> {
    if item_bytes == 0 {
        return Err(CliError("--item-bytes must be positive".into()));
    }
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    let counts = plan.counts_in_order();
    let fp = parse_fault_plan(&platform, &plan, opts)?;
    if fp.is_some() && source == "predicted" {
        return Err(CliError(
            "--faults applies to simulated|executed traces; the predicted \
             trace is the fault-free Eq. (1) baseline"
                .into(),
        ));
    }
    let mut trace = match (source, fp) {
        ("predicted", _) => plan.predicted_trace(&platform, item_bytes as u64),
        ("simulated", None) => {
            simulate_plan(&platform, &plan, &[]).trace(&names, &counts, item_bytes as u64)
        }
        ("simulated", Some(fp)) => {
            simulate_plan_ft(&platform, &plan, &fp, recovery_of(opts).as_ref())?
                .trace(&names, item_bytes as u64)
        }
        ("executed", None) => run_executed(&platform, &plan, &names, &counts, item_bytes),
        ("executed", Some(fp)) => {
            run_executed_ft(&platform, &plan, &names, &counts, item_bytes, fp, opts)
        }
        (other, _) => {
            return Err(CliError(format!(
                "unknown trace source `{other}` (try predicted|simulated|executed)"
            )))
        }
    };
    // All three sources stem from the same planning call: attach its
    // timing so downstream reports can show planning cost.
    trace.plan_timing = Some(plan.timing.clone());
    Ok(trace_to_json(&trace))
}

/// Runs the plan on the gs-minimpi runtime and merges the per-rank
/// records into an executed trace. World rank `r` plays the processor at
/// scatter position `r` (root last), so the runtime's rank-ordered
/// single-port scatter reproduces the planned order.
fn run_executed(
    platform: &Platform,
    plan: &Plan,
    names: &[&str],
    counts: &[usize],
    item_bytes: usize,
) -> Trace {
    let model = TimeModel::from_platform(platform, item_bytes).reordered(&plan.order);
    let p = platform.len();
    let root = p - 1;
    let counts_bytes: Vec<usize> = counts.iter().map(|c| c * item_bytes).collect();
    let total_bytes: usize = counts_bytes.iter().sum();
    let records = run_world(p, WorldConfig::with_time(model), move |c| {
        c.enable_tracing();
        let buf = vec![0u8; total_bytes];
        let mine = c.scatterv(
            root,
            if c.rank() == root { Some(&buf) } else { None },
            &counts_bytes,
        );
        c.model_compute(mine.len() / item_bytes);
        c.take_trace()
    });
    executed_trace(names, item_bytes as u64, &records)
}

/// Runs the plan on the fault-tolerant gs-minimpi path
/// ([`gs_minimpi::Comm::scatterv_ft`]): the root drives the same fault
/// oracle as the simulator, so the executed trace agrees with
/// `gs trace --source simulated --faults ...` bit for bit.
fn run_executed_ft(
    platform: &Platform,
    plan: &Plan,
    names: &[&str],
    counts: &[usize],
    item_bytes: usize,
    faults: FaultPlan,
    opts: &PlanOptions,
) -> Trace {
    let p = platform.len();
    let config = FtConfig {
        faults,
        recovery: recovery_of(opts),
        procs: plan.order.iter().map(|&i| platform.procs()[i].clone()).collect(),
        item_bytes: item_bytes as u64,
    };
    let recovered = config.recovery.is_some();
    let counts = counts.to_vec();
    let root = p - 1;
    let total: usize = counts.iter().sum();
    let out = run_world(p, WorldConfig::default(), move |c| {
        c.enable_tracing();
        let buf = vec![0u64; total];
        let mine = c.scatterv_ft(
            &config,
            if c.rank() == root { Some(&buf) } else { None },
            &counts,
        );
        c.model_compute_ft(&config, mine.len());
        (c.take_trace(), c.take_incidents())
    });
    let records: Vec<_> = out.iter().map(|(r, _)| r.clone()).collect();
    let incidents = out[root].1.clone();
    executed_trace_ft(names, item_bytes as u64, &records, incidents, recovered)
}

/// `gs report`: ingests 1–3 exported JSON traces, validates them, and
/// renders for each a summary table plus a Fig.-1-style Gantt chart;
/// with several traces it appends a per-processor comparison (the
/// predicted-vs-simulated-vs-executed diff), aligned by processor name
/// and occurrence (platforms may repeat names).
pub fn cmd_report(trace_texts: &[String], width: usize) -> Result<String, CliError> {
    if trace_texts.is_empty() {
        return Err(CliError("report needs at least one trace file".into()));
    }
    if trace_texts.len() > 3 {
        return Err(CliError("report compares at most three traces".into()));
    }
    let mut traces = Vec::new();
    for (i, text) in trace_texts.iter().enumerate() {
        let trace = trace_from_json(text)
            .map_err(|e| CliError(format!("trace {}: {e}", i + 1)))?;
        trace
            .validate()
            .map_err(|e| CliError(format!("trace {}: {e}", i + 1)))?;
        traces.push(trace);
    }
    let mut out = String::new();
    for trace in &traces {
        let summary = TraceSummary::from_trace(trace);
        out.push_str(&summary.render());
        if !trace.incidents.is_empty() {
            out.push_str(&render_incidents(&trace.incidents));
        }
        if let Some(timing) = &trace.plan_timing {
            out.push_str(&render_plan_timing(timing));
        }
        let names: Vec<&str> = trace.names.iter().map(String::as_str).collect();
        out.push_str(&render_gantt(&names, &trace.to_timeline(), width));
        out.push_str(&legend());
        out.push('\n');
    }
    if traces.len() > 1 {
        out.push_str(&render_comparison(&traces));
    }
    Ok(out)
}

/// `gs calibrate`: least-squares-fits per-processor affine cost
/// parameters from one or more executed traces and prints them in
/// platform-file format (preceded by `#` fit-quality notes), so the
/// output pipes straight back into `gs plan`.
pub fn cmd_calibrate(trace_texts: &[String]) -> Result<String, CliError> {
    if trace_texts.is_empty() {
        return Err(CliError("calibrate needs at least one trace file".into()));
    }
    let mut traces = Vec::new();
    for (i, text) in trace_texts.iter().enumerate() {
        traces
            .push(trace_from_json(text).map_err(|e| CliError(format!("trace {}: {e}", i + 1)))?);
    }
    let cal = Calibration::from_traces(&traces).map_err(|e| CliError(e.to_string()))?;
    let platform = cal.platform().map_err(|e| CliError(e.to_string()))?;
    let mut out = cal.render_notes();
    out.push_str(&render_platform(&platform));
    Ok(out)
}

/// `gs metrics`: plans and runs a small workload — the DES simulation
/// plus a gs-minimpi execution, or the fault-tolerant simulator when
/// `--faults` is given — then dumps the process-global metrics registry
/// in Prometheus text exposition format.
pub fn cmd_metrics(
    platform_text: &str,
    opts: &PlanOptions,
    item_bytes: usize,
) -> Result<String, CliError> {
    run_metrics_workload(platform_text, opts, item_bytes)?;
    Ok(gs_scatter::metrics::Registry::global().snapshot().to_prometheus())
}

/// `gs metrics --json`: the same workload as [`cmd_metrics`], dumped as
/// the machine-readable metrics object of the trace schema
/// ([`metrics_to_json`]) instead of Prometheus text exposition.
pub fn cmd_metrics_json(
    platform_text: &str,
    opts: &PlanOptions,
    item_bytes: usize,
) -> Result<String, CliError> {
    run_metrics_workload(platform_text, opts, item_bytes)?;
    let mut out = metrics_to_json(&gs_scatter::metrics::Registry::global().snapshot());
    out.push('\n');
    Ok(out)
}

/// Plans and runs the small workload both metrics front-ends report on.
fn run_metrics_workload(
    platform_text: &str,
    opts: &PlanOptions,
    item_bytes: usize,
) -> Result<(), CliError> {
    if item_bytes == 0 {
        return Err(CliError("--item-bytes must be positive".into()));
    }
    let platform = parse_platform(platform_text)?;
    let plan = make_plan(&platform, opts)?;
    let names: Vec<&str> = plan
        .order
        .iter()
        .map(|&i| platform.procs()[i].name.as_str())
        .collect();
    let counts = plan.counts_in_order();
    match parse_fault_plan(&platform, &plan, opts)? {
        Some(fp) => {
            simulate_plan_ft(&platform, &plan, &fp, recovery_of(opts).as_ref())?;
        }
        None => {
            simulate_plan(&platform, &plan, &[]);
            run_executed(&platform, &plan, &names, &counts, item_bytes);
        }
    }
    Ok(())
}

/// Options for `gs sim` (the synthetic big-star capacity command).
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Number of simulated ranks (root included, scheduled last).
    pub ranks: usize,
    /// Data items scattered over the star (`0` = ten per rank).
    pub items: usize,
    /// `Some(threads)`: after simulating, execute the same plan on the
    /// pooled gs-minimpi runtime with this many workers (`0` = one per
    /// core) and check the virtual clocks against the simulation.
    pub pool: Option<usize>,
    /// Suppress the wall-clock throughput line so the output is fully
    /// deterministic (CI gates and the docs/simulation.md walkthrough).
    pub smoke: bool,
    /// Print the run as observability-JSON (interned placeholder names)
    /// instead of the summary lines. Capped at 10 000 ranks.
    pub emit_trace: bool,
}

/// Largest world `--pool` will execute: beyond this, per-rank channels
/// and result slots stop being "a few hundred MB" (docs/simulation.md
/// documents the capacity ladder: simulate at 10⁶, execute at 10⁴–10⁵).
const SIM_POOL_MAX_RANKS: usize = 100_000;

/// Largest world `--emit-trace` will serialize (4 events/rank of JSON).
const SIM_TRACE_MAX_RANKS: usize = 10_000;

/// `gs sim`: simulates a scatter + compute phase on the deterministic
/// synthetic heterogeneous star (`docs/simulation.md`) at `--ranks`
/// scale, on the calendar-queue fast path. With `--pool T` the same
/// plan is then *executed* on the pooled gs-minimpi runtime and the
/// per-rank virtual clocks are compared bit-for-bit against the
/// simulated finish times.
pub fn cmd_sim(opts: &SimOptions) -> Result<String, CliError> {
    if opts.ranks == 0 {
        return Err(CliError("sim needs --ranks N (at least 1)".into()));
    }
    if opts.ranks > 4_000_000 {
        return Err(CliError("sim caps at 4 000 000 ranks".into()));
    }
    if opts.emit_trace && opts.ranks > SIM_TRACE_MAX_RANKS {
        return Err(CliError(format!(
            "--emit-trace caps at {SIM_TRACE_MAX_RANKS} ranks (4 events per rank of JSON)"
        )));
    }
    let items = if opts.items == 0 { opts.ranks.saturating_mul(10) as u64 } else {
        opts.items as u64
    };
    let (beta, alpha) = synthetic_star(opts.ranks);
    let counts = proportional_counts(&alpha, items);
    let comm: Vec<f64> = beta.iter().zip(&counts).map(|(b, &c)| b * c as f64).collect();
    let work: Vec<f64> = alpha.iter().zip(&counts).map(|(a, &c)| a * c as f64).collect();

    let started = std::time::Instant::now();
    let sim = simulate_star(&comm, &work, opts.emit_trace);
    let wall = started.elapsed().as_secs_f64();

    if opts.emit_trace {
        // Big-sim runs never materialise name strings; the trace carries
        // the interner's placeholder form (`#<id>`). `gs report` resolves
        // them against sibling traces (see `render_comparison`).
        let names: Vec<String> =
            (0..opts.ranks).map(|i| NameInterner::placeholder(i as u32)).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let counts_usize: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
        let trace = sim.into_scatter_sim().trace(&name_refs, &counts_usize, 1);
        return Ok(trace_to_json(&trace));
    }

    let mut out = format!("sim: ranks={} items={items} engine=calendar\n", opts.ranks);
    out.push_str(&format!(
        "sim: events={} queue-peak={} makespan={:.6}s\n",
        sim.events_processed, sim.queue_peak, sim.makespan
    ));
    if !opts.smoke {
        out.push_str(&format!(
            "sim: wall={:.3}s events/sec={:.0}\n",
            wall,
            sim.events_processed as f64 / wall.max(1e-9)
        ));
    }

    if let Some(requested) = opts.pool {
        if opts.ranks > SIM_POOL_MAX_RANKS {
            return Err(CliError(format!(
                "--pool executes at most {SIM_POOL_MAX_RANKS} ranks; simulate-only above that"
            )));
        }
        let threads = if requested == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            requested
        }
        .min(opts.ranks);
        // Scatter u8 payloads so one item is one byte: the pooled
        // runtime's per-byte link costs are then exactly the per-item
        // `beta` slopes and the clocks reproduce the simulation bit for
        // bit.
        let model = TimeModel {
            link: beta.iter().map(|&b| CostFn::Linear { slope: b }).collect(),
            compute: alpha.iter().map(|&a| CostFn::Linear { slope: a }).collect(),
        };
        let counts_usize: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
        let root = opts.ranks - 1;
        let data: Vec<u8> = vec![0u8; items as usize];
        let clocks = run_world_pooled(
            opts.ranks,
            threads,
            root,
            WorldConfig::with_time(model),
            |comm| {
                let sendbuf = if comm.rank() == root { Some(&data[..]) } else { None };
                let mine = comm.scatterv(root, sendbuf, &counts_usize);
                comm.model_compute(mine.len());
                comm.now()
            },
        );
        let executed_makespan = clocks.iter().fold(0.0f64, |m, &c| m.max(c));
        let identical = clocks.len() == sim.timeline.finish.len()
            && clocks
                .iter()
                .zip(&sim.timeline.finish)
                .all(|(c, f)| c.to_bits() == f.to_bits());
        out.push_str(&format!(
            "pool: threads={threads} ranks={} executed-makespan={:.6}s identical={identical}\n",
            opts.ranks, executed_makespan
        ));
    }
    Ok(out)
}

/// Runs `f` with span tracing enabled and returns its result paired
/// with the spans it recorded, serialized as Chrome trace-event JSON
/// ([`span::chrome_trace_json`]). Tracing is reset first so leftovers
/// from earlier work in the process do not pollute the export, and
/// disabled again afterwards (off is the normative default,
/// docs/observability.md).
fn with_spans<T>(f: impl FnOnce() -> Result<T, CliError>) -> Result<(T, String), CliError> {
    span::set_enabled(true);
    span::reset();
    let result = f();
    let spans = span::drain();
    span::set_enabled(false);
    Ok((result?, span::chrome_trace_json(&spans)))
}

/// `gs trace --spans FILE`: [`cmd_trace`] with span tracing on. Returns
/// `(trace json, spans json)`; the caller writes the second to `FILE`.
pub fn cmd_trace_spanned(
    platform_text: &str,
    opts: &PlanOptions,
    source: &str,
    item_bytes: usize,
) -> Result<(String, String), CliError> {
    with_spans(|| cmd_trace(platform_text, opts, source, item_bytes))
}

/// `gs sim --spans FILE`: [`cmd_sim`] with span tracing on. Returns
/// `(sim output, spans json)`; the caller writes the second to `FILE`.
pub fn cmd_sim_spanned(opts: &SimOptions) -> Result<(String, String), CliError> {
    with_spans(|| cmd_sim(opts))
}

/// Most rows `gs report --spans` prints (the vocabulary of span names
/// is small and fixed, so this is rarely reached).
const SPAN_REPORT_TOP: usize = 20;

/// `gs report --spans FILE`: reads a Chrome trace-event file exported
/// by `--spans`/`--span-log` and prints a self-time summary — one row
/// per `(category, name)` pair, ranked by total self time (a span's
/// duration minus its children's, clamped at zero: concurrent children
/// may together outlast their parent).
pub fn cmd_report_spans(spans_text: &str) -> Result<String, CliError> {
    let doc = json::parse(spans_text).map_err(|e| CliError(format!("spans: {e}")))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| CliError("spans: missing `traceEvents` array".into()))?;
    // Keep the duration events; metadata rows carry no time.
    struct Ev<'a> {
        cat: &'a str,
        name: &'a str,
        dur: f64,
        id: Option<&'a str>,
        parent: Option<&'a str>,
    }
    let mut evs = Vec::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let (Some(name), Some(dur)) =
            (e.get("name").and_then(Json::as_str), e.get("dur").and_then(Json::as_f64))
        else {
            return Err(CliError("spans: X event lacks name/dur".into()));
        };
        let args = e.get("args");
        evs.push(Ev {
            cat: e.get("cat").and_then(Json::as_str).unwrap_or(""),
            name,
            dur,
            id: args.and_then(|a| a.get("id")).and_then(Json::as_str),
            parent: args.and_then(|a| a.get("parent")).and_then(Json::as_str),
        });
    }
    // Self time: duration minus the children's durations. A parent id
    // that is absent from the file (a worker span whose coordinator
    // landed elsewhere) leaves the child counted as a root.
    let by_id: std::collections::HashMap<&str, usize> = evs
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.id.map(|id| (id, i)))
        .collect();
    let mut self_us: Vec<f64> = evs.iter().map(|e| e.dur).collect();
    for e in &evs {
        if let Some(pi) = e.parent.filter(|p| *p != "0").and_then(|p| by_id.get(p)) {
            self_us[*pi] -= e.dur;
        }
    }
    let mut groups: std::collections::BTreeMap<(&str, &str), (usize, f64, f64)> =
        std::collections::BTreeMap::new();
    for (e, &s) in evs.iter().zip(&self_us) {
        let g = groups.entry((e.cat, e.name)).or_insert((0, 0.0, 0.0));
        g.0 += 1;
        g.1 += e.dur;
        g.2 += s.max(0.0);
    }
    let mut rows: Vec<(&str, &str, usize, f64, f64)> =
        groups.iter().map(|(&(c, n), &(k, t, s))| (c, n, k, t, s)).collect();
    rows.sort_by(|a, b| b.4.total_cmp(&a.4).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));

    let mut out = format!("span summary: {} spans, {} names\n", evs.len(), rows.len());
    let name_w =
        rows.iter().map(|r| r.1.len()).chain(std::iter::once("name".len())).max().unwrap_or(4);
    out.push_str(&format!(
        "{:<5} {:<name_w$} {:>7} {:>12} {:>12}\n",
        "cat", "name", "spans", "total(ms)", "self(ms)"
    ));
    for (cat, name, count, total, selft) in rows.iter().take(SPAN_REPORT_TOP) {
        out.push_str(&format!(
            "{cat:<5} {name:<name_w$} {count:>7} {:>12.3} {:>12.3}\n",
            total / 1000.0,
            selft / 1000.0
        ));
    }
    if rows.len() > SPAN_REPORT_TOP {
        out.push_str(&format!("... {} more names\n", rows.len() - SPAN_REPORT_TOP));
    }
    Ok(out)
}

/// `gs report --drift-threshold`: the regular report, followed by a
/// [`DriftReport`] of every trace against the platform file the run
/// *assumed*. The boolean is the gate — `false` (a flagged rank, or
/// makespans further apart than the threshold) makes the CLI exit
/// nonzero, so CI can watch executed runs for cost-model drift.
pub fn cmd_report_drift(
    trace_texts: &[String],
    width: usize,
    platform_text: &str,
    threshold: f64,
) -> Result<(String, bool), CliError> {
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(CliError("--drift-threshold expects a non-negative number".into()));
    }
    let platform = parse_platform(platform_text)?;
    let mut out = cmd_report(trace_texts, width)?;
    let mut ok = true;
    for (i, text) in trace_texts.iter().enumerate() {
        let trace =
            trace_from_json(text).map_err(|e| CliError(format!("trace {}: {e}", i + 1)))?;
        let report = DriftReport::from_trace(&platform, &trace, threshold)
            .map_err(|e| CliError(format!("trace {}: {e}", i + 1)))?;
        out.push_str(&report.render());
        ok &= report.ok();
    }
    Ok((out, ok))
}

/// Per-processor finish times side by side, plus makespans and the
/// largest deviation of each trace from the first one.
///
/// Rows align by *(name, occurrence)*: platforms like the paper's
/// Table 1 list several identically-named nodes (eight `leda` CPUs), so
/// the k-th `leda` of one trace pairs with the k-th `leda` of the
/// others, whatever their rank numbers are.
fn render_comparison(traces: &[Trace]) -> String {
    let summaries: Vec<TraceSummary> = traces.iter().map(TraceSummary::from_trace).collect();
    // Big-sim traces carry interned placeholder names (`#42`,
    // docs/simulation.md): the simulator never materialised the name
    // strings. A sibling trace of the same run usually did — so when a
    // name parses as a placeholder, borrow the first real name any other
    // trace gives the same rank position. Rows then key (and pair) on
    // real processor names instead of raw ids.
    let resolved: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            s.ranks
                .iter()
                .enumerate()
                .map(|(ri, r)| {
                    if NameInterner::parse_placeholder(&r.name).is_none() {
                        return r.name.clone();
                    }
                    summaries
                        .iter()
                        .filter_map(|o| o.ranks.get(ri))
                        .find(|o| NameInterner::parse_placeholder(&o.name).is_none())
                        .map(|o| o.name.clone())
                        .unwrap_or_else(|| r.name.clone())
                })
                .collect()
        })
        .collect();
    // Per summary: (name, occurrence) → finish.
    let keyed: Vec<Vec<((&str, usize), f64)>> = summaries
        .iter()
        .zip(&resolved)
        .map(|(s, names)| {
            let mut seen = std::collections::HashMap::new();
            s.ranks
                .iter()
                .zip(names)
                .map(|(r, name)| {
                    let k = seen.entry(name.as_str()).or_insert(0usize);
                    let key = (name.as_str(), *k);
                    *k += 1;
                    (key, r.finish)
                })
                .collect()
        })
        .collect();
    let mut rows: Vec<(&str, usize)> = keyed[0].iter().map(|(k, _)| *k).collect();
    for k in &keyed[1..] {
        for (key, _) in k {
            if !rows.contains(key) {
                rows.push(*key);
            }
        }
    }
    let lookup = |ki: usize, key: &(&str, usize)| {
        keyed[ki].iter().find(|(k, _)| k == key).map(|(_, f)| *f)
    };

    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(9).max(9);
    // Column headers: the trace label (`degraded`, `recovered`) when one
    // is set, else the source — so a predicted/degraded/recovered diff
    // reads as exactly that.
    let col = |s: &TraceSummary| s.label.as_deref().unwrap_or(s.source.as_str()).to_string();
    let mut out = String::from("finish-time comparison (s):\n");
    out.push_str(&format!("{:<name_w$}", "processor"));
    for s in &summaries {
        out.push_str(&format!(" {:>12}", col(s)));
    }
    out.push('\n');
    for key in &rows {
        out.push_str(&format!("{:<name_w$}", key.0));
        for ki in 0..summaries.len() {
            match lookup(ki, key) {
                Some(f) => out.push_str(&format!(" {f:>12.4}")),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<name_w$}", "makespan"));
    for s in &summaries {
        out.push_str(&format!(" {:>12.4}", s.makespan));
    }
    out.push('\n');
    for (ki, s) in summaries.iter().enumerate().skip(1) {
        let max_dev = rows
            .iter()
            .filter_map(|key| Some((lookup(ki, key)? - lookup(0, key)?).abs()))
            .fold(0.0f64, f64::max);
        out.push_str(&format!(
            "max |finish deviation| of {} vs {}: {:.6} s\n",
            col(s),
            col(&summaries[0]),
            max_dev
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLATFORM: &str = "proc root beta=0 alpha=0.01\nproc w1 beta=1e-4 alpha=0.004\nproc w2 beta=2e-4 alpha=0.016\nroot root\n";

    fn opts(items: usize) -> PlanOptions {
        PlanOptions { items, ..Default::default() }
    }

    fn sim_opts(ranks: usize) -> SimOptions {
        SimOptions { ranks, smoke: true, ..Default::default() }
    }

    #[test]
    fn sim_smoke_output_is_deterministic() {
        let o = sim_opts(1000);
        let a = cmd_sim(&o).unwrap();
        let b = cmd_sim(&o).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("sim: ranks=1000 items=10000 engine=calendar"), "{a}");
        assert!(a.contains("sim: events=4000"), "{a}");
        assert!(!a.contains("wall="), "smoke output must omit wall-clock: {a}");
        let timed = cmd_sim(&SimOptions { smoke: false, ..sim_opts(1000) }).unwrap();
        assert!(timed.contains("events/sec="), "{timed}");
    }

    #[test]
    fn sim_pooled_clocks_match_the_simulator_bit_for_bit() {
        for threads in [1usize, 4] {
            let o = SimOptions { items: 500, pool: Some(threads), ..sim_opts(50) };
            let out = cmd_sim(&o).unwrap();
            assert!(out.contains(&format!("pool: threads={threads} ranks=50")), "{out}");
            assert!(out.contains("identical=true"), "{out}");
        }
    }

    #[test]
    fn sim_rejects_bad_sizes() {
        assert!(cmd_sim(&sim_opts(0)).is_err());
        assert!(cmd_sim(&sim_opts(5_000_000)).is_err());
        let o = SimOptions { emit_trace: true, ..sim_opts(20_000) };
        assert!(cmd_sim(&o).is_err());
        let o = SimOptions { pool: Some(2), ..sim_opts(200_000) };
        assert!(cmd_sim(&o).is_err());
    }

    #[test]
    fn sim_trace_round_trips_and_report_resolves_placeholders() {
        let o = SimOptions { items: 30, emit_trace: true, ..sim_opts(3) };
        let json = cmd_sim(&o).unwrap();
        let trace = trace_from_json(&json).unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.names, vec!["#0", "#1", "#2"]);
        // Paired with a named trace of the same width, the three-way
        // diff swaps the placeholders for the sibling's real names.
        let named = cmd_trace(PLATFORM, &opts(30), "simulated", 1).unwrap();
        let report = cmd_report(&[json, named], 40).unwrap();
        let cmp = report
            .split("finish-time comparison")
            .nth(1)
            .expect("comparison section");
        assert!(!cmp.contains("#0"), "placeholders must be resolved: {cmp}");
        assert!(cmp.contains("w1"), "{cmp}");
    }

    /// Re-serializes a trace with the given processor names (the knob
    /// the placeholder edge-case tests turn).
    fn renamed(json: &str, names: &[&str]) -> String {
        let mut t = trace_from_json(json).unwrap();
        t.names = names.iter().map(|s| s.to_string()).collect();
        trace_to_json(&t)
    }

    /// The comparison section of a two-trace report.
    fn comparison_of(a: String, b: String) -> String {
        let report = cmd_report(&[a, b], 40).unwrap();
        report.split("finish-time comparison").nth(1).expect("comparison section").to_string()
    }

    #[test]
    fn report_keeps_placeholders_no_sibling_can_resolve() {
        // Every trace carries placeholders at position 0: there is no
        // donor name, so `#0` (and the sibling's `#5`) print verbatim
        // as distinct rows, while positions 1..2 resolve normally.
        let base = cmd_trace(PLATFORM, &opts(30), "simulated", 1).unwrap();
        let cmp = comparison_of(
            renamed(&base, &["#0", "#1", "#2"]),
            renamed(&base, &["#5", "w2", "root"]),
        );
        assert!(cmp.contains("#0"), "unresolvable placeholder must survive: {cmp}");
        assert!(cmp.contains("#5"), "{cmp}");
        assert!(!cmp.contains("#1"), "positions with a real donor must resolve: {cmp}");
        assert!(cmp.contains("w2"), "{cmp}");
    }

    #[test]
    fn report_does_not_rewrite_names_that_only_look_like_placeholders() {
        // `#12x` fails `NameInterner::parse_placeholder` (trailing
        // non-digit): it is a real — if eccentric — processor name and
        // must not be swapped for the sibling's name at that position.
        assert_eq!(NameInterner::parse_placeholder("#12x"), None);
        assert_eq!(NameInterner::parse_placeholder("w1"), None);
        assert_eq!(NameInterner::parse_placeholder(""), None);
        assert_eq!(NameInterner::parse_placeholder("#"), None);
        let base = cmd_trace(PLATFORM, &opts(30), "simulated", 1).unwrap();
        let cmp = comparison_of(
            renamed(&base, &["#12x", "w2", "root"]),
            renamed(&base, &["w1", "w2", "root"]),
        );
        assert!(cmp.contains("#12x"), "{cmp}");
        assert!(cmp.contains("w1"), "{cmp}");
    }

    #[test]
    fn report_resolves_a_literal_placeholder_name_by_position_not_id() {
        // The donor trace names its rank 0 `#7`: resolution is by rank
        // *position*, so the placeholder `#0` borrows nothing from the
        // id 7 — it keeps looking and finds nothing real at position 0.
        let base = cmd_trace(PLATFORM, &opts(30), "simulated", 1).unwrap();
        let cmp = comparison_of(
            renamed(&base, &["#0", "w2", "root"]),
            renamed(&base, &["#7", "w2", "root"]),
        );
        assert!(cmp.contains("#0"), "{cmp}");
        assert!(cmp.contains("#7"), "{cmp}");
    }

    #[test]
    fn plan_prints_counts() {
        let out = cmd_plan(PLATFORM, &opts(1000), false).unwrap();
        assert!(out.contains("predicted makespan"));
        assert!(out.contains("w1"));
        // Counts sum: extract column 2.
        let sum: usize = out
            .lines()
            .skip(2)
            .take(3)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(sum, 1000);
    }

    #[test]
    fn plan_prints_planning_time() {
        let out = cmd_plan(PLATFORM, &opts(1000), false).unwrap();
        assert!(out.contains("planning:"), "{out}");
        let mut o = opts(1000);
        o.strategy = "exact".into();
        o.threads = 2;
        o.prune = true;
        let out = cmd_plan(PLATFORM, &o, false).unwrap();
        assert!(out.contains("exact strategy, 2 threads, pruned"), "{out}");
        assert!(out.contains("cache"), "{out}");
    }

    #[test]
    fn threads_and_prune_do_not_change_the_printed_plan() {
        let mut serial = opts(2000);
        serial.strategy = "exact".into();
        let base = cmd_plan(PLATFORM, &serial, false).unwrap();
        let mut tuned = serial.clone();
        tuned.threads = 4;
        tuned.prune = true;
        let fast = cmd_plan(PLATFORM, &tuned, false).unwrap();
        // Everything up to the timing line is identical.
        let body = |s: &str| {
            s.lines().filter(|l| !l.starts_with("planning:")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(body(&base), body(&fast));
    }

    #[test]
    fn traces_carry_plan_timing_and_reports_render_it() {
        for source in ["predicted", "simulated", "executed"] {
            let json = cmd_trace(PLATFORM, &opts(500), source, 8).unwrap();
            let trace = trace_from_json(&json).unwrap();
            let timing = trace.plan_timing.as_ref().unwrap_or_else(|| {
                panic!("{source} trace must carry plan timing")
            });
            assert_eq!(timing.strategy, "heuristic");
            let report = cmd_report(&[json], 40).unwrap();
            assert!(report.contains("planning:"), "{source}: {report}");
        }
    }

    #[test]
    fn plan_emit_c() {
        let out = cmd_plan(PLATFORM, &opts(1000), true).unwrap();
        assert!(out.contains("static const int gs_counts[3]"));
    }

    #[test]
    fn simulate_renders_and_csvs() {
        let text = cmd_simulate(PLATFORM, &opts(500), 40, false).unwrap();
        assert!(text.contains('#'));
        assert!(text.contains("earliest finish"));
        let csv = cmd_simulate(PLATFORM, &opts(500), 40, true).unwrap();
        assert!(csv.starts_with("pos,name,data,"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn transform_combines_block_and_source() {
        let src = "MPI_Scatter(a, n/P, T, b, n/P, T, 0, MPI_COMM_WORLD);";
        let out = cmd_transform(src, PLATFORM, &opts(1000)).unwrap();
        assert!(out.contains("gs_counts[3]"));
        assert!(out.contains("MPI_Scatterv(a, gs_counts"));
    }

    #[test]
    fn transform_without_call_sites_errors() {
        assert!(cmd_transform("int main(){}", PLATFORM, &opts(10)).is_err());
    }

    #[test]
    fn bad_strategy_and_order_error() {
        let mut o = opts(10);
        o.strategy = "magic".into();
        assert!(cmd_plan(PLATFORM, &o, false).is_err());
        let mut o = opts(10);
        o.order = "zigzag".into();
        assert!(cmd_plan(PLATFORM, &o, false).is_err());
        assert!(cmd_plan(PLATFORM, &opts(0), false).is_err());
    }

    #[test]
    fn every_strategy_name_parses() {
        for s in [
            "uniform",
            "exact",
            "exact-basic",
            "exact-dc",
            "heuristic",
            "closed-form",
        ] {
            let mut o = opts(100);
            o.strategy = s.into();
            assert!(cmd_plan(PLATFORM, &o, false).is_ok(), "{s}");
        }
    }

    #[test]
    fn kernel_flag_selects_the_exact_strategies() {
        for (k, strategy_label) in
            [("basic", "exact-basic"), ("optimized", "exact"), ("dc", "exact-dc")]
        {
            let mut o = opts(200);
            o.kernel = Some(k.into());
            let out = cmd_plan(PLATFORM, &o, false).unwrap();
            assert!(out.contains(strategy_label), "{k}: {out}");
        }
        let mut o = opts(200);
        o.kernel = Some("quantum".into());
        assert!(cmd_plan(PLATFORM, &o, false).is_err());
    }

    #[test]
    fn exact_dc_plan_matches_exact_plan() {
        let mut dc = opts(5000);
        dc.strategy = "exact-dc".into();
        let mut ex = opts(5000);
        ex.strategy = "exact".into();
        let out_dc = cmd_plan(PLATFORM, &dc, false).unwrap();
        let out_ex = cmd_plan(PLATFORM, &ex, false).unwrap();
        // Everything but the strategy-naming lines (header + timing)
        // must be identical: same counts, displs, finish times, makespan.
        let body = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.contains("strategy") && !l.starts_with("planning"))
                .map(str::to_string)
                .collect()
        };
        assert!(!body(&out_dc).is_empty());
        assert_eq!(body(&out_dc), body(&out_ex));
    }

    #[test]
    fn trace_sources_agree_on_makespan() {
        // Predicted, simulated and executed traces of the same plan must
        // tell the same story (ideal conditions, same cost model).
        let pred = cmd_trace(PLATFORM, &opts(1000), "predicted", 8).unwrap();
        let sim = cmd_trace(PLATFORM, &opts(1000), "simulated", 8).unwrap();
        let exec = cmd_trace(PLATFORM, &opts(1000), "executed", 8).unwrap();
        let makespan = |text: &str| {
            gs_scatter::obs::json::trace_from_json(text).unwrap().makespan()
        };
        let (mp, ms, me) = (makespan(&pred), makespan(&sim), makespan(&exec));
        assert_eq!(mp, ms, "simulation reproduces the analytic schedule");
        assert!((mp - me).abs() < 1e-9, "executed {me} vs predicted {mp}");
    }

    #[test]
    fn trace_rejects_bad_inputs() {
        assert!(cmd_trace(PLATFORM, &opts(100), "guessed", 8).is_err());
        assert!(cmd_trace(PLATFORM, &opts(100), "predicted", 0).is_err());
    }

    #[test]
    fn report_renders_single_trace() {
        let json = cmd_trace(PLATFORM, &opts(1000), "predicted", 8).unwrap();
        let out = cmd_report(&[json], 40).unwrap();
        assert!(out.contains("predicted trace"));
        assert!(out.contains('#'), "gantt chart rendered");
        assert!(!out.contains("comparison"), "no diff for a single trace");
    }

    #[test]
    fn report_renders_three_way_diff() {
        let texts: Vec<String> = ["predicted", "simulated", "executed"]
            .iter()
            .map(|s| cmd_trace(PLATFORM, &opts(1000), s, 8).unwrap())
            .collect();
        let out = cmd_report(&texts, 40).unwrap();
        assert!(out.contains("finish-time comparison"));
        for source in ["predicted", "simulated", "executed"] {
            assert!(out.contains(source), "{source} column present");
        }
        assert!(out.contains("max |finish deviation|"));
        assert!(out.contains("makespan"));
    }

    #[test]
    fn report_rejects_garbage_and_too_many() {
        assert!(cmd_report(&[], 40).is_err());
        assert!(cmd_report(&["not json".into()], 40).is_err());
        let json = cmd_trace(PLATFORM, &opts(100), "predicted", 8).unwrap();
        assert!(cmd_report(&vec![json; 4], 40).is_err());
    }

    fn fault_opts(items: usize, spec: &str, no_recovery: bool) -> PlanOptions {
        PlanOptions {
            items,
            faults: Some(spec.into()),
            no_recovery,
            ..Default::default()
        }
    }

    #[test]
    fn plan_forecasts_degraded_and_recovered_makespans() {
        let out = cmd_plan(PLATFORM, &fault_opts(1000, "crash:w1@40%", false), false).unwrap();
        assert!(out.contains("fault injection: crash:w1@40%"), "{out}");
        assert!(out.contains("degraded :"), "{out}");
        assert!(out.contains("items lost"), "{out}");
        assert!(out.contains("recovered:"), "{out}");
        assert!(out.contains("all items computed"), "{out}");
        assert!(out.contains("recovery overhead"), "{out}");
        // --no-recovery drops the recovered forecast.
        let out = cmd_plan(PLATFORM, &fault_opts(1000, "crash:w1@40%", true), false).unwrap();
        assert!(!out.contains("recovered:"), "{out}");
    }

    #[test]
    fn simulate_with_faults_shows_incidents() {
        let out = cmd_simulate(PLATFORM, &fault_opts(1000, "crash:w1@0.01", false), 40, false)
            .unwrap();
        assert!(out.contains("(recovered)"), "{out}");
        assert!(out.contains("incidents:"), "{out}");
        assert!(out.contains("receiver crashed"), "{out}");
        assert!(out.contains("redistributing"), "{out}");
        let out = cmd_simulate(PLATFORM, &fault_opts(1000, "crash:w1@0.01", true), 40, false)
            .unwrap();
        assert!(out.contains("(degraded)"), "{out}");
        assert!(out.contains("items never computed"), "{out}");
    }

    #[test]
    fn faulted_trace_sources_agree_bit_for_bit() {
        // The crash of the fastest non-root rank mid-scatter (the
        // ISSUE.md acceptance scenario): simulated and executed runs
        // share the fault oracle, so their traces agree exactly.
        for no_recovery in [false, true] {
            let o = fault_opts(1000, "crash:w1@0.01,flaky:w2:1", no_recovery);
            let sim = cmd_trace(PLATFORM, &o, "simulated", 8).unwrap();
            let exec = cmd_trace(PLATFORM, &o, "executed", 8).unwrap();
            let sim = trace_from_json(&sim).unwrap();
            let exec = trace_from_json(&exec).unwrap();
            sim.validate().unwrap();
            exec.validate().unwrap();
            assert_eq!(sim.label, exec.label);
            assert_eq!(sim.incidents, exec.incidents);
            assert_eq!(sim.makespan(), exec.makespan());
        }
    }

    #[test]
    fn faulted_predicted_trace_is_rejected() {
        let o = fault_opts(100, "crash:w1@40%", false);
        assert!(cmd_trace(PLATFORM, &o, "predicted", 8).is_err());
        let o = fault_opts(100, "meltdown:w1", false);
        assert!(cmd_trace(PLATFORM, &o, "simulated", 8).is_err(), "bad spec");
    }

    #[test]
    fn report_shows_robustness_diff_with_labels() {
        let pred = cmd_trace(PLATFORM, &opts(1000), "simulated", 8).unwrap();
        let degraded =
            cmd_trace(PLATFORM, &fault_opts(1000, "crash:w1@0.01", true), "simulated", 8)
                .unwrap();
        let recovered =
            cmd_trace(PLATFORM, &fault_opts(1000, "crash:w1@0.01", false), "simulated", 8)
                .unwrap();
        let out = cmd_report(&[pred, degraded, recovered], 40).unwrap();
        assert!(out.contains("(degraded)"), "{out}");
        assert!(out.contains("(recovered)"), "{out}");
        assert!(out.contains("incidents:"), "{out}");
        assert!(out.contains("receiver crashed"), "{out}");
        // Comparison columns carry the labels.
        assert!(out.contains("finish-time comparison"), "{out}");
        let header = out
            .lines()
            .skip_while(|l| !l.starts_with("finish-time comparison"))
            .nth(1)
            .unwrap();
        assert!(header.contains("degraded") && header.contains("recovered"), "{header}");
    }

    #[test]
    fn calibrate_output_pipes_back_into_plan() {
        // Two executed traces at different sizes pin down both affine
        // parameters of every rank exactly.
        let t1 = cmd_trace(PLATFORM, &opts(500), "executed", 8).unwrap();
        let t2 = cmd_trace(PLATFORM, &opts(1000), "executed", 8).unwrap();
        let out = cmd_calibrate(&[t1, t2]).unwrap();
        assert!(out.contains("# w1: comm"), "fit notes present: {out}");
        assert!(out.contains("root root"), "{out}");
        // The rendered platform reparses and reproduces the original
        // platform's predicted makespan.
        let original = cmd_plan(PLATFORM, &opts(1000), false).unwrap();
        let fitted = cmd_plan(&out, &opts(1000), false).unwrap();
        let makespan = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("predicted makespan"))
                .unwrap()
                .to_string()
        };
        assert_eq!(makespan(&original), makespan(&fitted));
    }

    #[test]
    fn calibrate_rejects_bad_inputs() {
        assert!(cmd_calibrate(&[]).is_err());
        assert!(cmd_calibrate(&["not json".into()]).is_err());
    }

    #[test]
    fn metrics_dumps_prometheus_exposition() {
        let out = cmd_metrics(PLATFORM, &opts(500), 8).unwrap();
        assert!(out.contains("# HELP sim_runs_total"), "{out}");
        assert!(out.contains("# TYPE mpi_send_seconds histogram"), "{out}");
        assert!(out.contains("mpi_sends_total"), "{out}");
        // The fault-tolerant path feeds the ft_* family.
        let out = cmd_metrics(PLATFORM, &fault_opts(500, "crash:w1@0.01", false), 8).unwrap();
        assert!(out.contains("ft_sends_total"), "{out}");
        assert!(out.contains("ft_replans_total"), "{out}");
        assert!(cmd_metrics(PLATFORM, &opts(500), 0).is_err());
    }

    #[test]
    fn metrics_json_is_machine_readable() {
        let out = cmd_metrics_json(PLATFORM, &opts(500), 8).unwrap();
        let doc = json::parse(&out).expect("valid JSON");
        let counters = doc.get("counters").and_then(Json::as_arr).expect("counters array");
        assert!(counters
            .iter()
            .any(|c| c.get("name").and_then(Json::as_str) == Some("mpi_sends_total")));
        assert!(doc.get("histograms").and_then(Json::as_arr).is_some());
        assert!(out.ends_with('\n'), "shell-friendly trailing newline");
        assert!(cmd_metrics_json(PLATFORM, &opts(500), 0).is_err());
    }

    /// One test drives every span-capturing front-end: span tracing is
    /// process-global state, so exercising it from a single test keeps
    /// the library tests race-free.
    #[test]
    fn spanned_commands_export_chrome_traces_and_report_summarizes_them() {
        let (out, spans) = cmd_sim_spanned(&sim_opts(500)).unwrap();
        assert!(out.starts_with("sim: ranks=500"), "{out}");
        let doc = json::parse(&spans).expect("valid Chrome trace JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"sim.star"), "{names:?}");
        assert!(names.contains(&"sim.run"), "{names:?}");

        let summary = cmd_report_spans(&spans).unwrap();
        assert!(summary.starts_with("span summary:"), "{summary}");
        assert!(summary.contains("sim.star"), "{summary}");

        // The DP planner under `gs trace --spans` contributes dp.* spans.
        let mut o = opts(2000);
        o.strategy = "exact".into();
        let (_, spans) = cmd_trace_spanned(PLATFORM, &o, "simulated", 8).unwrap();
        assert!(spans.contains("\"dp.solve\""), "{spans}");
        assert!(spans.contains("\"sim.scatter\""), "{spans}");

        // Capture is scoped: tracing is off again afterwards.
        assert!(!span::enabled());
    }

    #[test]
    fn report_spans_computes_self_time_and_rejects_junk() {
        // A 100µs parent with one 30µs child: self = 70µs for the
        // parent, 30µs for the child; an id-less virtual span and an
        // unknown parent id are both tolerated.
        let text = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"wall clock"}},
            {"name":"a","cat":"t","ph":"X","ts":0,"dur":100,"pid":1,"tid":1,
             "args":{"id":"1","parent":"0"}},
            {"name":"b","cat":"t","ph":"X","ts":10,"dur":30,"pid":1,"tid":1,
             "args":{"id":"2","parent":"1"}},
            {"name":"c","cat":"t","ph":"X","ts":20,"dur":5,"pid":1,"tid":1,
             "args":{"id":"3","parent":"999"}}
        ]}"#;
        let out = cmd_report_spans(text).unwrap();
        assert!(out.starts_with("span summary: 3 spans, 3 names\n"), "{out}");
        let row = |name: &str| {
            out.lines()
                .find(|l| l.split_whitespace().nth(1) == Some(name))
                .unwrap_or_else(|| panic!("no row for {name}: {out}"))
                .to_string()
        };
        assert!(row("a").ends_with("0.100        0.070"), "{out}");
        assert!(row("b").ends_with("0.030        0.030"), "{out}");
        assert!(row("c").ends_with("0.005        0.005"), "{out}");
        // Ranked by self time: a (70) before b (30) before c (5).
        let pos =
            |n: &str| out.lines().position(|l| l.split_whitespace().nth(1) == Some(n)).unwrap();
        assert!(pos("a") < pos("b") && pos("b") < pos("c"));

        assert!(cmd_report_spans("{}").is_err());
        assert!(cmd_report_spans("not json").is_err());
        assert!(cmd_report_spans(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
    }

    #[test]
    fn drift_gate_passes_faithful_trace_and_flags_perturbed_model() {
        let exec = cmd_trace(PLATFORM, &opts(1000), "executed", 8).unwrap();
        let (out, ok) =
            cmd_report_drift(std::slice::from_ref(&exec), 40, PLATFORM, 0.01).unwrap();
        assert!(ok, "{out}");
        assert!(out.contains("drift vs predicted"), "{out}");
        assert!(out.contains("drift check: OK"), "{out}");
        // The same trace judged against a mis-specified platform (w2's
        // alpha halved) must trip the gate.
        let wrong = PLATFORM.replace("alpha=0.016", "alpha=0.008");
        let (out, ok) = cmd_report_drift(std::slice::from_ref(&exec), 40, &wrong, 0.01).unwrap();
        assert!(!ok, "{out}");
        assert!(out.contains("FAIL"), "{out}");
        // Bad thresholds and unknown rank names are hard errors, not
        // gate failures.
        assert!(cmd_report_drift(std::slice::from_ref(&exec), 40, PLATFORM, -0.5).is_err());
        let renamed = PLATFORM.replace("proc w2", "proc other");
        assert!(cmd_report_drift(&[exec], 40, &renamed, 0.01).is_err());
    }

    #[test]
    fn table1_output_reparses() {
        let text = cmd_table1();
        let plan = cmd_plan(&text, &opts(817_101), false).unwrap();
        assert!(plan.contains("dinadan"));
        assert!(plan.contains("leda"));
    }
}
