//! Platform-file parsing — thin shim over [`gs_scatter::platform_file`].
//!
//! The format itself (and its parser/renderer) lives in the core crate
//! so that every frontend — this CLI, the `gs-serve` daemon, benches —
//! shares one grammar; this module only adapts errors to [`CliError`].

use crate::CliError;
use gs_scatter::cost::Platform;
pub use gs_scatter::platform_file::render_platform;

/// Parses a platform file's contents, mapping parse failures to
/// [`CliError`]. See [`gs_scatter::platform_file`] for the grammar.
pub fn parse_platform(text: &str) -> Result<Platform, CliError> {
    gs_scatter::platform_file::parse_platform(text).map_err(CliError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_adapt_to_cli_error() {
        let e = parse_platform("proc a beta=1 alpha=1\nbogus x\n").unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
    }

    #[test]
    fn table1_round_trips_through_the_shim() {
        let t1 = gs_scatter::paper::table1_platform();
        let p = parse_platform(&render_platform(&t1)).unwrap();
        assert_eq!(p.len(), 16);
        assert_eq!(p.root(), 0);
    }
}
