//! # gs-cli — the `gs` command-line tool
//!
//! What a downstream user actually runs:
//!
//! ```text
//! gs table1 > grid.platform            # start from the paper's testbed
//! gs plan grid.platform --items 817101 # counts/displs + predicted schedule
//! gs plan grid.platform --items 817101 --emit-c   # C arrays for MPI_Scatterv
//! gs simulate grid.platform --items 817101        # figure-style rendering
//! gs transform app.c grid.platform --items 817101 # rewrite MPI_Scatter calls
//! ```
//!
//! The platform file is a plain-text description (one processor per line)
//! parsed by [`platform_file`]; no configuration framework, no serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod platform_file;
pub mod serve_cmd;

/// CLI-level errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<gs_scatter::error::PlanError> for CliError {
    fn from(e: gs_scatter::error::PlanError) -> Self {
        CliError(format!("planning failed: {e}"))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

impl From<gs_scatter::platform_file::PlatformFileError> for CliError {
    fn from(e: gs_scatter::platform_file::PlatformFileError) -> Self {
        CliError(e.0)
    }
}
