//! Arbitrary-precision unsigned integers.
//!
//! Representation: little-endian `u32` limbs with no trailing zero limb;
//! the empty limb vector is zero. `u32` limbs keep every intermediate of
//! schoolbook multiplication and Knuth division inside `u64`/`u128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

const LIMB_BITS: u32 = 32;
const LIMB_MASK: u64 = 0xffff_ffff;
/// Largest power of ten fitting in a limb, used for decimal conversion.
const DEC_CHUNK: u32 = 1_000_000_000;
const DEC_CHUNK_DIGITS: usize = 9;

/// An arbitrary-precision unsigned integer.
///
/// Cheap to clone for small values (one `Vec`), with value semantics.
/// Arithmetic panics on underflow (`a - b` with `a < b`) and division by
/// zero, mirroring the behaviour of the primitive unsigned types; use
/// [`BigUint::checked_sub`] when underflow is expected.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from raw little-endian limbs (normalizes trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Converts to `u64`, or `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Converts to `u128`, or `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    /// Nearest `f64` approximation, `+inf` on overflow.
    ///
    /// The top 53 bits are extracted and scaled by the appropriate power of
    /// two, so the result is correctly rounded to within 1 ulp.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits <= 64 {
            return self.to_u64().expect("fits by bit count") as f64;
        }
        // Take the top 64 bits as an integer and scale.
        let shift = bits - 64;
        let top = (self >> shift).to_u64().expect("exactly 64 bits");
        (top as f64) * 2f64.powi(shift as i32)
    }

    /// `self + other`, in place.
    fn add_assign_ref(&mut self, other: &BigUint) {
        let mut carry: u64 = 0;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = self.limbs[i] as u64 + b + carry;
            self.limbs[i] = (s & LIMB_MASK) as u32;
            carry = s >> LIMB_BITS;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// `self - other`, or `None` when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = self.limbs.clone();
        let mut borrow: i64 = 0;
        for (i, limb) in out.iter_mut().enumerate() {
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let d = *limb as i64 - b - borrow;
            if d < 0 {
                *limb = (d + (1i64 << LIMB_BITS)) as u32;
                borrow = 1;
            } else {
                *limb = d as u32;
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0, "compare guaranteed no underflow");
        Some(BigUint::from_limbs(out))
    }

    /// Multiplies by a single limb, returning `self * l`.
    fn mul_limb(&self, l: u32) -> BigUint {
        if l == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u64 = 0;
        for &a in &self.limbs {
            let p = a as u64 * l as u64 + carry;
            out.push((p & LIMB_MASK) as u32);
            carry = p >> LIMB_BITS;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }

    /// Schoolbook multiplication. Quadratic, which is ample for the limb
    /// counts reached by the scatter LP (tens of limbs).
    fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let p = a as u64 * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = (p & LIMB_MASK) as u32;
                carry = p >> LIMB_BITS;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let s = out[k] as u64 + carry;
                out[k] = (s & LIMB_MASK) as u32;
                carry = s >> LIMB_BITS;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Euclidean division: returns `(self / d, self % d)`.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn divrem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "BigUint division by zero");
        match self.cmp(d) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if d.limbs.len() == 1 {
            let (q, r) = self.divrem_limb(d.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.divrem_knuth(d)
    }

    /// Division by a single limb (fast path; also drives decimal printing).
    fn divrem_limb(&self, d: u32) -> (BigUint, u32) {
        debug_assert!(d != 0);
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << LIMB_BITS) | self.limbs[i] as u64;
            out[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        (BigUint::from_limbs(out), rem as u32)
    }

    /// Knuth Algorithm D for multi-limb divisors.
    ///
    /// The quotient digit estimate `qhat` is refined with the classical
    /// two-limb test; a final full comparison (`prod > slice`) corrects the
    /// rare remaining overestimate, trading a little speed for obvious
    /// correctness.
    fn divrem_knuth(&self, d: &BigUint) -> (BigUint, BigUint) {
        let shift = d.limbs.last().unwrap().leading_zeros() as u64;
        let u = self << shift; // dividend, will be mutated as the remainder
        let v = d << shift;
        let n = v.limbs.len();
        debug_assert!(n >= 2);
        let mut u_limbs = u.limbs;
        u_limbs.push(0); // room for the virtual high limb u[m+n]
        let m = u_limbs.len() - n - 1;
        let v_hi = v.limbs[n - 1] as u64;
        let v_lo = v.limbs[n - 2] as u64;
        let mut q = vec![0u32; m + 1];

        for j in (0..=m).rev() {
            let num = ((u_limbs[j + n] as u64) << LIMB_BITS) | u_limbs[j + n - 1] as u64;
            let mut qhat = num / v_hi;
            let mut rhat = num % v_hi;
            // Refine: ensure qhat fits a limb and the two-limb test passes.
            while qhat > LIMB_MASK
                || (qhat as u128) * (v_lo as u128)
                    > ((rhat as u128) << LIMB_BITS) + u_limbs[j + n - 2] as u128
            {
                qhat -= 1;
                rhat += v_hi;
                if rhat > LIMB_MASK {
                    break;
                }
            }
            // qhat is now correct or one too large; settle with a full check.
            let mut prod = v.mul_limb(qhat as u32);
            if slice_lt(&u_limbs[j..j + n + 1], &prod) {
                qhat -= 1;
                prod = prod.checked_sub(&v).expect("qhat was >= 1");
            }
            sub_in_place(&mut u_limbs[j..j + n + 1], &prod);
            q[j] = qhat as u32;
        }

        u_limbs.truncate(n);
        let rem = BigUint::from_limbs(u_limbs) >> shift;
        (BigUint::from_limbs(q), rem)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = a >> az;
        b = b >> bz;
        // Both odd from here on.
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = a.checked_sub(&b).expect("a > b");
            let z = a.trailing_zeros();
            a = a >> z;
        }
        a << common
    }

    /// Number of trailing zero bits (`0` for zero).
    pub fn trailing_zeros(&self) -> u64 {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64;
            }
        }
        0
    }

    /// `self` raised to the power `exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }
}

/// Compares an (n+1)-limb slice with a BigUint (treating the slice as a
/// little-endian number). Returns `true` iff `slice < b`.
fn slice_lt(slice: &[u32], b: &BigUint) -> bool {
    let slice_len = {
        let mut l = slice.len();
        while l > 0 && slice[l - 1] == 0 {
            l -= 1;
        }
        l
    };
    match slice_len.cmp(&b.limbs.len()) {
        Ordering::Less => return true,
        Ordering::Greater => return false,
        Ordering::Equal => {}
    }
    for i in (0..slice_len).rev() {
        match slice[i].cmp(&b.limbs[i]) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// `slice -= b` in place; the caller guarantees no underflow.
fn sub_in_place(slice: &mut [u32], b: &BigUint) {
    let mut borrow: i64 = 0;
    for (i, limb) in slice.iter_mut().enumerate() {
        let sub = *b.limbs.get(i).unwrap_or(&0) as i64;
        let d = *limb as i64 - sub - borrow;
        if d < 0 {
            *limb = (d + (1i64 << LIMB_BITS)) as u32;
            borrow = 1;
        } else {
            *limb = d as u32;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "caller must guarantee slice >= b");
}

// ---- conversions ----------------------------------------------------------

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![(v & LIMB_MASK) as u32, (v >> 32) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

// ---- ordering -------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            o => return o,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---- operator impls ---------------------------------------------------------
// Owned and by-reference forms; the by-reference forms are the primitives.

impl<'b> Add<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &'b BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl<'b> Sub<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &'b BigUint) -> BigUint {
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        (&self).sub(&rhs)
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = (&*self).sub(rhs);
    }
}

impl<'b> Mul<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &'b BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl<'b> Div<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &'b BigUint) -> BigUint {
        self.divrem(rhs).0
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.divrem(&rhs).0
    }
}

impl<'b> Rem<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &'b BigUint) -> BigUint {
        self.divrem(rhs).1
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.divrem(&rhs).1
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        (&self) << bits
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        (&self) >> bits
    }
}

// ---- decimal I/O ------------------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_limb(DEC_CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::with_capacity(chunks.len() * DEC_CHUNK_DIGITS);
        s.push_str(&chunks.last().unwrap().to_string());
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:09}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

/// Error parsing a decimal [`BigUint`]/[`BigInt`](crate::BigInt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal integer literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigUint {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let mut out = BigUint::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(DEC_CHUNK_DIGITS);
            let chunk: u32 = s[i..i + take].parse().map_err(|_| ParseBigIntError)?;
            out = out.mul_limb(10u32.pow(take as u32));
            out.add_assign_ref(&BigUint::from(chunk));
            i += take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(0u64), BigUint::zero());
    }

    #[test]
    fn round_trip_u64() {
        for v in [0u64, 1, 42, u32::MAX as u64, u64::MAX, 1 << 33] {
            assert_eq!(BigUint::from(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn round_trip_u128() {
        for v in [0u128, u64::MAX as u128 + 1, u128::MAX, 1 << 100] {
            assert_eq!(BigUint::from(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn add_with_carries() {
        let a = big(u64::MAX as u128);
        let b = big(1);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn sub_underflow_is_none() {
        assert_eq!(big(3).checked_sub(&big(5)), None);
        assert_eq!(big(5).checked_sub(&big(3)), Some(big(2)));
        assert_eq!(big(5).checked_sub(&big(5)), Some(BigUint::zero()));
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (u32::MAX as u128, u32::MAX as u128),
            (123_456_789_012, 987_654_321_098),
        ];
        for (a, b) in cases {
            assert_eq!((big(a) * big(b)).to_u128(), Some(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn mul_large() {
        let a = BigUint::from(u128::MAX);
        let sq = &a * &a;
        // (2^128-1)^2 = 2^256 - 2^129 + 1
        let expected = (BigUint::one() << 256) - (BigUint::one() << 129) + BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn divrem_small() {
        let (q, r) = big(100).divrem(&big(7));
        assert_eq!((q, r), (big(14), big(2)));
        let (q, r) = big(7).divrem(&big(100));
        assert_eq!((q, r), (BigUint::zero(), big(7)));
        let (q, r) = big(100).divrem(&big(100));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    fn divrem_multi_limb() {
        let n = BigUint::from(u128::MAX) * BigUint::from(12_345_678_901_234_567u64)
            + BigUint::from(42u32);
        let d = BigUint::from(u128::MAX);
        let (q, r) = n.divrem(&d);
        assert_eq!(q.to_u64(), Some(12_345_678_901_234_567));
        assert_eq!(r.to_u64(), Some(42));
    }

    #[test]
    fn divrem_knuth_correction_case() {
        // Exercises the qhat-overestimate path: divisor with high limb just
        // over half the radix.
        let d = BigUint::from_limbs(vec![0, 0x8000_0001]);
        let n = (&d * &big(0xffff_ffff)) + big(0x7fff_ffff);
        let (q, r) = n.divrem(&d);
        assert_eq!(q, big(0xffff_ffff));
        assert_eq!(r, big(0x7fff_ffff));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).divrem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1) << 100 >> 100, big(1));
        assert_eq!((big(0xdead_beef) << 37).to_u128(), Some(0xdead_beefu128 << 37));
        assert_eq!(big(0xff) >> 8, BigUint::zero());
        assert_eq!(big(0x1_00) >> 8, big(1));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(1 << 40).gcd(&big(1 << 20)), big(1 << 20));
    }

    #[test]
    fn gcd_large_matches_euclid() {
        let a = BigUint::from_str("123456789012345678901234567890").unwrap();
        let b = BigUint::from_str("987654321098765432109876543210").unwrap();
        let g = a.gcd(&b);
        // Euclid reference
        let (mut x, mut y) = (a.clone(), b.clone());
        while !y.is_zero() {
            let r = (&x).rem(&y);
            x = y;
            y = r;
        }
        assert_eq!(g, x);
        assert_eq!((&a).rem(&g), BigUint::zero());
        assert_eq!((&b).rem(&g), BigUint::zero());
    }

    #[test]
    fn pow_basics() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(10).pow(0), BigUint::one());
        assert_eq!(big(0).pow(0), BigUint::one()); // convention
        assert_eq!(big(3).pow(5), big(243));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let s = "340282366920938463463374607431768211456123456789";
        let v = BigUint::from_str(s).unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from_str("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::from_str("000123").unwrap(), big(123));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigUint::from_str("").is_err());
        assert!(BigUint::from_str("12a3").is_err());
        assert!(BigUint::from_str("-5").is_err());
        assert!(BigUint::from_str(" 5").is_err());
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(big(1 << 64) > big(u64::MAX as u128));
        assert_eq!(big(77).cmp(&big(77)), Ordering::Equal);
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(big(12345).to_f64(), 12345.0);
        let v = BigUint::from(1u128 << 100);
        assert_eq!(v.to_f64(), 2f64.powi(100));
        // 2^100 + 2^40: relative error below 1 ulp of f64.
        let v = (BigUint::one() << 100) + (BigUint::one() << 40);
        let expect = 2f64.powi(100) + 2f64.powi(40);
        assert!((v.to_f64() - expect).abs() / expect < 1e-15);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(big(0).trailing_zeros(), 0);
        assert_eq!(big(1).trailing_zeros(), 0);
        assert_eq!(big(8).trailing_zeros(), 3);
        assert_eq!((big(1) << 70).trailing_zeros(), 70);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(2).bits(), 2);
        assert_eq!(big(255).bits(), 8);
        assert_eq!(big(256).bits(), 9);
        assert_eq!((big(1) << 127).bits(), 128);
    }
}
