//! Signed arbitrary-precision integers (sign–magnitude over [`BigUint`]).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

use crate::biguint::{BigUint, ParseBigIntError};

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
///
/// Invariant: `neg` is never set when the magnitude is zero, so `0` has a
/// unique representation and derived equality is sound.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigInt {
    neg: bool,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt { neg: false, mag: BigUint::zero() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt { neg: false, mag: BigUint::one() }
    }

    /// Builds from a sign flag and magnitude (normalizes `-0` to `0`).
    pub fn from_sign_mag(neg: bool, mag: BigUint) -> Self {
        BigInt { neg: neg && !mag.is_zero(), mag }
    }

    /// The magnitude `|self|` as an unsigned integer.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.neg && !self.mag.is_zero()
    }

    /// Three-way sign.
    pub fn sign(&self) -> Sign {
        if self.mag.is_zero() {
            Sign::Zero
        } else if self.neg {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt { neg: false, mag: self.mag.clone() }
    }

    /// Converts to `i64`, or `None` if out of range.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        if self.neg {
            if m <= i64::MAX as u64 + 1 {
                Some((m as i64).wrapping_neg())
            } else {
                None
            }
        } else if m <= i64::MAX as u64 {
            Some(m as i64)
        } else {
            None
        }
    }

    /// Converts to `i128`, or `None` if out of range.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        if self.neg {
            if m <= i128::MAX as u128 + 1 {
                Some((m as i128).wrapping_neg())
            } else {
                None
            }
        } else if m <= i128::MAX as u128 {
            Some(m as i128)
        } else {
            None
        }
    }

    /// Nearest `f64` approximation.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.neg {
            -m
        } else {
            m
        }
    }

    /// Truncating division with remainder: `self = q*d + r`, `|r| < |d|`,
    /// `r` has the sign of `self` (like Rust's `/` and `%` on primitives).
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn divrem(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.mag.divrem(&d.mag);
        (
            BigInt::from_sign_mag(self.neg != d.neg, q),
            BigInt::from_sign_mag(self.neg, r),
        )
    }

    /// `self` raised to the power `exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        BigInt::from_sign_mag(self.neg && exp % 2 == 1, self.mag.pow(exp))
    }
}

// ---- conversions ----------------------------------------------------------

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt { neg: false, mag }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                BigInt { neg: false, mag: BigUint::from(v) }
            }
        }
    )*};
}
from_unsigned!(u32, u64, u128, usize);

macro_rules! from_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                if v < 0 {
                    BigInt { neg: true, mag: BigUint::from(v.unsigned_abs() as $u) }
                } else {
                    BigInt { neg: false, mag: BigUint::from(v as $u) }
                }
            }
        }
    )*};
}
from_signed!(i32 => u32, i64 => u64, i128 => u128, isize => u64);

// ---- ordering -------------------------------------------------------------

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp(&other.mag),
            (true, true) => other.mag.cmp(&self.mag),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---- arithmetic -------------------------------------------------------------

impl<'b> Add<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &'b BigInt) -> BigInt {
        if self.neg == rhs.neg {
            BigInt::from_sign_mag(self.neg, &self.mag + &rhs.mag)
        } else {
            // Opposite signs: subtract the smaller magnitude from the larger.
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_mag(self.neg, self.mag.checked_sub(&rhs.mag).unwrap())
                }
                Ordering::Less => {
                    BigInt::from_sign_mag(rhs.neg, rhs.mag.checked_sub(&self.mag).unwrap())
                }
            }
        }
    }
}

impl<'b> Sub<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &'b BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl<'b> Mul<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &'b BigInt) -> BigInt {
        BigInt::from_sign_mag(self.neg != rhs.neg, &self.mag * &rhs.mag)
    }
}

impl<'b> Div<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &'b BigInt) -> BigInt {
        self.divrem(rhs).0
    }
}

impl<'b> Rem<&'b BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &'b BigInt) -> BigInt {
        self.divrem(rhs).1
    }
}

macro_rules! forward_owned {
    ($($trait:ident::$m:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $m(self, rhs: BigInt) -> BigInt {
                $trait::$m(&self, &rhs)
            }
        }
    )*};
}
forward_owned!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = (&*self) + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = (&*self) - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = (&*self) * rhs;
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_sign_mag(!self.neg, self.mag)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

// ---- I/O --------------------------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.neg {
            write!(f, "-{}", self.mag)
        } else {
            self.mag.fmt(f)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        Ok(BigInt::from_sign_mag(neg, digits.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalization() {
        let z = BigInt::from_sign_mag(true, BigUint::zero());
        assert!(!z.is_negative());
        assert_eq!(z, BigInt::zero());
        assert_eq!(z.sign(), Sign::Zero);
        assert_eq!(b(-5).sign(), Sign::Negative);
        assert_eq!(b(5).sign(), Sign::Positive);
    }

    #[test]
    fn add_signed_cases() {
        let cases: [(i128, i128); 10] = [
            (0, 0),
            (1, 2),
            (-1, -2),
            (5, -3),
            (3, -5),
            (-5, 3),
            (-3, 5),
            (7, -7),
            (i64::MAX as i128, i64::MAX as i128),
            (i64::MIN as i128, -1),
        ];
        for (x, y) in cases {
            assert_eq!((b(x) + b(y)).to_i128(), Some(x + y), "{x}+{y}");
        }
    }

    #[test]
    fn sub_signed_cases() {
        for (x, y) in [(0i128, 0i128), (1, 2), (-1, -2), (5, -3), (-5, 3), (10, 10)] {
            assert_eq!((b(x) - b(y)).to_i128(), Some(x - y), "{x}-{y}");
        }
    }

    #[test]
    fn mul_signed_cases() {
        for (x, y) in [(0i128, 5i128), (-4, 6), (-4, -6), (4, -6), (1 << 40, 1 << 40)] {
            assert_eq!((b(x) * b(y)).to_i128(), Some(x * y), "{x}*{y}");
        }
    }

    #[test]
    fn divrem_truncates_like_rust() {
        for (x, y) in [(7i128, 2i128), (-7, 2), (7, -2), (-7, -2), (6, 3), (-6, 3)] {
            let (q, r) = b(x).divrem(&b(y));
            assert_eq!(q.to_i128(), Some(x / y), "{x}/{y}");
            assert_eq!(r.to_i128(), Some(x % y), "{x}%{y}");
        }
    }

    #[test]
    fn ordering_mixed_signs() {
        assert!(b(-3) < b(2));
        assert!(b(-3) > b(-4));
        assert!(b(3) < b(4));
        assert!(b(0) > b(-1));
        assert!(b(0) < b(1));
    }

    #[test]
    fn neg_involutive() {
        assert_eq!(-(-b(42)), b(42));
        assert_eq!(-BigInt::zero(), BigInt::zero());
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(b(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(b(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(b(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(b(-12345).to_string(), "-12345");
        assert_eq!("-987654321987654321987".parse::<BigInt>().unwrap().to_string(),
                   "-987654321987654321987");
        assert_eq!("+17".parse::<BigInt>().unwrap(), b(17));
        assert!("--1".parse::<BigInt>().is_err());
        assert!("".parse::<BigInt>().is_err());
    }

    #[test]
    fn pow_sign() {
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
        assert_eq!(b(-2).pow(0), b(1));
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(b(-12345).to_f64(), -12345.0);
        assert_eq!(b(0).to_f64(), 0.0);
    }
}
