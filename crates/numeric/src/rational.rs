//! Exact rational numbers over [`BigInt`]/[`BigUint`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::{BigInt, BigUint};

/// An exact rational number `num / den`.
///
/// Invariants maintained by every constructor and operation:
/// * `den > 0`,
/// * `gcd(|num|, den) == 1`,
/// * zero is represented as `0 / 1`.
///
/// Consequently `PartialEq`/`Hash` derive structurally and total order is
/// the numeric order.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Self {
        Rational { num: BigInt::zero(), den: BigUint::one() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rational { num: BigInt::one(), den: BigUint::one() }
    }

    /// Builds `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        let neg = num.is_negative() != den.is_negative();
        let num_mag = num.into_magnitude();
        let den_mag = den.into_magnitude();
        let g = num_mag.gcd(&den_mag);
        if num_mag.is_zero() {
            return Rational::zero();
        }
        Rational {
            num: BigInt::from_sign_mag(neg, &num_mag / &g),
            den: &den_mag / &g,
        }
    }

    /// Internal constructor for values already in lowest terms
    /// (`den > 0`, `gcd(|num|, den) == 1`). Debug-checked.
    fn from_reduced(num: BigInt, den: BigUint) -> Self {
        debug_assert!(!den.is_zero());
        debug_assert!(num.is_zero() && den.is_one() || num.magnitude().gcd(&den).is_one());
        Rational { num, den }
    }

    /// Builds from machine integers: `num / den`.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    /// Builds an integer value.
    pub fn from_int(v: i64) -> Self {
        Rational { num: BigInt::from(v), den: BigUint::one() }
    }

    /// Exact conversion from a finite `f64` (every finite float is rational).
    ///
    /// Returns `None` for NaN and infinities.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Value = mantissa * 2^exp with mantissa integral.
        let (mantissa, exp) = if exp_bits == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let m = BigInt::from_sign_mag(neg, BigUint::from(mantissa));
        Some(if exp >= 0 {
            Rational {
                num: m * BigInt::from(BigUint::one() << exp as u64),
                den: BigUint::one(),
            }
        } else {
            Rational::new(m, BigInt::from(BigUint::one() << (-exp) as u64))
        })
    }

    /// Nearest `f64` approximation.
    ///
    /// Both numerator and denominator are reduced to their top 64 bits with
    /// a shared exponent correction, so the result is accurate to a few ulp
    /// regardless of magnitude.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.bits() as i64;
        let nshift = (nb - 64).max(0) as u64;
        let dshift = (db - 64).max(0) as u64;
        let n = (self.num.magnitude() >> nshift).to_u64().expect("<= 64 bits") as f64;
        let d = (&self.den >> dshift).to_u64().expect("<= 64 bits") as f64;
        let mut v = n / d * 2f64.powi((nshift as i64 - dshift as i64) as i32);
        if self.num.is_negative() {
            v = -v;
        }
        v
    }

    /// Numerator (signed, coprime with the denominator).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational {
            num: BigInt::from_sign_mag(self.num.is_negative(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.divrem(&BigInt::from(self.den.clone()));
        if self.num.is_negative() && !r.is_zero() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.divrem(&BigInt::from(self.den.clone()));
        if !self.num.is_negative() && !r.is_zero() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Nearest integer; exact halves round away from zero (the choice is
    /// irrelevant to the rounding scheme of RR-4770 §3.3, which only needs
    /// *a* nearest integer).
    pub fn round(&self) -> BigInt {
        let two = Rational::from_int(2);
        if self.is_negative() {
            -((&self.abs() + &(Rational::one() / &two)).floor())
        } else {
            (self + &(Rational::one() / &two)).floor()
        }
    }

    /// Fractional distance to the nearest integer, in `[0, 1/2]`.
    pub fn dist_to_nearest_int(&self) -> Rational {
        let r = Rational::from(self.round());
        (self - &r).abs()
    }

    /// `self^exp` for signed exponents.
    ///
    /// # Panics
    /// Panics if `self` is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp >= 0 {
            Rational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Parses a plain decimal literal such as `-12.345` or `0.009288`.
    ///
    /// This is how measured cost coefficients (Table 1 of the paper) enter
    /// the exact solvers without a detour through binary floating point.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseRationalError> {
        Rational::from_str(s)
    }
}

// ---- arithmetic -------------------------------------------------------------
//
// Addition and multiplication use Knuth's reduced algorithms (TAOCP 4.5.1):
// taking small GCDs *before* multiplying keeps intermediate magnitudes down,
// which is what makes the exact simplex tractable at paper scale.

impl<'b> Add<&'b Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &'b Rational) -> Rational {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        // a/b + c/d with g = gcd(b, d), b = g·b', d = g·d':
        //   t = a·d' + c·b',  g2 = gcd(t, g)
        //   result = (t/g2) / ((g/g2)·b'·d')   — already fully reduced.
        let g = self.den.gcd(&rhs.den);
        if g.is_one() {
            let num = &self.num * &BigInt::from(rhs.den.clone())
                + &rhs.num * &BigInt::from(self.den.clone());
            let den = &self.den * &rhs.den;
            debug_assert!(num.magnitude().gcd(&den).is_one());
            return Rational::from_reduced(num, den);
        }
        let b1 = &self.den / &g; // b'
        let d1 = &rhs.den / &g; // d'
        let t = &self.num * &BigInt::from(d1.clone()) + &rhs.num * &BigInt::from(b1.clone());
        if t.is_zero() {
            return Rational::zero();
        }
        let g2 = t.magnitude().gcd(&g);
        let num = BigInt::from_sign_mag(t.is_negative(), t.magnitude() / &g2);
        let den = &(&(&g / &g2) * &b1) * &d1;
        debug_assert!(num.magnitude().gcd(&den).is_one());
        Rational::from_reduced(num, den)
    }
}

impl<'b> Sub<&'b Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &'b Rational) -> Rational {
        self + &(-rhs.clone())
    }
}

impl<'b> Mul<&'b Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &'b Rational) -> Rational {
        if self.is_zero() || rhs.is_zero() {
            return Rational::zero();
        }
        // (a/b)·(c/d): cancel across — g1 = gcd(|a|, d), g2 = gcd(|c|, b);
        // since both inputs are reduced the cross-cancelled product is too.
        let g1 = self.num.magnitude().gcd(&rhs.den);
        let g2 = rhs.num.magnitude().gcd(&self.den);
        let num_mag = (self.num.magnitude() / &g1) * (rhs.num.magnitude() / &g2);
        let den = (&self.den / &g2) * (&rhs.den / &g1);
        let neg = self.num.is_negative() != rhs.num.is_negative();
        debug_assert!(num_mag.gcd(&den).is_one());
        Rational::from_reduced(BigInt::from_sign_mag(neg, num_mag), den)
    }
}

impl<'b> Div<&'b Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: &'b Rational) -> Rational {
        assert!(!rhs.is_zero(), "Rational division by zero");
        self * &rhs.recip()
    }
}

macro_rules! forward_rat_owned {
    ($($trait:ident::$m:ident),*) => {$(
        impl $trait for Rational {
            type Output = Rational;
            fn $m(self, rhs: Rational) -> Rational {
                $trait::$m(&self, &rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $m(self, rhs: &Rational) -> Rational {
                $trait::$m(&self, rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $m(self, rhs: Rational) -> Rational {
                $trait::$m(self, &rhs)
            }
        }
    )*};
}
forward_rat_owned!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = (&*self) + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = (&*self) - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = (&*self) * rhs;
    }
}

impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        *self = (&*self) / rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

// ---- ordering -------------------------------------------------------------

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply: a/b ? c/d  <=>  a*d ? c*b  (b, d > 0).
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---- conversions ----------------------------------------------------------

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational { num: v, den: BigUint::one() }
    }
}

impl From<BigUint> for Rational {
    fn from(v: BigUint) -> Self {
        Rational { num: BigInt::from(v), den: BigUint::one() }
    }
}

macro_rules! from_prim {
    ($($t:ty),*) => {$(
        impl From<$t> for Rational {
            fn from(v: $t) -> Self {
                Rational { num: BigInt::from(v), den: BigUint::one() }
            }
        }
    )*};
}
from_prim!(i32, i64, u32, u64, usize);

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

// ---- I/O --------------------------------------------------------------------

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            self.num.fmt(f)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

/// Error parsing a [`Rational`] literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid rational literal (expected `a`, `a/b`, or decimal `a.b`)")
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Accepts `a`, `-a`, `a/b`, and decimal `a.b` forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|_| ParseRationalError)?;
            let den: BigInt = d.trim().parse().map_err(|_| ParseRationalError)?;
            if den.is_zero() {
                return Err(ParseRationalError);
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim().starts_with('-');
            let int: BigInt = if int_part.trim() == "-" {
                BigInt::zero()
            } else {
                int_part.trim().parse().map_err(|_| ParseRationalError)?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRationalError);
            }
            let frac: BigUint = frac_part.parse().map_err(|_| ParseRationalError)?;
            let scale = BigUint::from(10u32).pow(frac_part.len() as u32);
            let frac_rat = Rational::new(BigInt::from(frac), BigInt::from(scale));
            let int_rat = Rational::from(int.abs());
            let v = &int_rat + &frac_rat;
            return Ok(if neg { -v } else { v });
        }
        let v: BigInt = s.trim().parse().map_err(|_| ParseRationalError)?;
        Ok(Rational::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, 3).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = r(3, 7);
        let b = r(-2, 5);
        assert_eq!(&a + &b, r(1, 35));
        assert_eq!(&a - &b, r(29, 35));
        assert_eq!(&a * &b, r(-6, 35));
        assert_eq!(&a / &b, r(-15, 14));
        assert_eq!(&a + &Rational::zero(), a);
        assert_eq!(&a * &Rational::one(), a);
        assert_eq!(&a * &a.recip(), Rational::one());
        assert_eq!(&a + &(-a.clone()), Rational::zero());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(1, 100));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(7, 2).round(), BigInt::from(4)); // half away from zero
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(-7, 2).round(), BigInt::from(-4));
        assert_eq!(r(10, 5).floor(), BigInt::from(2));
        assert_eq!(r(10, 5).ceil(), BigInt::from(2));
        assert_eq!(r(1, 3).round(), BigInt::from(0));
        assert_eq!(r(2, 3).round(), BigInt::from(1));
    }

    #[test]
    fn dist_to_nearest() {
        assert_eq!(r(1, 3).dist_to_nearest_int(), r(1, 3));
        assert_eq!(r(2, 3).dist_to_nearest_int(), r(1, 3));
        assert_eq!(r(5, 2).dist_to_nearest_int(), r(1, 2));
        assert_eq!(r(4, 1).dist_to_nearest_int(), Rational::zero());
    }

    #[test]
    fn from_f64_exact() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(Rational::from_f64(-0.25).unwrap(), r(-1, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), r(3, 1));
        assert_eq!(Rational::from_f64(0.0).unwrap(), Rational::zero());
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
        // 0.1 is NOT 1/10 in binary; conversion must be exact, not pretty.
        let tenth = Rational::from_f64(0.1).unwrap();
        assert_ne!(tenth, r(1, 10));
        assert!((tenth.to_f64() - 0.1).abs() == 0.0);
    }

    #[test]
    fn f64_round_trip() {
        for v in [1.0, -1.5, 0.009288, 1e-5, 123456.789, 2f64.powi(80), 5e-324] {
            let rat = Rational::from_f64(v).unwrap();
            assert_eq!(rat.to_f64(), v, "round-trip {v}");
        }
    }

    #[test]
    fn to_f64_huge_ratio() {
        // (2^200 + 1) / 2^200 ~ 1.0
        let num = (BigUint::one() << 200) + BigUint::one();
        let rat = Rational::new(BigInt::from(num), BigInt::from(BigUint::one() << 200));
        assert!((rat.to_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("3 / 4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), r(5, 1));
        assert_eq!("0.5".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("-0.25".parse::<Rational>().unwrap(), r(-1, 4));
        assert_eq!("0.009288".parse::<Rational>().unwrap(), r(9288, 1_000_000));
        assert_eq!("-.5".parse::<Rational>().unwrap(), r(-1, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a.b".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
    }

    #[test]
    fn pow_signed() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(-2, 3).pow(3), r(-8, 27));
        assert_eq!(r(5, 7).pow(0), Rational::one());
    }

    #[test]
    fn table1_coefficients_exact() {
        // The β column of the paper's Table 1 parses exactly.
        let beta_pellinore = Rational::from_decimal_str("0.0000112").unwrap();
        assert_eq!(beta_pellinore, Rational::from_ratio(112, 10_000_000));
    }
}
