//! # gs-numeric — exact arithmetic substrate
//!
//! Arbitrary-precision unsigned/signed integers and exact rational numbers.
//!
//! The load-balancing heuristic of Genaud, Giersch & Vivien solves a linear
//! program *in rationals* and rounds the result (RR-4770, §3.3). Solving that
//! LP with floating point would make the guarantee of Eq. (4) unverifiable:
//! pivoting error can move the optimal vertex. This crate provides the exact
//! arithmetic the simplex solver (`gs-lp`) pivots over.
//!
//! Design notes:
//! * [`BigUint`] stores little-endian `u32` limbs so that schoolbook
//!   multiplication and Knuth division fit comfortably in `u64`/`u128`
//!   intermediates — no `unsafe`, no platform assumptions.
//! * [`BigInt`] is a sign-magnitude wrapper with truncating division.
//! * [`Rational`] is always kept normalized (`gcd(num, den) == 1`,
//!   `den > 0`), so equality is structural and hashing is sound.
//! * Every `f64` is a rational; [`Rational::from_f64`] converts exactly, so
//!   measured cost-model coefficients can enter the LP without loss.
//!
//! The types implement the usual operator traits for owned and borrowed
//! operands and `Display`/`FromStr` in decimal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, ParseBigIntError};
pub use rational::{ParseRationalError, Rational};

/// Greatest common divisor of two arbitrary-precision unsigned integers.
///
/// `gcd(0, x) == x` by convention. Delegates to [`BigUint::gcd`].
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    a.gcd(b)
}
