//! Property-based tests for the exact-arithmetic substrate.
//!
//! Oracles: `i128`/`u128` primitive arithmetic for values that fit, and
//! algebraic identities (field axioms) for values that do not.

use gs_numeric::{BigInt, BigUint, Rational};
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = (u128, BigUint)> {
    any::<u128>().prop_map(|v| (v, BigUint::from(v)))
}

fn rational_strategy() -> impl Strategy<Value = Rational> {
    (any::<i32>(), 1i32..=i32::MAX).prop_map(|(n, d)| Rational::from_ratio(n as i64, d as i64))
}

proptest! {
    // ---- BigUint vs u128 oracle -------------------------------------------

    #[test]
    fn add_matches_u128((a, ba) in biguint_strategy(), (b, bb) in biguint_strategy()) {
        let sum = &ba + &bb;
        match a.checked_add(b) {
            Some(s) => prop_assert_eq!(sum.to_u128(), Some(s)),
            None => prop_assert!(sum.bits() > 128),
        }
    }

    #[test]
    fn sub_matches_u128((a, ba) in biguint_strategy(), (b, bb) in biguint_strategy()) {
        match a.checked_sub(b) {
            Some(d) => prop_assert_eq!(ba.checked_sub(&bb).and_then(|x| x.to_u128()), Some(d)),
            None => prop_assert_eq!(ba.checked_sub(&bb), None),
        }
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn divrem_matches_u128((a, ba) in biguint_strategy(), (b, bb) in biguint_strategy()) {
        prop_assume!(b != 0);
        let (q, r) = ba.divrem(&bb);
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    /// Division identity holds beyond 128 bits: `a = q*d + r`, `r < d`.
    #[test]
    fn divrem_identity_large(
        a_lo in any::<u128>(), a_hi in any::<u128>(),
        d_lo in any::<u128>(), d_hi in 0u128..=u32::MAX as u128,
    ) {
        let a = (BigUint::from(a_hi) << 128) + BigUint::from(a_lo);
        let d = (BigUint::from(d_hi) << 128) + BigUint::from(d_lo);
        prop_assume!(!d.is_zero());
        let (q, r) = a.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn shifts_invert(v in any::<u128>(), s in 0u64..200) {
        let b = BigUint::from(v);
        prop_assert_eq!((&b << s) >> s, b);
    }

    #[test]
    fn gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        let g = ba.gcd(&bb);
        if a == 0 && b == 0 {
            prop_assert!(g.is_zero());
        } else {
            prop_assert_eq!((&ba) % (&g), BigUint::zero());
            prop_assert_eq!((&bb) % (&g), BigUint::zero());
            // Matches the primitive Euclid oracle.
            let (mut x, mut y) = (a, b);
            while y != 0 { let t = x % y; x = y; y = t; }
            prop_assert_eq!(g.to_u64(), Some(x));
        }
    }

    #[test]
    fn display_parse_round_trip(v in any::<u128>()) {
        let b = BigUint::from(v);
        prop_assert_eq!(b.to_string().parse::<BigUint>().unwrap(), b.clone());
        prop_assert_eq!(b.to_string(), v.to_string());
    }

    // ---- BigInt vs i128 oracle ---------------------------------------------

    #[test]
    fn bigint_ops_match_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!((&ba + &bb).to_i128(), Some(a + b));
        prop_assert_eq!((&ba - &bb).to_i128(), Some(a - b));
        prop_assert_eq!((&ba * &bb).to_i128(), Some(a * b));
        if b != 0 {
            let (q, r) = ba.divrem(&bb);
            prop_assert_eq!(q.to_i128(), Some(a / b));
            prop_assert_eq!(r.to_i128(), Some(a % b));
        }
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }

    // ---- Rational field axioms ----------------------------------------------

    #[test]
    fn rational_field_axioms(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        // Commutativity and associativity.
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // Distributivity.
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Inverses.
        prop_assert_eq!(&a + &(-a.clone()), Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
            prop_assert_eq!(&(&b / &a) * &a, b);
        }
    }

    #[test]
    fn rational_order_consistent(a in rational_strategy(), b in rational_strategy()) {
        prop_assert_eq!(a.cmp(&b), a.to_f64().partial_cmp(&b.to_f64()).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b)));
        // Adding the same value preserves order.
        let c = Rational::from_ratio(7, 3);
        prop_assert_eq!(a.cmp(&b), (&a + &c).cmp(&(&b + &c)));
    }

    #[test]
    fn rational_floor_ceil_bracket(a in rational_strategy()) {
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!((&ce - &fl) <= Rational::one());
        let rd = Rational::from(a.round());
        prop_assert!((&a - &rd).abs() <= Rational::from_ratio(1, 2));
    }

    #[test]
    fn rational_f64_exact_round_trip(v in any::<f64>()) {
        prop_assume!(v.is_finite());
        let r = Rational::from_f64(v).unwrap();
        prop_assert_eq!(r.to_f64(), v);
    }
}
