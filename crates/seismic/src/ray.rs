//! Travel-time ray tracing in a radially symmetric Earth.
//!
//! For a ray parameter `p` (seconds per radian), classical 1-D ray theory
//! gives the epicentral distance and travel time of a mantle ray as
//! integrals over radius:
//!
//! ```text
//! Δ(p) = Σ_legs ∫  p  / (r·sqrt(η(r)² − p²)) dr
//! T(p) = Σ_legs ∫ η(r)²/ (r·sqrt(η(r)² − p²)) dr,     η(r) = r / v(r)
//! ```
//!
//! with one leg from the turning radius `r_t` (where `η(r_t) = p`) up to
//! the surface, and one from `r_t` up to the source radius. Tracing a ray
//! means *shooting*: bisecting on `p` until `Δ(p)` matches the
//! source–receiver distance, then integrating `T`. This is genuinely
//! iterative numeric work whose cost varies with the geometry — exactly
//! the per-item compute the paper's scatter distributes.
//!
//! Rays beyond the deepest mantle-turning distance are handled with the
//! standard core-diffraction approximation: travel along the deepest
//! mantle ray plus `p_min · (Δ − Δ_max)` seconds of diffraction along the
//! core–mantle boundary.
//!
//! Accuracy notes: the `1/sqrt` turning-point singularity is integrable; a
//! quadratically graded midpoint rule (`r = r_t + (r_hi − r_t)·u²`)
//! resolves it without special functions. We care about smooth, monotone,
//! deterministic behaviour more than about matching published travel-time
//! tables.

use crate::model::{EarthModel, EARTH_RADIUS_KM};

/// Integration substeps per leg. More steps = smoother Δ(p), more work
/// per ray.
const INTEGRATION_STEPS: usize = 96;
/// Bisection tolerance on epicentral distance, radians.
const DELTA_TOL_RAD: f64 = 1e-6;
/// Maximum bisection iterations.
const MAX_ITERS: usize = 80;
/// Core–mantle boundary radius, km.
const R_CMB: f64 = 3479.5;
/// Lowest radius used when probing mantle properties: a hair above the
/// CMB so layer lookup lands on the mantle side (the core side has
/// `v_s = 0` and a different `v_p`).
const R_MANTLE_BOTTOM: f64 = R_CMB + 1e-3;

/// A traced ray.
#[derive(Debug, Clone, PartialEq)]
pub struct RayPath {
    /// Travel time, seconds.
    pub travel_time: f64,
    /// Ray parameter `p`, s/rad.
    pub ray_param: f64,
    /// Turning radius, km.
    pub turning_radius: f64,
    /// Epicentral distance actually achieved, radians.
    pub delta: f64,
    /// Bisection iterations used (a proxy for per-ray cost).
    pub iterations: usize,
    /// `true` when the core-diffraction fallback was used.
    pub diffracted: bool,
}

/// Epicentral distance (one ray, both legs) for ray parameter `p`,
/// source at radius `rs`. Radians.
fn delta_of_p(model: &EarthModel, p_wave: bool, p: f64, rs: f64) -> Option<f64> {
    let rt = turning_radius(model, p_wave, p)?;
    if rt >= rs {
        return None; // ray turns above the source: not a down-going ray
    }
    let leg_surface = leg_integrals(model, p_wave, p, rt, EARTH_RADIUS_KM).0;
    let leg_source = leg_integrals(model, p_wave, p, rt, rs).0;
    Some(leg_surface + leg_source)
}

/// Travel time for ray parameter `p`, source at radius `rs`. Seconds.
fn time_of_p(model: &EarthModel, p_wave: bool, p: f64, rs: f64) -> Option<f64> {
    let rt = turning_radius(model, p_wave, p)?;
    if rt >= rs {
        return None;
    }
    let leg_surface = leg_integrals(model, p_wave, p, rt, EARTH_RADIUS_KM).1;
    let leg_source = leg_integrals(model, p_wave, p, rt, rs).1;
    Some(leg_surface + leg_source)
}

/// Finds the mantle turning radius `η(r_t) = p` by bisection over the
/// mantle+crust (where `η` is monotone increasing outward). `None` when
/// `p` is outside the mantle-ray range.
fn turning_radius(model: &EarthModel, p_wave: bool, p: f64) -> Option<f64> {
    let (mut lo, mut hi) = (R_MANTLE_BOTTOM, EARTH_RADIUS_KM);
    let eta_lo = model.eta(lo, p_wave);
    let eta_hi = model.eta(hi, p_wave);
    if p <= eta_lo || p >= eta_hi {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if model.eta(mid, p_wave) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    Some(0.5 * (lo + hi))
}

/// `(Δ_leg, T_leg)` from the turning radius `rt` up to `r_hi`, with a
/// quadratically graded midpoint rule to absorb the turning-point
/// singularity.
fn leg_integrals(model: &EarthModel, p_wave: bool, p: f64, rt: f64, r_hi: f64) -> (f64, f64) {
    if r_hi <= rt {
        return (0.0, 0.0);
    }
    let span = r_hi - rt;
    let mut delta = 0.0f64;
    let mut time = 0.0f64;
    let du = 1.0 / INTEGRATION_STEPS as f64;
    for k in 0..INTEGRATION_STEPS {
        let u = (k as f64 + 0.5) * du;
        let r = rt + span * u * u;
        let dr = span * 2.0 * u * du;
        let eta = model.eta(r, p_wave);
        let q2 = eta * eta - p * p;
        if q2 <= 0.0 {
            continue; // only possible in the first cell by rounding
        }
        let q = q2.sqrt();
        delta += p / (r * q) * dr;
        time += eta * eta / (r * q) * dr;
    }
    (delta, time)
}

/// Traces the ray from a source at `depth_km` to a receiver at epicentral
/// distance `delta_rad` (radians), for a P (`p_wave = true`) or S wave.
///
/// # Panics
/// Panics if `delta_rad` is not in `(0, π]` or the depth is not within the
/// mantle/crust (`0 <= depth < 2800 km`).
pub fn trace_ray(model: &EarthModel, p_wave: bool, depth_km: f64, delta_rad: f64) -> RayPath {
    assert!(
        delta_rad > 0.0 && delta_rad <= std::f64::consts::PI,
        "epicentral distance {delta_rad} rad out of range"
    );
    assert!(
        (0.0..2800.0).contains(&depth_km),
        "source depth {depth_km} km outside the mantle/crust"
    );
    let rs = EARTH_RADIUS_KM - depth_km;
    // Usable ray-parameter window: just above the mantle-side CMB slowness
    // up to just below the source-radius slowness (the ray must go down).
    let p_min = model.eta(R_MANTLE_BOTTOM, p_wave) * (1.0 + 1e-6);
    let p_max = model.eta(rs, p_wave) * (1.0 - 1e-9);

    // Δ is monotone in p on this window for our monotone-η model:
    // evaluate the ends.
    let d_min = delta_of_p(model, p_wave, p_min, rs).unwrap_or(0.0);
    let d_max = delta_of_p(model, p_wave, p_max, rs).unwrap_or(0.0);
    let (deep_p, deep_delta) = (p_min, d_min);

    // Deeper rays travel farther: Δ(p_min) is the farthest a mantle ray
    // reaches. Beyond it: core diffraction.
    if delta_rad >= deep_delta {
        let rt = turning_radius(model, p_wave, deep_p).unwrap_or(R_CMB);
        let t_deep = time_of_p(model, p_wave, deep_p, rs).unwrap_or(0.0);
        let extra = (delta_rad - deep_delta) * deep_p;
        return RayPath {
            travel_time: t_deep + extra,
            ray_param: deep_p,
            turning_radius: rt,
            delta: delta_rad,
            iterations: 0,
            diffracted: true,
        };
    }

    // Bisection on p. Invariant: Δ(lo_p) >= target >= Δ(hi_p) because Δ
    // decreases as p grows (shallower turning).
    let (mut lo_p, mut hi_p) = (p_min, p_max);
    let (mut lo_d, mut hi_d) = (d_min, d_max);
    let mut iterations = 0;
    let mut p = 0.5 * (lo_p + hi_p);
    for _ in 0..MAX_ITERS {
        iterations += 1;
        p = 0.5 * (lo_p + hi_p);
        let d = delta_of_p(model, p_wave, p, rs).unwrap_or(0.0);
        if (d - delta_rad).abs() < DELTA_TOL_RAD {
            break;
        }
        if d > delta_rad {
            lo_p = p;
            lo_d = d;
        } else {
            hi_p = p;
            hi_d = d;
        }
        let _ = (lo_d, hi_d);
    }

    let rt = turning_radius(model, p_wave, p).unwrap_or(R_CMB);
    let t = time_of_p(model, p_wave, p, rs).unwrap_or(0.0);
    RayPath {
        travel_time: t,
        ray_param: p,
        turning_radius: rt,
        delta: delta_rad,
        iterations,
        diffracted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EarthModel {
        EarthModel::default()
    }

    #[test]
    fn travel_time_increases_with_distance() {
        let m = model();
        let mut prev = 0.0;
        for deg in [5.0f64, 10.0, 20.0, 40.0, 60.0, 80.0] {
            let ray = trace_ray(&m, true, 10.0, deg.to_radians());
            assert!(
                ray.travel_time > prev,
                "T must grow with Δ: {} at {deg}°",
                ray.travel_time
            );
            prev = ray.travel_time;
        }
    }

    #[test]
    fn p_faster_than_s() {
        let m = model();
        for deg in [10.0f64, 30.0, 60.0] {
            let p = trace_ray(&m, true, 15.0, deg.to_radians());
            let s = trace_ray(&m, false, 15.0, deg.to_radians());
            assert!(
                s.travel_time > 1.5 * p.travel_time,
                "S must be much slower at {deg}°: {} vs {}",
                s.travel_time,
                p.travel_time
            );
        }
    }

    #[test]
    fn deeper_rays_turn_deeper() {
        let m = model();
        let near = trace_ray(&m, true, 10.0, 10f64.to_radians());
        let far = trace_ray(&m, true, 10.0, 70f64.to_radians());
        assert!(far.turning_radius < near.turning_radius);
    }

    #[test]
    fn plausible_p_travel_time_at_60_degrees() {
        // Real Earth: P at 60° ≈ 600 s. Our simplified model should land
        // in the same ballpark (±25%).
        let m = model();
        let ray = trace_ray(&m, true, 33.0, 60f64.to_radians());
        assert!(
            (450.0..750.0).contains(&ray.travel_time),
            "P(60°) = {} s",
            ray.travel_time
        );
    }

    #[test]
    fn distant_rays_use_diffraction() {
        let m = model();
        let ray = trace_ray(&m, true, 10.0, 170f64.to_radians());
        assert!(ray.diffracted);
        // Diffracted time still grows with distance.
        let farther = trace_ray(&m, true, 10.0, 175f64.to_radians());
        assert!(farther.travel_time > ray.travel_time);
    }

    #[test]
    fn shallow_vs_deep_source() {
        // A deeper source shortens the up-going leg: less travel time for
        // the same epicentral distance.
        let m = model();
        let shallow = trace_ray(&m, true, 5.0, 40f64.to_radians());
        let deep = trace_ray(&m, true, 300.0, 40f64.to_radians());
        assert!(deep.travel_time < shallow.travel_time);
    }

    #[test]
    fn achieved_delta_matches_request() {
        let m = model();
        for deg in [15.0f64, 45.0, 75.0] {
            let target = deg.to_radians();
            let ray = trace_ray(&m, true, 20.0, target);
            if !ray.diffracted {
                // Re-evaluate Δ(p) and compare with the request.
                let rs = EARTH_RADIUS_KM - 20.0;
                let d = super::delta_of_p(&m, true, ray.ray_param, rs).unwrap();
                assert!(
                    (d - target).abs() < 1e-3,
                    "Δ mismatch at {deg}°: {d} vs {target}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let m = model();
        let a = trace_ray(&m, false, 42.0, 33f64.to_radians());
        let b = trace_ray(&m, false, 42.0, 33f64.to_radians());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_distance() {
        let _ = trace_ray(&model(), true, 10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the mantle")]
    fn rejects_core_source() {
        let _ = trace_ray(&model(), true, 3000.0, 1.0);
    }
}
