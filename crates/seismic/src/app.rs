//! The parallel tomography application of §2.2, on `gs-minimpi`.
//!
//! The original pseudo-code:
//!
//! ```text
//! if (rank = ROOT)
//!     raydata <- read n lines from data file;
//! MPI_Scatter(raydata, n/P, ..., rbuff, ..., ROOT, MPI_COMM_WORLD);
//! compute_work(rbuff);
//! ```
//!
//! and the paper's transformation: replace `MPI_Scatter` with
//! `MPI_Scatterv` parameterized by a planned distribution. This module
//! implements both variants behind [`TomoConfig::strategy`] (the
//! [`Strategy::Uniform`] plan *is* the original program).
//!
//! Ranks are laid out **in scatter order** (rank `i` is the `i`-th
//! processor the root serves; the root is the last rank), so the runtime's
//! rank-ordered scatterv reproduces the planned order exactly. Virtual
//! time replays the platform's heterogeneity; wall time measures the real
//! ray tracing performed by the host threads.

use std::time::Instant;

use gs_minimpi::{run_world, TimeModel, WorldConfig};
use gs_scatter::cost::Platform;
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::planner::{Plan, Planner, Strategy};

use crate::catalog::{generate_catalog, Event, GeoPoint, WaveType};
use crate::model::EarthModel;
use crate::ray::trace_ray;

/// Wire size of one encoded ray description (6 × f64: source lat/lon/depth,
/// station lat/lon, wave type).
pub const ITEM_BYTES: usize = 48;
const F64S_PER_EVENT: usize = 6;

/// Configuration of a tomography run.
#[derive(Debug, Clone)]
pub struct TomoConfig {
    /// The (possibly heterogeneous) platform to emulate.
    pub platform: Platform,
    /// Distribution strategy (Uniform = the unmodified application).
    pub strategy: Strategy,
    /// Processor ordering policy.
    pub policy: OrderPolicy,
    /// Number of rays.
    pub n_rays: usize,
    /// Catalog seed.
    pub seed: u64,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct TomoReport {
    /// The plan that was executed.
    pub plan: Plan,
    /// Machine names, in scatter order.
    pub names: Vec<String>,
    /// Per-rank virtual finish time (scatter order): Eq. (1) realized by
    /// the runtime.
    pub virtual_finish: Vec<f64>,
    /// Max of `virtual_finish` — the emulated grid's makespan.
    pub virtual_makespan: f64,
    /// Sum of all traced travel times (checksum of the real computation).
    pub checksum: f64,
    /// Real wall-clock duration of the whole parallel run, seconds.
    pub wall_seconds: f64,
    /// Rays traced (= `n_rays`).
    pub rays_traced: usize,
}

/// Encodes events as a flat f64 buffer (root side).
pub fn encode_events(events: &[Event]) -> Vec<f64> {
    let mut out = Vec::with_capacity(events.len() * F64S_PER_EVENT);
    for e in events {
        out.push(e.source.lat_deg);
        out.push(e.source.lon_deg);
        out.push(e.source.depth_km);
        out.push(e.station.lat_deg);
        out.push(e.station.lon_deg);
        out.push(if e.wave == WaveType::P { 0.0 } else { 1.0 });
    }
    out
}

/// Decodes a buffer produced by [`encode_events`].
pub fn decode_events(buf: &[f64]) -> Vec<Event> {
    assert_eq!(buf.len() % F64S_PER_EVENT, 0, "corrupt ray buffer");
    buf.chunks_exact(F64S_PER_EVENT)
        .map(|c| Event {
            source: GeoPoint { lat_deg: c[0], lon_deg: c[1], depth_km: c[2] },
            station: GeoPoint { lat_deg: c[3], lon_deg: c[4], depth_km: 0.0 },
            wave: if c[5] == 0.0 { WaveType::P } else { WaveType::S },
        })
        .collect()
}

/// Runs the parallel tomography application and reports both the virtual
/// (emulated-grid) schedule and the real computation's checksum.
pub fn run_tomography(config: &TomoConfig) -> Result<TomoReport, gs_scatter::error::PlanError> {
    let plan = Planner::new(config.platform.clone())
        .strategy(config.strategy)
        .order_policy(config.policy)
        .plan(config.n_rays)?;

    // Ranks in scatter order: re-index the platform so rank i == the i-th
    // served processor, root last.
    let p = config.platform.len();
    let ordered_procs: Vec<_> = config
        .platform
        .ordered(&plan.order)
        .into_iter()
        .cloned()
        .collect();
    let names: Vec<String> = ordered_procs.iter().map(|pr| pr.name.clone()).collect();
    let ordered_platform = Platform::new(ordered_procs, p - 1).expect("valid reordering");
    let time_model = TimeModel::from_platform(&ordered_platform, ITEM_BYTES);

    let counts_items = plan.counts_in_order();
    let counts_elems: Vec<usize> = counts_items.iter().map(|c| c * F64S_PER_EVENT).collect();
    let root_rank = p - 1;
    let n_rays = config.n_rays;
    let seed = config.seed;

    let start = Instant::now();
    let per_rank = run_world(p, WorldConfig::with_time(time_model), |comm| {
        let model = EarthModel::default();
        // §2.2: the root reads the ray data...
        let sendbuf: Option<Vec<f64>> = if comm.rank() == root_rank {
            Some(encode_events(&generate_catalog(n_rays, seed)))
        } else {
            None
        };
        // ...and scatters it (scatterv with the planned counts; with the
        // Uniform strategy this is exactly the original MPI_Scatter).
        let mine = comm.scatterv(root_rank, sendbuf.as_deref(), &counts_elems);
        let events = decode_events(&mine);

        // compute_work(rbuff): trace every ray. Real work on the host...
        let mut travel_times = Vec::with_capacity(events.len());
        for ev in &events {
            let ray = trace_ray(
                &model,
                ev.wave == WaveType::P,
                ev.source.depth_km,
                ev.delta().max(0.01),
            );
            travel_times.push(ray.travel_time);
        }
        // ...and modelled time on the emulated grid machine.
        comm.model_compute(events.len());
        let finish = comm.now();

        // Send results home (free on the virtual clock: the root's inbound
        // link is not the contended resource in the paper's model).
        let gathered = comm.gatherv(root_rank, &travel_times);
        let checksum = gathered.map(|all| all.iter().sum::<f64>());
        (finish, checksum, events.len())
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let virtual_finish: Vec<f64> = per_rank.iter().map(|(f, _, _)| *f).collect();
    let virtual_makespan = virtual_finish.iter().copied().fold(0.0, f64::max);
    let checksum = per_rank[root_rank].1.expect("root gathered all travel times");
    let rays_traced: usize = per_rank.iter().map(|(_, _, n)| n).sum();
    assert_eq!(rays_traced, n_rays, "every ray must be traced exactly once");

    Ok(TomoReport {
        plan,
        names,
        virtual_finish,
        virtual_makespan,
        checksum,
        wall_seconds,
        rays_traced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::trace_events_sum;
    use gs_scatter::cost::Processor;

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("root", 0.0, 0.010),
                Processor::linear("fast", 1e-4, 0.004),
                Processor::linear("slow", 2e-4, 0.016),
            ],
            0,
        )
        .unwrap()
    }

    fn config(strategy: Strategy) -> TomoConfig {
        TomoConfig {
            platform: platform(),
            strategy,
            policy: OrderPolicy::DescendingBandwidth,
            n_rays: 150,
            seed: 42,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let events = generate_catalog(25, 9);
        assert_eq!(decode_events(&encode_events(&events)), events);
    }

    #[test]
    fn parallel_checksum_matches_serial() {
        let report = run_tomography(&config(Strategy::Heuristic)).unwrap();
        let model = EarthModel::default();
        let serial = trace_events_sum(&model, &generate_catalog(150, 42));
        let rel = (report.checksum - serial).abs() / serial;
        assert!(rel < 1e-12, "parallel {} vs serial {serial}", report.checksum);
        assert_eq!(report.rays_traced, 150);
    }

    #[test]
    fn virtual_schedule_matches_plan_prediction() {
        let report = run_tomography(&config(Strategy::Heuristic)).unwrap();
        let predicted = &report.plan.predicted;
        for (i, (&actual, &expect)) in report
            .virtual_finish
            .iter()
            .zip(&predicted.finish)
            .enumerate()
        {
            // Skip empty shares: Eq. (1) charges their Tcomp(0) = 0 anyway.
            let tol = 1e-9 * expect.abs().max(1.0);
            assert!(
                (actual - expect).abs() < tol,
                "rank {i}: runtime {actual} vs model {expect}"
            );
        }
        let tol = 1e-9 * report.plan.predicted_makespan.max(1.0);
        assert!((report.virtual_makespan - report.plan.predicted_makespan).abs() < tol);
    }

    #[test]
    fn balanced_beats_uniform_in_virtual_time() {
        let uniform = run_tomography(&config(Strategy::Uniform)).unwrap();
        let balanced = run_tomography(&config(Strategy::Heuristic)).unwrap();
        assert!(
            balanced.virtual_makespan < uniform.virtual_makespan,
            "balanced {} vs uniform {}",
            balanced.virtual_makespan,
            uniform.virtual_makespan
        );
        // Same work either way.
        let rel = (balanced.checksum - uniform.checksum).abs() / uniform.checksum;
        assert!(rel < 1e-9, "checksums must agree");
    }

    #[test]
    fn names_follow_scatter_order() {
        let report = run_tomography(&config(Strategy::Heuristic)).unwrap();
        assert_eq!(report.names.last().unwrap(), "root");
        assert_eq!(report.names.len(), 3);
        // Descending bandwidth: fast link (1e-4) before slow link (2e-4).
        assert_eq!(report.names[0], "fast");
    }
}
