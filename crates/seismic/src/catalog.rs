//! Synthetic seismic-event catalogs.
//!
//! The paper traces "the full set of seismic events of year 1999"
//! (817,101 rays from the ISC catalog). That catalog is not
//! redistributable here, so this module generates a synthetic one with the
//! same *structure*: epicentres clustered on great-circle "seismic belts"
//! (plus a diffuse background), mostly shallow depths with a deep-focus
//! tail, recorded at a fixed global station network, P- and S-wave picks.
//! Everything is seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point on/inside the Earth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude, degrees, `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude, degrees, `[-180, 180)`.
    pub lon_deg: f64,
    /// Depth below the surface, km (0 for stations).
    pub depth_km: f64,
}

impl GeoPoint {
    /// Epicentral distance to another point, radians (spherical law of
    /// cosines, depth ignored — the tracer handles depth separately).
    pub fn epicentral_distance(&self, other: &GeoPoint) -> f64 {
        let (f1, f2) = (self.lat_deg.to_radians(), other.lat_deg.to_radians());
        let dl = (self.lon_deg - other.lon_deg).to_radians();
        let c = f1.sin() * f2.sin() + f1.cos() * f2.cos() * dl.cos();
        c.clamp(-1.0, 1.0).acos()
    }
}

/// Seismic phase type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveType {
    /// Compressional wave.
    P,
    /// Shear wave.
    S,
}

/// One ray to trace: an event recorded at a station.
///
/// Matches the paper's description of an input item: "a pair of 3D
/// coordinates (the coordinates of the earthquake source and those of the
/// receiving captor) plus the wave type" (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Earthquake hypocentre.
    pub source: GeoPoint,
    /// Receiving station (depth 0).
    pub station: GeoPoint,
    /// Phase.
    pub wave: WaveType,
}

impl Event {
    /// Source→station epicentral distance, radians.
    pub fn delta(&self) -> f64 {
        self.source.epicentral_distance(&self.station)
    }
}

/// A fixed global station network (name, lat, lon) — a coarse subset of
/// real networks (GSN-like coverage).
pub const STATIONS: &[(&str, f64, f64)] = &[
    ("ANMO", 34.95, -106.46),
    ("COLA", 64.87, -147.86),
    ("HRV", 42.51, -71.56),
    ("PFO", 33.61, -116.46),
    ("TUC", 32.31, -110.78),
    ("SJG", 18.11, -66.15),
    ("PTGA", -0.73, -59.97),
    ("NNA", -11.99, -76.84),
    ("LPAZ", -16.29, -68.13),
    ("PLCA", -40.73, -70.55),
    ("ESK", 55.33, -3.21),
    ("KONO", 59.65, 9.60),
    ("GRFO", 49.69, 11.22),
    ("PAB", 39.55, -4.35),
    ("TAM", 22.79, 5.53),
    ("KMBO", -1.13, 37.25),
    ("LSZ", -15.28, 28.19),
    ("SUR", -32.38, 20.81),
    ("KIV", 43.96, 42.69),
    ("AAK", 42.64, 74.49),
    ("ABKT", 37.93, 58.12),
    ("CHTO", 18.81, 98.94),
    ("HYB", 17.42, 78.55),
    ("ENH", 30.28, 109.49),
    ("BJT", 40.02, 116.17),
    ("INCN", 37.48, 126.62),
    ("MAJO", 36.54, 138.21),
    ("ERM", 42.02, 143.16),
    ("GUMO", 13.59, 144.87),
    ("DAV", 7.07, 125.58),
    ("COCO", -12.19, 96.83),
    ("NWAO", -32.93, 117.24),
    ("CTAO", -20.09, 146.25),
    ("SNZO", -41.31, 174.70),
    ("RAR", -21.21, -159.77),
    ("KIP", 21.42, -158.02),
    ("PTCN", -25.07, -130.10),
    ("RPN", -27.13, -109.33),
    ("SBA", -77.85, 166.76),
    ("SPA", -90.00, 0.00),
];

/// A `(lat, lon)` pair in degrees.
type LatLon = (f64, f64);

/// Parametric "seismic belts": (start lat/lon, end lat/lon) great-circle
/// segments roughly sketching the circum-Pacific and Alpide belts and the
/// mid-Atlantic ridge.
const BELTS: &[(LatLon, LatLon)] = &[
    // Circum-Pacific west: Kamchatka → Japan → Philippines → New Zealand
    ((55.0, 160.0), (-40.0, 175.0)),
    // Circum-Pacific east: Alaska → California → Chile
    ((60.0, -150.0), (-35.0, -72.0)),
    // Alpide: Mediterranean → Himalaya → Indonesia
    ((38.0, 15.0), (-5.0, 125.0)),
    // Mid-Atlantic ridge
    ((60.0, -25.0), (-40.0, -15.0)),
];

/// Generates `n` events with the given RNG seed. Deterministic: the same
/// `(n, seed)` always produces the same catalog.
pub fn generate_catalog(n: usize, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let source = random_hypocentre(&mut rng);
        let (_, slat, slon) = STATIONS[rng.gen_range(0..STATIONS.len())];
        let station = GeoPoint { lat_deg: slat, lon_deg: slon, depth_km: 0.0 };
        // ~72% of picks are P (first arrivals dominate real bulletins).
        let wave = if rng.gen_bool(0.72) { WaveType::P } else { WaveType::S };
        let ev = Event { source, station, wave };
        // Keep distances the tracer accepts: skip near-zero separations.
        if ev.delta() > 0.01 {
            out.push(ev);
        }
    }
    out
}

fn random_hypocentre(rng: &mut StdRng) -> GeoPoint {
    // 85% on a belt (with ~3° scatter), 15% diffuse background.
    let (lat, lon) = if rng.gen_bool(0.85) {
        let ((lat0, lon0), (lat1, lon1)) = BELTS[rng.gen_range(0..BELTS.len())];
        let t: f64 = rng.gen_range(0.0..1.0);
        (
            lat0 + t * (lat1 - lat0) + rng.gen_range(-3.0..3.0),
            lon0 + t * (lon1 - lon0) + rng.gen_range(-3.0..3.0),
        )
    } else {
        // Uniform on the sphere: lon uniform, sin(lat) uniform.
        let z: f64 = rng.gen_range(-1.0f64..1.0);
        (z.asin().to_degrees(), rng.gen_range(-180.0..180.0))
    };
    // Depth: mostly shallow (exponential, mean 35 km), 8% deep-focus.
    let depth = if rng.gen_bool(0.08) {
        rng.gen_range(300.0..690.0)
    } else {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        (-(1.0 - u).ln() * 35.0).min(290.0)
    };
    GeoPoint {
        lat_deg: lat.clamp(-89.9, 89.9),
        lon_deg: wrap_lon(lon),
        depth_km: depth.max(1.0),
    }
}

fn wrap_lon(lon: f64) -> f64 {
    let mut l = (lon + 180.0) % 360.0;
    if l < 0.0 {
        l += 360.0;
    }
    l - 180.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(generate_catalog(50, 7), generate_catalog(50, 7));
        assert_ne!(generate_catalog(50, 7), generate_catalog(50, 8));
    }

    #[test]
    fn requested_size() {
        assert_eq!(generate_catalog(123, 1).len(), 123);
        assert!(generate_catalog(0, 1).is_empty());
    }

    #[test]
    fn fields_in_valid_ranges() {
        for ev in generate_catalog(500, 42) {
            assert!((-90.0..=90.0).contains(&ev.source.lat_deg));
            assert!((-180.0..180.0).contains(&ev.source.lon_deg));
            assert!((1.0..700.0).contains(&ev.source.depth_km));
            assert_eq!(ev.station.depth_km, 0.0);
            assert!(ev.delta() > 0.0 && ev.delta() <= std::f64::consts::PI);
        }
    }

    #[test]
    fn both_wave_types_present() {
        let cat = generate_catalog(300, 3);
        let p = cat.iter().filter(|e| e.wave == WaveType::P).count();
        assert!(p > 150 && p < 290, "P fraction plausible: {p}/300");
    }

    #[test]
    fn depth_distribution_mostly_shallow() {
        let cat = generate_catalog(1000, 11);
        let shallow = cat.iter().filter(|e| e.source.depth_km < 100.0).count();
        let deep = cat.iter().filter(|e| e.source.depth_km > 300.0).count();
        assert!(shallow > 700, "shallow {shallow}");
        assert!(deep > 30 && deep < 200, "deep {deep}");
    }

    #[test]
    fn epicentral_distance_sane() {
        let np = GeoPoint { lat_deg: 90.0, lon_deg: 0.0, depth_km: 0.0 };
        let sp = GeoPoint { lat_deg: -90.0, lon_deg: 0.0, depth_km: 0.0 };
        let eq = GeoPoint { lat_deg: 0.0, lon_deg: 0.0, depth_km: 0.0 };
        assert!((np.epicentral_distance(&sp) - std::f64::consts::PI).abs() < 1e-12);
        assert!((np.epicentral_distance(&eq) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(eq.epicentral_distance(&eq), 0.0);
    }

    #[test]
    fn wrap_lon_normalizes() {
        assert_eq!(wrap_lon(0.0), 0.0);
        assert_eq!(wrap_lon(190.0), -170.0);
        assert_eq!(wrap_lon(-190.0), 170.0);
        assert_eq!(wrap_lon(360.0), 0.0);
    }
}
