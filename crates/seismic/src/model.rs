//! Layered spherical-Earth velocity model.
//!
//! Velocities are piecewise linear in radius within named layers, with the
//! P and S profiles loosely following ak135 — close enough that rays
//! behave like rays (turning points deepen with distance, S slower than P,
//! the core shadows S) while staying a few dozen lines of data.

/// Mean Earth radius, kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// One spherical shell with linear velocity profiles.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Layer name (for reports).
    pub name: &'static str,
    /// Inner radius, km.
    pub r_bottom: f64,
    /// Outer radius, km.
    pub r_top: f64,
    /// P velocity at the bottom/top of the layer, km/s.
    pub vp: (f64, f64),
    /// S velocity at the bottom/top, km/s (0 in the fluid outer core).
    pub vs: (f64, f64),
}

/// A radially symmetric velocity model: concentric [`Layer`]s covering
/// `0..EARTH_RADIUS_KM`.
#[derive(Debug, Clone)]
pub struct EarthModel {
    layers: Vec<Layer>,
}

impl EarthModel {
    /// A simplified ak135-flavoured model: inner core, outer core (fluid),
    /// lower/upper mantle, crust.
    pub fn ak135_simplified() -> Self {
        // (bottom_r, top_r, vp_bottom, vp_top, vs_bottom, vs_top)
        let layers = vec![
            Layer {
                name: "inner core",
                r_bottom: 0.0,
                r_top: 1217.5,
                vp: (11.26, 11.03),
                vs: (3.67, 3.50),
            },
            Layer {
                name: "outer core",
                r_bottom: 1217.5,
                r_top: 3479.5,
                vp: (10.29, 8.00),
                vs: (0.0, 0.0), // fluid: no shear waves
            },
            Layer {
                name: "lower mantle",
                r_bottom: 3479.5,
                r_top: 5711.0,
                vp: (13.66, 10.20),
                vs: (7.28, 5.61),
            },
            Layer {
                name: "upper mantle",
                r_bottom: 5711.0,
                r_top: 6336.0,
                vp: (10.20, 8.04),
                vs: (5.61, 4.48),
            },
            Layer {
                name: "crust",
                r_bottom: 6336.0,
                r_top: EARTH_RADIUS_KM,
                vp: (6.50, 5.80),
                vs: (3.85, 3.46),
            },
        ];
        EarthModel { layers }
    }

    /// The layers, from the centre outwards.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// P-wave velocity at radius `r` km.
    pub fn vp(&self, r: f64) -> f64 {
        self.velocity(r, true)
    }

    /// S-wave velocity at radius `r` km (0 inside the fluid outer core).
    pub fn vs(&self, r: f64) -> f64 {
        self.velocity(r, false)
    }

    fn velocity(&self, r: f64, p_wave: bool) -> f64 {
        let r = r.clamp(0.0, EARTH_RADIUS_KM);
        let layer = self
            .layers
            .iter()
            .find(|l| r >= l.r_bottom && r <= l.r_top)
            .expect("layers cover the whole radius range");
        let (v_bot, v_top) = if p_wave { layer.vp } else { layer.vs };
        if layer.r_top == layer.r_bottom {
            return v_top;
        }
        let t = (r - layer.r_bottom) / (layer.r_top - layer.r_bottom);
        v_bot + t * (v_top - v_bot)
    }

    /// Slowness parameter `η(r) = r / v(r)` in s·km/km... i.e. seconds per
    /// radian when `r` is in km and `v` in km/s. Returns `f64::INFINITY`
    /// where the velocity vanishes (S in the outer core), which naturally
    /// blocks S rays from bottoming there.
    pub fn eta(&self, r: f64, p_wave: bool) -> f64 {
        let v = self.velocity(r, p_wave);
        if v <= 0.0 {
            f64::INFINITY
        } else {
            r / v
        }
    }
}

impl EarthModel {
    /// Returns a copy with each layer's velocities multiplied by the
    /// corresponding factor (one per layer, centre outwards). This is the
    /// parameterization the tomographic inversion updates.
    ///
    /// # Panics
    /// Panics if the factor count does not match the layer count or a
    /// factor is not positive.
    pub fn scaled(&self, layer_factors: &[f64]) -> EarthModel {
        assert_eq!(
            layer_factors.len(),
            self.layers.len(),
            "one factor per layer"
        );
        let layers = self
            .layers
            .iter()
            .zip(layer_factors)
            .map(|(l, &f)| {
                assert!(f.is_finite() && f > 0.0, "invalid layer factor {f}");
                Layer {
                    vp: (l.vp.0 * f, l.vp.1 * f),
                    vs: (l.vs.0 * f, l.vs.1 * f),
                    ..l.clone()
                }
            })
            .collect();
        EarthModel { layers }
    }

    /// Index of the layer containing radius `r` (clamped into range).
    pub fn layer_of(&self, r: f64) -> usize {
        let r = r.clamp(0.0, EARTH_RADIUS_KM);
        self.layers
            .iter()
            .position(|l| r >= l.r_bottom && r <= l.r_top)
            .expect("layers cover the whole range")
    }
}

impl Default for EarthModel {
    fn default() -> Self {
        EarthModel::ak135_simplified()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_tile_the_earth() {
        let m = EarthModel::default();
        let ls = m.layers();
        assert_eq!(ls[0].r_bottom, 0.0);
        assert_eq!(ls.last().unwrap().r_top, EARTH_RADIUS_KM);
        for w in ls.windows(2) {
            assert_eq!(w[0].r_top, w[1].r_bottom, "no gaps or overlaps");
        }
    }

    #[test]
    fn velocities_are_physical() {
        let m = EarthModel::default();
        for r in [0.0, 500.0, 2000.0, 4000.0, 6000.0, 6371.0] {
            let vp = m.vp(r);
            let vs = m.vs(r);
            assert!(vp > 0.0, "vp > 0 at r={r}");
            assert!(vs >= 0.0);
            assert!(vs < vp, "S slower than P at r={r}");
        }
    }

    #[test]
    fn outer_core_is_fluid() {
        let m = EarthModel::default();
        assert_eq!(m.vs(2000.0), 0.0);
        assert!(m.vp(2000.0) > 0.0);
        assert_eq!(m.eta(2000.0, false), f64::INFINITY);
    }

    #[test]
    fn velocity_interpolates_within_layer() {
        let m = EarthModel::default();
        // Crust: 6336 → 6371 km, vp 6.5 → 5.8.
        let mid = m.vp((6336.0 + EARTH_RADIUS_KM) / 2.0);
        assert!((mid - 6.15).abs() < 1e-9);
    }

    #[test]
    fn surface_velocities_match_table() {
        let m = EarthModel::default();
        assert!((m.vp(EARTH_RADIUS_KM) - 5.8).abs() < 1e-12);
        assert!((m.vs(EARTH_RADIUS_KM) - 3.46).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_clamps() {
        let m = EarthModel::default();
        assert_eq!(m.vp(-5.0), m.vp(0.0));
        assert_eq!(m.vp(1e9), m.vp(EARTH_RADIUS_KM));
    }

    #[test]
    fn eta_increases_outward_in_mantle() {
        // dη/dr > 0 in the mantle: rays have unique turning points there.
        let m = EarthModel::default();
        let mut prev = m.eta(3500.0, true);
        for i in 1..=50 {
            let r = 3500.0 + i as f64 * (6300.0 - 3500.0) / 50.0;
            let e = m.eta(r, true);
            assert!(e > prev, "eta monotone at r={r}");
            prev = e;
        }
    }
}
