//! Cost calibration: measure the host's per-ray compute cost, the way the
//! paper benchmarked each grid machine to fill Table 1's `α` column.

use std::time::Instant;

use gs_scatter::cost::CostFn;

use crate::catalog::{generate_catalog, WaveType};
use crate::model::EarthModel;
use crate::ray::trace_ray;

/// Traces `events` and returns the summed travel time (the serial
/// reference used by tests and the calibration loop).
pub fn trace_events_sum(model: &EarthModel, events: &[crate::catalog::Event]) -> f64 {
    let mut sum = 0.0;
    for ev in events {
        let ray = trace_ray(
            model,
            ev.wave == WaveType::P,
            ev.source.depth_km,
            ev.delta().max(0.01),
        );
        sum += ray.travel_time;
    }
    sum
}

/// Measures the host's average per-ray cost, seconds, over `n_sample`
/// synthetic rays. This is the `α` of Table 1 for the local machine.
pub fn measure_alpha(model: &EarthModel, n_sample: usize, seed: u64) -> f64 {
    assert!(n_sample > 0);
    let events = generate_catalog(n_sample, seed);
    let start = Instant::now();
    let sum = trace_events_sum(model, &events);
    let elapsed = start.elapsed().as_secs_f64();
    // Keep the optimizer from deleting the loop.
    assert!(sum.is_finite());
    elapsed / n_sample as f64
}

/// Builds a measured, tabulated compute-cost function by timing batches of
/// several sizes — the "benchmark-driven" general cost model usable with
/// the exact DPs (the paper's Algorithm 1 makes no shape assumption).
pub fn measured_comp_cost(model: &EarthModel, sizes: &[usize], seed: u64) -> CostFn {
    assert!(!sizes.is_empty());
    let mut points = Vec::with_capacity(sizes.len());
    for (i, &n) in sizes.iter().enumerate() {
        assert!(n > 0, "batch sizes must be positive");
        let events = generate_catalog(n, seed.wrapping_add(i as u64));
        let start = Instant::now();
        let sum = trace_events_sum(model, &events);
        assert!(sum.is_finite());
        points.push((n, start.elapsed().as_secs_f64()));
    }
    points.sort_by_key(|&(n, _)| n);
    points.dedup_by_key(|&mut (n, _)| n);
    // Enforce monotonicity (timing jitter can locally invert): cumulative
    // max keeps the table usable by Algorithm 2.
    let mut running = 0.0f64;
    for p in &mut points {
        running = running.max(p.1);
        p.1 = running;
    }
    CostFn::table(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_is_positive_and_finite() {
        let m = EarthModel::default();
        let a = measure_alpha(&m, 20, 1);
        assert!(a.is_finite() && a > 0.0);
        // Tracing a ray takes less than a second even in debug builds.
        assert!(a < 1.0, "alpha = {a}");
    }

    #[test]
    fn measured_cost_is_increasing_table() {
        let m = EarthModel::default();
        let cost = measured_comp_cost(&m, &[5, 10, 20], 3);
        assert!(cost.probably_increasing(20));
        assert!(cost.eval(20) >= cost.eval(5));
        assert!(cost.eval(1) >= 0.0);
    }

    #[test]
    fn serial_sum_deterministic() {
        let m = EarthModel::default();
        let ev = generate_catalog(30, 5);
        assert_eq!(trace_events_sum(&m, &ev), trace_events_sum(&m, &ev));
        assert!(trace_events_sum(&m, &ev) > 0.0);
    }
}
