//! # gs-seismic — the motivating workload (§2 of the paper)
//!
//! The paper's target application is a seismic-tomography code that
//! ray-traces the full set of seismic events of year 1999 — 817,101 rays —
//! in parallel: the root reads the ray descriptions, `MPI_Scatter`s them,
//! and every processor traces its share independently (the rays are
//! independent, which is what makes the scatter load-balanceable).
//!
//! The original code and the ISC event catalog are not available, so this
//! crate rebuilds the workload to the fidelity the experiments need:
//!
//! * [`model`] — a layered spherical-Earth velocity model (piecewise-linear
//!   P/S velocity profiles shaped after ak135/PREM);
//! * [`ray`] — travel-time ray tracing in that model: for a
//!   source–receiver pair, find the ray parameter whose ray connects them
//!   (bisection on the epicentral-distance integral) and integrate its
//!   travel time. Real, data-dependent floating-point work per ray — the
//!   property the load balancer exploits;
//! * [`catalog`] — a seeded synthetic catalog of events on seismic belts
//!   recorded at a global station set;
//! * [`calib`] — measures the per-ray compute cost (`α` of Table 1) on the
//!   host, producing planner cost functions from reality;
//! * [`app`] — the §2.2 program on [`gs_minimpi`]: read → scatter(v) →
//!   trace → gather, with the grid's heterogeneity replayed in virtual
//!   time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod calib;
pub mod catalog;
pub mod invert;
pub mod invert_app;
pub mod model;
pub mod ray;

pub use app::{run_tomography, TomoConfig, TomoReport};
pub use invert::{invert_serial, synthetic_observations, InversionStep, LayerResiduals};
pub use invert_app::{run_parallel_inversion, InversionConfig, InversionReport};
pub use catalog::{generate_catalog, Event, GeoPoint, WaveType};
pub use model::EarthModel;
pub use ray::{trace_ray, RayPath};
