//! The *iterative* tomography application: trace → gather residuals →
//! update the velocity model → broadcast → repeat (§2.1's full loop, of
//! which §2.2's pseudo-code is one iteration).
//!
//! The ray descriptions are scattered once (the catalog does not change);
//! each iteration broadcasts the current layer factors, traces locally,
//! and gathers per-layer residual partials. This is the workload the
//! multi-round planner ([`gs_scatter::multiround`]) exists for.

use gs_minimpi::{run_world, TimeModel, WorldConfig};
use gs_scatter::cost::Platform;
use gs_scatter::error::PlanError;
use gs_scatter::ordering::OrderPolicy;
use gs_scatter::planner::{Planner, Strategy};

use crate::app::{decode_events, encode_events, ITEM_BYTES};
use crate::catalog::generate_catalog;
use crate::invert::{
    accumulate_residuals, synthetic_observations, update_factors, InversionStep, LayerResiduals,
};
use crate::model::EarthModel;

/// Configuration of a parallel inversion run.
#[derive(Debug, Clone)]
pub struct InversionConfig {
    /// Platform to emulate.
    pub platform: Platform,
    /// Distribution strategy for the one-time scatter.
    pub strategy: Strategy,
    /// Ordering policy.
    pub policy: OrderPolicy,
    /// Rays in the catalog.
    pub n_rays: usize,
    /// Catalog seed.
    pub seed: u64,
    /// Inversion iterations.
    pub iterations: usize,
    /// Ground-truth layer factors generating the synthetic observations.
    pub truth_factors: Vec<f64>,
}

/// Result of a parallel inversion.
#[derive(Debug, Clone)]
pub struct InversionReport {
    /// Per-iteration history (RMS residual before update, factors after).
    pub steps: Vec<InversionStep>,
    /// Virtual end time of each iteration (cumulative).
    pub round_ends: Vec<f64>,
    /// Total emulated duration.
    pub virtual_total: f64,
}

/// Runs the inversion on the emulated grid.
pub fn run_parallel_inversion(config: &InversionConfig) -> Result<InversionReport, PlanError> {
    let base = EarthModel::default();
    let n_layers = base.layers().len();
    assert_eq!(config.truth_factors.len(), n_layers, "one truth factor per layer");

    let plan = Planner::new(config.platform.clone())
        .strategy(config.strategy)
        .order_policy(config.policy)
        .plan(config.n_rays)?;
    let p = config.platform.len();
    let ordered: Vec<_> = config
        .platform
        .ordered(&plan.order)
        .into_iter()
        .cloned()
        .collect();
    let ordered_platform = Platform::new(ordered, p - 1).expect("valid reordering");
    let time_model = TimeModel::from_platform(&ordered_platform, ITEM_BYTES);

    let counts_items = plan.counts_in_order();
    let counts_elems: Vec<usize> = counts_items.iter().map(|c| c * 6).collect();
    let root_rank = p - 1;
    let (n_rays, seed, iterations) = (config.n_rays, config.seed, config.iterations);
    let truth_factors = config.truth_factors.clone();

    let per_rank = run_world(p, WorldConfig::with_time(time_model), |comm| {
        let base = EarthModel::default();
        // One-time scatter of the catalog (the §2.2 phase).
        let sendbuf: Option<Vec<f64>> = (comm.rank() == root_rank)
            .then(|| encode_events(&generate_catalog(n_rays, seed)));
        let mine = comm.scatterv(root_rank, sendbuf.as_deref(), &counts_elems);
        let events = decode_events(&mine);
        // Everyone synthesizes its own observations from the ground truth
        // (in reality these arrive with the catalog; the data volume is
        // the same either way).
        let truth = base.scaled(&truth_factors);
        let observed = synthetic_observations(&truth, &events);
        comm.model_compute(events.len()); // the initial forward pass

        let mut factors = vec![1.0f64; base.layers().len()];
        let mut steps: Vec<InversionStep> = Vec::new();
        let mut round_ends = Vec::new();
        for _ in 0..iterations {
            // Root broadcasts the current model parameters.
            factors = comm.bcast(root_rank, &factors);
            let model = base.scaled(&factors);
            let partial = accumulate_residuals(&model, &events, &observed);
            comm.model_compute(events.len()); // one traced pass per round
            // Gather partials to the root.
            let gathered = comm.gatherv(root_rank, &partial.encode());
            if comm.rank() == root_rank {
                let mut total = LayerResiduals::new(base.layers().len());
                let buf = gathered.expect("root gathers");
                let block = base.layers().len() * 2 + 2;
                for chunk in buf.chunks_exact(block) {
                    total.merge(&LayerResiduals::decode(chunk, base.layers().len()));
                }
                factors = update_factors(&factors, &total);
                steps.push(InversionStep {
                    rms_residual: total.rms(),
                    factors: factors.clone(),
                });
            }
            // Synchronize (and record) the round boundary.
            comm.barrier();
            round_ends.push(comm.now());
        }
        (steps, round_ends)
    });

    let (steps, round_ends) = per_rank.into_iter().nth(root_rank).expect("root result");
    let virtual_total = round_ends.last().copied().unwrap_or(0.0);
    Ok(InversionReport { steps, round_ends, virtual_total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scatter::cost::Processor;

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("root", 0.0, 0.010),
                Processor::linear("fast", 1e-4, 0.004),
                Processor::linear("slow", 2e-4, 0.016),
            ],
            0,
        )
        .unwrap()
    }

    fn config() -> InversionConfig {
        InversionConfig {
            platform: platform(),
            strategy: Strategy::Heuristic,
            policy: OrderPolicy::DescendingBandwidth,
            n_rays: 150,
            seed: 11,
            iterations: 5,
            truth_factors: vec![1.0, 1.0, 0.97, 0.97, 1.0],
        }
    }

    #[test]
    fn parallel_inversion_converges() {
        let report = run_parallel_inversion(&config()).unwrap();
        assert_eq!(report.steps.len(), 5);
        let first = report.steps[0].rms_residual;
        let last = report.steps.last().unwrap().rms_residual;
        assert!(last < first * 0.6, "RMS must fall: {first} -> {last}");
    }

    #[test]
    fn parallel_matches_serial_inversion() {
        // Same catalog, same iterations: the distributed reduction must
        // reproduce the serial history (up to float summation order).
        let report = run_parallel_inversion(&config()).unwrap();
        let base = EarthModel::default();
        let events = generate_catalog(150, 11);
        let truth = base.scaled(&[1.0, 1.0, 0.97, 0.97, 1.0]);
        let observed = synthetic_observations(&truth, &events);
        let serial = crate::invert::invert_serial(&base, &events, &observed, 5);
        for (p, s) in report.steps.iter().zip(&serial) {
            assert!(
                (p.rms_residual - s.rms_residual).abs() < 1e-9,
                "parallel {} vs serial {}",
                p.rms_residual,
                s.rms_residual
            );
            for (a, b) in p.factors.iter().zip(&s.factors) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rounds_advance_virtual_time() {
        let report = run_parallel_inversion(&config()).unwrap();
        assert!(report.round_ends.windows(2).all(|w| w[1] > w[0]));
        assert!(report.virtual_total > 0.0);
    }
}
