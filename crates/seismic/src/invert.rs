//! Tomographic inversion — the "final step" of §2.1 ("a new velocity
//! model that minimizes those differences is computed"), which turns the
//! one-shot scatter of §2.2 into an *iterative* SPMD code and motivates
//! the multi-round planning extension.
//!
//! The inversion is deliberately coarse (the paper never specifies its
//! own): the velocity model is parameterized by one multiplicative factor
//! per layer; each iteration traces the catalog under the current model,
//! bins the relative travel-time residuals `(t_obs − t_pred)/t_pred` by
//! the layer of the ray's turning point, and nudges each layer's velocity
//! against its mean residual (slower rock ⇒ longer times ⇒ positive
//! residual ⇒ reduce velocity). Damped fixed-point iteration; converges
//! on the synthetic-truth setup the tests use.

use crate::catalog::{Event, WaveType};
use crate::model::EarthModel;
use crate::ray::trace_ray;

/// Per-iteration inversion statistics.
#[derive(Debug, Clone)]
pub struct InversionStep {
    /// Root-mean-square relative residual before this step's update.
    pub rms_residual: f64,
    /// The layer factors after the update.
    pub factors: Vec<f64>,
}

/// Damping applied to each layer update (0 = frozen, 1 = full step).
pub const DAMPING: f64 = 0.6;

/// Synthesizes "observed" travel times for a catalog under a ground-truth
/// model (what the seismograms would say if `truth` were the real Earth).
pub fn synthetic_observations(truth: &EarthModel, events: &[Event]) -> Vec<f64> {
    events
        .iter()
        .map(|ev| {
            trace_ray(
                truth,
                ev.wave == WaveType::P,
                ev.source.depth_km,
                ev.delta().max(0.01),
            )
            .travel_time
        })
        .collect()
}

/// Accumulated residual statistics per model layer.
#[derive(Debug, Clone, Default)]
pub struct LayerResiduals {
    /// Sum of relative residuals per layer.
    pub sum: Vec<f64>,
    /// Ray count per layer.
    pub count: Vec<usize>,
    /// Sum of squared relative residuals (for the RMS).
    pub sq_sum: f64,
    /// Total rays accumulated.
    pub total: usize,
}

impl LayerResiduals {
    /// An empty accumulator for a model with `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        LayerResiduals {
            sum: vec![0.0; n_layers],
            count: vec![0; n_layers],
            sq_sum: 0.0,
            total: 0,
        }
    }

    /// Merges another accumulator (used when gathering partials from
    /// worker ranks).
    pub fn merge(&mut self, other: &LayerResiduals) {
        assert_eq!(self.sum.len(), other.sum.len());
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        for (a, b) in self.count.iter_mut().zip(&other.count) {
            *a += b;
        }
        self.sq_sum += other.sq_sum;
        self.total += other.total;
    }

    /// Flat f64 encoding (for gatherv over minimpi):
    /// `[sum.., count.., sq_sum, total]`.
    pub fn encode(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.sum.len() * 2 + 2);
        out.extend_from_slice(&self.sum);
        out.extend(self.count.iter().map(|&c| c as f64));
        out.push(self.sq_sum);
        out.push(self.total as f64);
        out
    }

    /// Inverse of [`LayerResiduals::encode`].
    pub fn decode(buf: &[f64], n_layers: usize) -> Self {
        assert_eq!(buf.len(), n_layers * 2 + 2, "corrupt residual block");
        LayerResiduals {
            sum: buf[..n_layers].to_vec(),
            count: buf[n_layers..2 * n_layers].iter().map(|&c| c as usize).collect(),
            sq_sum: buf[2 * n_layers],
            total: buf[2 * n_layers + 1] as usize,
        }
    }

    /// RMS relative residual.
    pub fn rms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.sq_sum / self.total as f64).sqrt()
        }
    }
}

/// Traces `events` under `model` and accumulates residuals against the
/// `observed` times (parallel workers call this on their block).
pub fn accumulate_residuals(
    model: &EarthModel,
    events: &[Event],
    observed: &[f64],
) -> LayerResiduals {
    assert_eq!(events.len(), observed.len());
    let mut acc = LayerResiduals::new(model.layers().len());
    for (ev, &t_obs) in events.iter().zip(observed) {
        let ray = trace_ray(
            model,
            ev.wave == WaveType::P,
            ev.source.depth_km,
            ev.delta().max(0.01),
        );
        if ray.travel_time <= 0.0 {
            continue;
        }
        let rel = (t_obs - ray.travel_time) / ray.travel_time;
        let layer = model.layer_of(ray.turning_radius);
        acc.sum[layer] += rel;
        acc.count[layer] += 1;
        acc.sq_sum += rel * rel;
        acc.total += 1;
    }
    acc
}

/// One damped model update: positive mean residual in a layer (observed
/// slower than predicted) lowers that layer's velocity factor.
pub fn update_factors(factors: &[f64], residuals: &LayerResiduals) -> Vec<f64> {
    factors
        .iter()
        .enumerate()
        .map(|(l, &f)| {
            if residuals.count[l] == 0 {
                return f;
            }
            let mean = residuals.sum[l] / residuals.count[l] as f64;
            // t ∝ 1/v: relative time excess `mean` maps to velocity
            // deficit ≈ mean/(1+mean); damp it.
            let correction = 1.0 / (1.0 + DAMPING * mean);
            (f * correction).clamp(0.5, 2.0)
        })
        .collect()
}

/// Runs a serial inversion: `iterations` rounds of trace → bin → update.
/// Returns the per-iteration history (RMS residual, factors).
pub fn invert_serial(
    base: &EarthModel,
    events: &[Event],
    observed: &[f64],
    iterations: usize,
) -> Vec<InversionStep> {
    let mut factors = vec![1.0; base.layers().len()];
    let mut history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let model = base.scaled(&factors);
        let res = accumulate_residuals(&model, events, observed);
        factors = update_factors(&factors, &res);
        history.push(InversionStep { rms_residual: res.rms(), factors: factors.clone() });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::generate_catalog;

    /// A ground truth: mantle 3% slower than the reference model.
    fn truth(base: &EarthModel) -> EarthModel {
        let mut f = vec![1.0; base.layers().len()];
        f[2] = 0.97; // lower mantle
        f[3] = 0.97; // upper mantle
        base.scaled(&f)
    }

    #[test]
    fn scaled_model_changes_velocities() {
        let base = EarthModel::default();
        let m = base.scaled(&[1.0, 1.0, 0.9, 0.9, 1.0]);
        assert!((m.vp(4000.0) - 0.9 * base.vp(4000.0)).abs() < 1e-12);
        assert_eq!(m.vp(500.0), base.vp(500.0));
    }

    #[test]
    fn residuals_zero_when_model_is_truth() {
        let base = EarthModel::default();
        let events = generate_catalog(40, 3);
        let obs = synthetic_observations(&base, &events);
        let res = accumulate_residuals(&base, &events, &obs);
        assert!(res.rms() < 1e-12, "rms {}", res.rms());
    }

    #[test]
    fn residuals_positive_when_truth_is_slower() {
        let base = EarthModel::default();
        let events = generate_catalog(60, 4);
        let obs = synthetic_observations(&truth(&base), &events);
        let res = accumulate_residuals(&base, &events, &obs);
        assert!(res.rms() > 0.005, "rms {}", res.rms());
        // Mantle layers should carry positive mean residuals.
        let mean_mantle = (res.sum[2] + res.sum[3])
            / ((res.count[2] + res.count[3]).max(1) as f64);
        assert!(mean_mantle > 0.0, "mean mantle residual {mean_mantle}");
    }

    #[test]
    fn inversion_reduces_rms() {
        let base = EarthModel::default();
        let events = generate_catalog(120, 5);
        let obs = synthetic_observations(&truth(&base), &events);
        let history = invert_serial(&base, &events, &obs, 6);
        let first = history.first().unwrap().rms_residual;
        let last = history.last().unwrap().rms_residual;
        assert!(
            last < first * 0.5,
            "inversion must reduce the residual: {first} -> {last}"
        );
        // The recovered mantle factors head toward 0.97.
        let f = &history.last().unwrap().factors;
        assert!((f[2] - 0.97).abs() < 0.02, "lower mantle factor {}", f[2]);
    }

    #[test]
    fn residual_encode_decode_round_trip() {
        let mut acc = LayerResiduals::new(3);
        acc.sum = vec![0.1, -0.2, 0.3];
        acc.count = vec![4, 5, 6];
        acc.sq_sum = 0.5;
        acc.total = 15;
        let decoded = LayerResiduals::decode(&acc.encode(), 3);
        assert_eq!(decoded.sum, acc.sum);
        assert_eq!(decoded.count, acc.count);
        assert_eq!(decoded.total, 15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LayerResiduals::new(2);
        a.sum = vec![1.0, 2.0];
        a.count = vec![1, 2];
        a.sq_sum = 3.0;
        a.total = 3;
        let mut b = LayerResiduals::new(2);
        b.sum = vec![0.5, 0.5];
        b.count = vec![1, 1];
        b.sq_sum = 1.0;
        b.total = 2;
        a.merge(&b);
        assert_eq!(a.sum, vec![1.5, 2.5]);
        assert_eq!(a.count, vec![2, 3]);
        assert_eq!(a.total, 5);
    }

    #[test]
    fn update_moves_against_residual() {
        let mut res = LayerResiduals::new(2);
        res.sum = vec![0.1, -0.1]; // layer 0 observed slower, layer 1 faster
        res.count = vec![1, 1];
        let f = update_factors(&[1.0, 1.0], &res);
        assert!(f[0] < 1.0, "slower rock => lower velocity: {}", f[0]);
        assert!(f[1] > 1.0, "faster rock => higher velocity: {}", f[1]);
    }

    #[test]
    fn update_skips_unsampled_layers() {
        let res = LayerResiduals::new(2);
        let f = update_factors(&[1.1, 0.9], &res);
        assert_eq!(f, vec![1.1, 0.9]);
    }
}
