//! Brute-force oracles: exhaustive enumeration of distributions and of
//! processor orderings.
//!
//! These are exponential-time reference implementations used to validate
//! the dynamic programs, the heuristic, and the ordering policy on small
//! instances (tests, ablation studies). They are part of the public API so
//! integration tests and benches can call them, but they are not meant for
//! production planning.

use crate::cost::{Platform, Processor};
use crate::distribution::makespan;
use crate::dp_basic::DpSolution;

/// Exhaustively enumerates every distribution of `n` items over
/// `procs.len()` processors and returns the best (Eq. 2 minimal).
///
/// Cost: `C(n + p - 1, p - 1)` evaluations — keep `n` and `p` tiny.
pub fn brute_force_distribution(procs: &[&Processor], n: usize) -> DpSolution {
    assert!(!procs.is_empty());
    let p = procs.len();
    let mut counts = vec![0usize; p];
    let mut best_counts = vec![0usize; p];
    let mut best = f64::INFINITY;
    enumerate(procs, n, 0, &mut counts, &mut best, &mut best_counts);
    DpSolution { counts: best_counts, makespan: best }
}

fn enumerate(
    procs: &[&Processor],
    remaining: usize,
    i: usize,
    counts: &mut Vec<usize>,
    best: &mut f64,
    best_counts: &mut Vec<usize>,
) {
    if i == procs.len() - 1 {
        counts[i] = remaining;
        let m = makespan(procs, counts);
        if m < *best {
            *best = m;
            best_counts.clone_from(counts);
        }
        return;
    }
    for e in 0..=remaining {
        counts[i] = e;
        enumerate(procs, remaining - e, i + 1, counts, best, best_counts);
    }
}

/// Result of an exhaustive search over processor orderings.
#[derive(Debug, Clone)]
pub struct BestOrder {
    /// The best scatter order found (processor indices, root last).
    pub order: Vec<usize>,
    /// Optimal counts for that order, aligned with `order`.
    pub counts: Vec<usize>,
    /// The resulting makespan.
    pub makespan: f64,
}

/// Tries **every** ordering of the non-root processors (root stays last,
/// per §3.1), solving each with the exact DP, and returns the best — the
/// exhaustive procedure §4.4 calls "theoretically possible \[but\]
/// unrealistic" for large `p`. `(p-1)!` DP solves: keep `p <= 8` or so.
pub fn best_order_exhaustive(platform: &Platform, n: usize) -> BestOrder {
    let p = platform.len();
    let root = platform.root();
    let mut others: Vec<usize> = (0..p).filter(|&i| i != root).collect();
    let mut best: Option<BestOrder> = None;
    permute(&mut others, 0, &mut |perm: &[usize]| {
        let mut order = perm.to_vec();
        order.push(root);
        let view = platform.ordered(&order);
        let sol = crate::dp_optimized::optimal_distribution(&view, n)
            .expect("brute-force order search requires increasing costs");
        if best.as_ref().is_none_or(|b| sol.makespan < b.makespan) {
            best = Some(BestOrder { order, counts: sol.counts, makespan: sol.makespan });
        }
    });
    best.expect("at least one ordering exists")
}

/// Calls `f` with every permutation of `items` (Heap's algorithm,
/// recursive variant).
pub fn permute<T: Clone>(items: &mut [T], k: usize, f: &mut impl FnMut(&[T])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    #[test]
    fn brute_force_trivial() {
        let ps = [Processor::linear("root", 0.0, 1.0)];
        let v: Vec<&Processor> = ps.iter().collect();
        let sol = brute_force_distribution(&v, 5);
        assert_eq!(sol.counts, vec![5]);
        assert_eq!(sol.makespan, 5.0);
    }

    #[test]
    fn brute_force_prefers_fast_cpu() {
        let ps = [Processor::linear("fast", 0.0, 1.0),
            Processor::linear("root", 0.0, 3.0)];
        let v: Vec<&Processor> = ps.iter().collect();
        let sol = brute_force_distribution(&v, 4);
        // fast gets 3, root gets 1: makespan 3. Any other split is worse.
        assert_eq!(sol.counts, vec![3, 1]);
        assert_eq!(sol.makespan, 3.0);
    }

    #[test]
    fn permute_counts() {
        let mut items = vec![1, 2, 3, 4];
        let mut count = 0;
        permute(&mut items, 0, &mut |_| count += 1);
        assert_eq!(count, 24);
    }

    #[test]
    fn permute_visits_distinct() {
        let mut items = vec![1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        permute(&mut items, 0, &mut |p| {
            seen.insert(p.to_vec());
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn best_order_no_worse_than_descending_bandwidth_on_linear() {
        // Theorem 3 holds for the *rational* relaxation; in integers the
        // exhaustive best order can only tie or beat the
        // descending-bandwidth order, never lose to it.
        let plat = Platform::new(
            vec![
                Processor::linear("root", 0.0, 1.0),
                Processor::linear("slowlink", 0.9, 1.0),
                Processor::linear("fastlink", 0.1, 1.0),
            ],
            0,
        )
        .unwrap();
        let best = best_order_exhaustive(&plat, 12);
        assert_eq!(*best.order.last().unwrap(), 0, "root stays last");
        let desc_view = plat.ordered(&[2, 1, 0]);
        let desc = crate::dp_optimized::optimal_distribution(&desc_view, 12).unwrap();
        assert!(best.makespan <= desc.makespan + 1e-12);
        // At a size where the integer effects wash out, descending
        // bandwidth is strictly best (Theorem 3).
        let best_big = best_order_exhaustive(&plat, 500);
        assert_eq!(best_big.order, vec![2, 1, 0], "fastlink first, root last");
    }
}
