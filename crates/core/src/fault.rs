//! Fault injection and recovery for scatter operations.
//!
//! The paper's schedule (Eq. 1–2) is purely static: it assumes every
//! processor and link behaves exactly as measured. This module is the
//! shared vocabulary for the *degraded-grid* story told in
//! `docs/robustness.md`:
//!
//! * [`FaultPlan`] — a deterministic, seedable description of what goes
//!   wrong (crashes, transient send failures, compute slowdowns, link
//!   degradations), parsable from the CLI `--faults` spec grammar;
//! * [`RecoveryConfig`] — the detection/recovery policy: per-send
//!   timeouts derived from the predicted `Tcomm` of Eq. (1), bounded
//!   retry with exponential backoff, and the re-plan strategy used to
//!   redistribute undelivered items over the survivors;
//! * [`FaultSession`] — the mutable *oracle* that decides the fate of
//!   each send attempt. Both `gs-gridsim`'s fault simulator and
//!   `gs-minimpi`'s fault-tolerant runtime drive the same oracle with
//!   the same `f64` inputs, so the two produce bit-identical schedules.
//!   The session also owns a [`PlanCache`] holding the DP plane of the
//!   last exact solve, so repeated re-plans within one recovery episode
//!   warm-start instead of recomputing everything;
//! * [`replan_residual`] (and the cache-aware [`replan_residual_with`])
//!   — the re-plan step itself: an optimal distribution of the residual
//!   workload over the surviving processors (preserving their relative
//!   scatter order), via the existing [`Planner`]. The result is always
//!   *identical* to a from-scratch solve — property-tested — but with a
//!   [`PlanCache`] attached the exact strategies reuse the cached DP
//!   columns of the trailing survivors and only recompute what the
//!   failure actually invalidated. The cache invalidates itself on any
//!   platform change: cached columns are keyed by the cost-function
//!   identities of the trailing processors, so a survivor set whose
//!   suffix does not match the cached solve (different processors,
//!   different cost kind, or a re-measured platform) simply misses and
//!   the solve runs cold.
//!
//! Everything here is deterministic: the same plan, platform and
//! recovery policy always produce the same recovery schedule, with or
//! without warm-starting.

use std::sync::Arc;

use crate::cost::{CostFn, Platform, Processor};
use crate::error::PlanError;
use crate::obs::span;
use crate::obs::{Incident, IncidentKind};
use crate::ordering::OrderPolicy;
use crate::planner::{PlanCache, Planner, Strategy};

// ---- fault descriptions ---------------------------------------------------

/// One kind of injected misbehaviour. Ranks are *scatter positions*
/// (0-based, root last), matching trace rank numbering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: the rank dies at the given absolute time. Transfers
    /// that would complete after `at` are refused (never acknowledged);
    /// blocks fully delivered before `at` still compute to completion.
    Crash {
        /// Absolute crash time, seconds.
        at: f64,
    },
    /// The rank's next `failures` incoming transfers are silently lost
    /// (the classic lossy-link fault: the sender only learns via
    /// timeout). The budget is consumed per failed attempt.
    Transient {
        /// Number of transfers to drop before behaving again.
        failures: u32,
    },
    /// From time `start` on, this rank computes `factor`× slower than
    /// its measured `Tcomp` (e.g. a co-scheduled job steals the CPU).
    Slowdown {
        /// Absolute onset time, seconds.
        start: f64,
        /// Multiplicative compute stretch, `> 0` (values `< 1` model a
        /// speed-up).
        factor: f64,
    },
    /// Every transfer to this rank takes `factor`× its nominal `Tcomm`
    /// for the whole run (congested or renegotiated link).
    LinkDegrade {
        /// Multiplicative transfer stretch, `> 0`.
        factor: f64,
    },
}

/// A fault bound to a rank (scatter position).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Scatter position the fault applies to (root is last).
    pub rank: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic set of injected faults for one scatter run.
///
/// Build one with [`FaultPlan::parse`] (CLI spec grammar),
/// [`FaultPlan::seeded`] (pseudo-random but reproducible), or push
/// [`Fault`]s directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The injected faults, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (nothing goes wrong).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` iff the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the CLI fault-spec grammar. Clauses are separated by `,`
    /// or `;`; `<who>` is a processor name from `names` (scatter order)
    /// or a 0-based scatter position; times ending in `%` are fractions
    /// of `horizon` (normally the predicted makespan):
    ///
    /// ```text
    /// crash:<who>@<t>          fail-stop at time t
    /// flaky:<who>:<k>          lose the next k transfers to <who>
    /// slow:<who>:<f>[@<t>]     compute f× slower from time t (default 0)
    /// link:<who>:<f>           transfers to <who> take f× longer
    /// seed:<n>                 merge FaultPlan::seeded(n, p, horizon)
    /// ```
    ///
    /// ```
    /// use gs_scatter::fault::{FaultPlan, FaultKind};
    /// let plan = FaultPlan::parse("crash:w1@50%, flaky:w2:1", &["w1", "w2", "root"], 10.0)
    ///     .unwrap();
    /// assert_eq!(plan.faults[0].kind, FaultKind::Crash { at: 5.0 });
    /// ```
    pub fn parse(spec: &str, names: &[&str], horizon: f64) -> Result<FaultPlan, PlanError> {
        let err = |msg: String| Err(PlanError::FaultSpec(msg));
        let p = names.len();
        let who = |s: &str| -> Result<usize, PlanError> {
            if let Some(i) = names.iter().position(|n| *n == s) {
                return Ok(i);
            }
            match s.parse::<usize>() {
                Ok(i) if i < p => Ok(i),
                Ok(i) => Err(PlanError::FaultSpec(format!(
                    "rank {i} out of range (p = {p})"
                ))),
                Err(_) => Err(PlanError::FaultSpec(format!(
                    "unknown processor `{s}` (names: {})",
                    names.join(", ")
                ))),
            }
        };
        let time = |s: &str| -> Result<f64, PlanError> {
            let (txt, scale) = match s.strip_suffix('%') {
                Some(frac) => (frac, horizon / 100.0),
                None => (s, 1.0),
            };
            match txt.parse::<f64>() {
                Ok(x) if x.is_finite() && x >= 0.0 => Ok(x * scale),
                _ => Err(PlanError::FaultSpec(format!("bad time `{s}`"))),
            }
        };
        let factor = |s: &str| -> Result<f64, PlanError> {
            match s.parse::<f64>() {
                Ok(x) if x.is_finite() && x > 0.0 => Ok(x),
                _ => Err(PlanError::FaultSpec(format!("bad factor `{s}` (must be > 0)"))),
            }
        };

        let mut plan = FaultPlan::none();
        for clause in spec.split([',', ';']).map(str::trim).filter(|c| !c.is_empty()) {
            let mut parts = clause.splitn(2, ':');
            let verb = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default();
            match verb {
                "crash" => {
                    let (w, t) = match rest.split_once('@') {
                        Some(pair) => pair,
                        None => return err(format!("`{clause}`: expected crash:<who>@<t>")),
                    };
                    plan.faults.push(Fault {
                        rank: who(w)?,
                        kind: FaultKind::Crash { at: time(t)? },
                    });
                }
                "flaky" => {
                    let (w, k) = match rest.rsplit_once(':') {
                        Some(pair) => pair,
                        None => return err(format!("`{clause}`: expected flaky:<who>:<k>")),
                    };
                    let failures: u32 = k
                        .parse()
                        .map_err(|_| PlanError::FaultSpec(format!("bad count `{k}`")))?;
                    plan.faults.push(Fault {
                        rank: who(w)?,
                        kind: FaultKind::Transient { failures },
                    });
                }
                "slow" => {
                    let (w, fx) = match rest.rsplit_once(':') {
                        Some(pair) => pair,
                        None => return err(format!("`{clause}`: expected slow:<who>:<f>[@<t>]")),
                    };
                    let (f, t) = match fx.split_once('@') {
                        Some((f, t)) => (factor(f)?, time(t)?),
                        None => (factor(fx)?, 0.0),
                    };
                    plan.faults.push(Fault {
                        rank: who(w)?,
                        kind: FaultKind::Slowdown { start: t, factor: f },
                    });
                }
                "link" => {
                    let (w, f) = match rest.rsplit_once(':') {
                        Some(pair) => pair,
                        None => return err(format!("`{clause}`: expected link:<who>:<f>")),
                    };
                    plan.faults.push(Fault {
                        rank: who(w)?,
                        kind: FaultKind::LinkDegrade { factor: factor(f)? },
                    });
                }
                "seed" => {
                    let seed: u64 = rest
                        .parse()
                        .map_err(|_| PlanError::FaultSpec(format!("bad seed `{rest}`")))?;
                    plan.faults.extend(FaultPlan::seeded(seed, p, horizon).faults);
                }
                _ => return err(format!("unknown clause `{clause}`")),
            }
        }
        Ok(plan)
    }

    /// A reproducible pseudo-random plan for a `p`-rank scatter whose
    /// fault times span `[0, horizon]`. The root (last position) never
    /// crashes or drops transfers. Uses a self-contained xorshift64*
    /// generator, so the core crate stays dependency-free and the plan
    /// is identical on every platform.
    pub fn seeded(seed: u64, p: usize, horizon: f64) -> FaultPlan {
        let mut state = seed.wrapping_mul(2685821657736338717).max(1);
        let mut next_u64 = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(2685821657736338717)
        };
        // Uniform in [0, 1): use the top 53 bits.
        let mut uniform = move || (next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mut plan = FaultPlan::none();
        if p < 2 {
            return plan;
        }
        for rank in 0..p {
            let root = rank == p - 1;
            let roll = uniform();
            if roll < 0.15 && !root {
                plan.faults.push(Fault {
                    rank,
                    kind: FaultKind::Crash { at: (0.1 + 0.8 * uniform()) * horizon },
                });
            } else if roll < 0.35 && !root {
                plan.faults.push(Fault {
                    rank,
                    kind: FaultKind::Transient { failures: 1 + (uniform() * 2.0) as u32 },
                });
            } else if roll < 0.50 {
                plan.faults.push(Fault {
                    rank,
                    kind: FaultKind::Slowdown {
                        start: 0.5 * uniform() * horizon,
                        factor: 1.5 + 2.5 * uniform(),
                    },
                });
            } else if roll < 0.60 && !root {
                plan.faults.push(Fault {
                    rank,
                    kind: FaultKind::LinkDegrade { factor: 1.5 + 3.5 * uniform() },
                });
            }
        }
        plan
    }

    /// Wall-clock duration of a compute phase on `rank` starting at
    /// `start` whose fault-free duration is `nominal` — stretched
    /// piecewise if the rank's slowdown sets in before the phase ends.
    pub fn stretched_compute(&self, rank: usize, start: f64, nominal: f64) -> f64 {
        match self.slowdown(rank) {
            None => nominal,
            Some((onset, factor)) => {
                if start >= onset {
                    nominal * factor
                } else if start + nominal <= onset {
                    nominal
                } else {
                    // Runs clean until the onset, stretched after.
                    let clean = onset - start;
                    clean + (nominal - clean) * factor
                }
            }
        }
    }

    /// The plan with all absolute times (crash, slowdown onset) shifted
    /// by `dt` (clamped at 0) — useful when replaying one plan against a
    /// round that starts at a different origin.
    pub fn shifted(&self, dt: f64) -> FaultPlan {
        let mut plan = self.clone();
        for f in &mut plan.faults {
            match &mut f.kind {
                FaultKind::Crash { at } => *at = (*at + dt).max(0.0),
                FaultKind::Slowdown { start, .. } => *start = (*start + dt).max(0.0),
                FaultKind::Transient { .. } | FaultKind::LinkDegrade { .. } => {}
            }
        }
        plan
    }

    /// Checks the plan against a `p`-rank scatter: ranks in range,
    /// factors positive and finite, times finite, and no crash or
    /// transient fault on the root (last position) — the root is the
    /// sender; surviving a root failure is out of scope (see
    /// `docs/robustness.md`).
    pub fn validate(&self, p: usize) -> Result<(), PlanError> {
        let err = |msg: String| Err(PlanError::FaultSpec(msg));
        for f in &self.faults {
            if f.rank >= p {
                return err(format!("fault rank {} out of range (p = {p})", f.rank));
            }
            match f.kind {
                FaultKind::Crash { at } => {
                    if !at.is_finite() || at < 0.0 {
                        return err(format!("bad crash time {at}"));
                    }
                    if f.rank == p - 1 {
                        return err("the root (last scatter position) cannot crash".into());
                    }
                }
                FaultKind::Transient { .. } => {
                    if f.rank == p - 1 {
                        return err("the root cannot drop transfers to itself".into());
                    }
                }
                FaultKind::Slowdown { start, factor } => {
                    if !start.is_finite() || start < 0.0 || !factor.is_finite() || factor <= 0.0 {
                        return err(format!("bad slowdown ({start}, {factor})"));
                    }
                }
                FaultKind::LinkDegrade { factor } => {
                    if !factor.is_finite() || factor <= 0.0 {
                        return err(format!("bad link factor {factor}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Earliest crash time of `rank`, if it crashes at all.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::Crash { at } if f.rank == rank => Some(at),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, at| Some(acc.map_or(at, |a| a.min(at))))
    }

    /// Total number of transfers `rank` will drop before behaving.
    pub fn transient_budget(&self, rank: usize) -> u32 {
        self.faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::Transient { failures } if f.rank == rank => failures,
                _ => 0,
            })
            .sum()
    }

    /// The slowdown `(onset, factor)` affecting `rank`, if any (the one
    /// with the earliest onset wins if several are given).
    pub fn slowdown(&self, rank: usize) -> Option<(f64, f64)> {
        self.faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::Slowdown { start, factor } if f.rank == rank => Some((start, factor)),
                _ => None,
            })
            .fold(None, |acc: Option<(f64, f64)>, sf| {
                Some(match acc {
                    Some(best) if best.0 <= sf.0 => best,
                    _ => sf,
                })
            })
    }

    /// Combined multiplicative stretch on transfers to `rank` (product
    /// of all link-degrade factors; `1.0` when unaffected).
    pub fn link_factor(&self, rank: usize) -> f64 {
        self.faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::LinkDegrade { factor } if f.rank == rank => factor,
                _ => 1.0,
            })
            .product()
    }

    /// The platform as it would be *observed* at time `t` under this
    /// plan: compute costs of ranks whose slowdown has set in are
    /// stretched by their factor, and link costs by their degrade
    /// factor. `order` maps scatter positions (the plan's rank space)
    /// back to platform indices. Crashes and transients are not
    /// representable as costs and are ignored here — this is the input
    /// an *adaptive* planner would re-measure, not the failure model.
    pub fn degraded_platform(
        &self,
        platform: &Platform,
        order: &[usize],
        t: f64,
    ) -> Result<Platform, PlanError> {
        let mut procs = platform.procs().to_vec();
        for (pos, &idx) in order.iter().enumerate() {
            if let Some((start, factor)) = self.slowdown(pos) {
                if t >= start {
                    procs[idx].comp = scale_cost(&procs[idx].comp, factor);
                }
            }
            let lf = self.link_factor(pos);
            if lf != 1.0 {
                procs[idx].comm = scale_cost(&procs[idx].comm, lf);
            }
        }
        Platform::new(procs, platform.root())
    }
}

/// A cost function scaled by a constant factor, preserving the variant
/// (so linearity/affinity — and with them the fast strategies — survive
/// the scaling).
fn scale_cost(f: &CostFn, k: f64) -> CostFn {
    match f {
        CostFn::Zero => {
            CostFn::Zero // k · 0 = 0
        }
        CostFn::Linear { slope } => CostFn::Linear { slope: slope * k },
        CostFn::Affine { intercept, slope } => {
            CostFn::Affine { intercept: intercept * k, slope: slope * k }
        }
        CostFn::Table { points } => {
            CostFn::table(points.iter().map(|&(x, y)| (x, y * k)).collect())
        }
        CostFn::Custom(inner) => {
            let inner = inner.clone();
            CostFn::Custom(std::sync::Arc::new(move |x| inner(x) * k))
        }
    }
}

// ---- recovery policy ------------------------------------------------------

/// Detection and recovery policy of the fault-tolerant scatter.
///
/// Formulas (derived in `docs/robustness.md` from Eq. 1):
///
/// * timeout for a block of `x` items to rank `i`:
///   `timeout = timeout_factor · Tcomm(i, x) + timeout_floor`;
/// * idle before retry `k` (1-based):
///   `backoff(k) = backoff_base · timeout · backoff_factor^(k−1)`;
/// * a rank is declared **dead** after `1 + max_retries` failed
///   attempts; its undelivered items join the residual pool and are
///   re-planned over the survivors with `replan_strategy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Multiple of the predicted `Tcomm` before a send is declared lost
    /// (κ in the docs).
    pub timeout_factor: f64,
    /// Additive floor on the timeout, seconds (τ₀) — keeps tiny blocks
    /// from timing out on scheduling noise.
    pub timeout_floor: f64,
    /// Retries after the first failed attempt before declaring a rank
    /// dead.
    pub max_retries: u32,
    /// Backoff before the first retry, as a fraction of the timeout.
    pub backoff_base: f64,
    /// Multiplicative growth of the backoff per retry.
    pub backoff_factor: f64,
    /// Strategy used to redistribute the residual workload (must accept
    /// the platform's cost model). Exact strategies re-plan through the
    /// session's [`PlanCache`] when the call site passes one (see
    /// [`replan_residual_with`]): the solve warm-starts from the cached
    /// DP columns of the unchanged trailing survivors, with bit-identical
    /// results. The cache invalidates automatically whenever the
    /// platform changes — only columns whose trailing cost-function
    /// signatures still match are ever reused.
    pub replan_strategy: Strategy,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            timeout_factor: 3.0,
            timeout_floor: 1e-3,
            max_retries: 2,
            backoff_base: 0.5,
            backoff_factor: 2.0,
            replan_strategy: Strategy::Exact,
        }
    }
}

impl RecoveryConfig {
    /// The per-send timeout for a block whose nominal transfer time
    /// (Eq. 1's `Tcomm(i, n_i)`) is `nominal_dt`.
    pub fn timeout(&self, nominal_dt: f64) -> f64 {
        self.timeout_factor * nominal_dt + self.timeout_floor
    }

    /// Idle inserted before retry `k` (1-based) of a send with the
    /// given timeout.
    pub fn backoff(&self, timeout: f64, k: u32) -> f64 {
        self.backoff_base * timeout * self.backoff_factor.powi(k as i32 - 1)
    }
}

// ---- the send oracle ------------------------------------------------------

/// Why a send attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// The transfer was silently dropped (transient fault); the sender
    /// waited out the full timeout.
    Transient,
    /// The receiver crashed before the transfer completed; the sender
    /// waited out the full timeout.
    Crash,
    /// The (possibly degraded) transfer could not finish within the
    /// timeout.
    Timeout,
}

impl FailureCause {
    /// Short human-readable label (used in incident `info` strings).
    pub fn as_str(self) -> &'static str {
        match self {
            FailureCause::Transient => "transient loss",
            FailureCause::Crash => "receiver crashed",
            FailureCause::Timeout => "timed out",
        }
    }
}

/// One send attempt: the interval the root's port was held, and how the
/// attempt ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attempt {
    /// When the attempt started (port acquired).
    pub start: f64,
    /// When the port was released (delivery, or timeout expiry).
    pub end: f64,
    /// `None` iff the attempt delivered the block.
    pub failure: Option<FailureCause>,
}

/// The outcome of sending one block through the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct SendOutcome {
    /// Every attempt, in time order (at least one).
    pub attempts: Vec<Attempt>,
    /// `(start, end)` of the successful transfer, if any.
    pub delivered: Option<(f64, f64)>,
    /// When the root's outgoing port becomes free again (end of the
    /// last attempt; backoff idles *between* attempts are included in
    /// the gap up to the next attempt's `start`).
    pub port_free: f64,
    /// `true` iff the receiver was declared dead by this send.
    pub declared_dead: bool,
}

/// Mutable per-run fault state: the oracle both the simulator and the
/// minimpi runtime consult for every send and compute.
///
/// Determinism contract: given the same [`FaultPlan`], the same
/// sequence of `send` calls (same ranks, times and nominal durations)
/// and the same [`RecoveryConfig`], the oracle returns bit-identical
/// outcomes — this is what makes the simulated and executed recovered
/// traces agree exactly.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    transient_left: Vec<u32>,
    dead: Vec<bool>,
    cache: Arc<PlanCache>,
}

impl FaultSession {
    /// Starts a session for a `p`-rank scatter, with a fresh
    /// [`PlanCache`] (so repeated re-plans inside this session
    /// warm-start off each other).
    pub fn new(plan: &FaultPlan, p: usize) -> FaultSession {
        FaultSession {
            plan: plan.clone(),
            transient_left: (0..p).map(|r| plan.transient_budget(r)).collect(),
            dead: vec![false; p],
            cache: Arc::new(PlanCache::new()),
        }
    }

    /// Replaces the session's [`PlanCache`] with a shared one — prime
    /// it from the initial plan's solve so even the *first* re-plan
    /// warm-starts.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> FaultSession {
        self.cache = cache;
        self
    }

    /// The session's plan cache, for passing to
    /// [`replan_residual_with`] (or sharing with a [`Planner`]).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The underlying fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// `true` iff `rank` has been declared dead (or is past its crash
    /// time as observed by a completed send).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank]
    }

    /// Ranks currently believed alive, in rank order.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&r| !self.dead[r]).collect()
    }

    /// Sends a block to `rank` starting at time `now`; the fault-free
    /// transfer would take `nominal_dt` seconds (Eq. 1's
    /// `Tcomm(rank, n_rank)`).
    ///
    /// With `recovery == None` the send is *fault-oblivious* (the
    /// degraded baseline): exactly one attempt, the port is held for
    /// the full (possibly degraded) transfer, and a lost block is
    /// simply lost. With a [`RecoveryConfig`], failures are detected by
    /// timeout and retried with backoff; after `1 + max_retries`
    /// failures the receiver is declared dead.
    pub fn send(
        &mut self,
        rank: usize,
        now: f64,
        nominal_dt: f64,
        recovery: Option<&RecoveryConfig>,
    ) -> SendOutcome {
        let out = self.send_inner(rank, now, recovery, nominal_dt);
        if span::enabled() {
            // Virtual-clock spans, one per attempt (plus the backoff
            // idles between them), on the receiver's lane.
            for (k, a) in out.attempts.iter().enumerate() {
                let outcome = a.failure.map_or("delivered", FailureCause::as_str);
                span::record_virtual(
                    "ft",
                    "ft.attempt",
                    rank as u64,
                    a.start,
                    a.end,
                    vec![("attempt", (k + 1).to_string()), ("outcome", outcome.to_string())],
                );
                if let Some(next) = out.attempts.get(k + 1) {
                    if next.start > a.end {
                        span::record_virtual(
                            "ft",
                            "ft.backoff",
                            rank as u64,
                            a.end,
                            next.start,
                            Vec::new(),
                        );
                    }
                }
            }
        }
        out
    }

    fn send_inner(
        &mut self,
        rank: usize,
        now: f64,
        recovery: Option<&RecoveryConfig>,
        nominal_dt: f64,
    ) -> SendOutcome {
        let dt_eff = self.plan.link_factor(rank) * nominal_dt;
        let crash = self.plan.crash_time(rank);

        let reg = crate::metrics::Registry::global();
        reg.counter("ft_sends_total", "blocks the fault session attempted to send").inc();

        let Some(rc) = recovery else {
            // Fault-oblivious: the root pushes the bytes and moves on.
            let end = now + dt_eff;
            let failure = if self.transient_left[rank] > 0 {
                self.transient_left[rank] -= 1;
                Some(FailureCause::Transient)
            } else if crash.is_some_and(|at| end > at) {
                self.dead[rank] = true;
                Some(FailureCause::Crash)
            } else {
                None
            };
            return SendOutcome {
                attempts: vec![Attempt { start: now, end, failure }],
                delivered: failure.is_none().then_some((now, end)),
                port_free: end,
                declared_dead: false,
            };
        };

        let timeout = rc.timeout(nominal_dt);
        let mut attempts = Vec::new();
        let mut t = now;
        for k in 0..=rc.max_retries {
            let failure = if self.transient_left[rank] > 0 {
                self.transient_left[rank] -= 1;
                Some(FailureCause::Transient)
            } else if crash.is_some_and(|at| t + dt_eff > at) {
                Some(FailureCause::Crash)
            } else if dt_eff > timeout {
                Some(FailureCause::Timeout)
            } else {
                None
            };
            match failure {
                None => {
                    let end = t + dt_eff;
                    attempts.push(Attempt { start: t, end, failure: None });
                    return SendOutcome {
                        attempts,
                        delivered: Some((t, end)),
                        port_free: end,
                        declared_dead: false,
                    };
                }
                Some(cause) => {
                    // A failed attempt holds the port for the full
                    // timeout — the sender cannot tell a slow ack from
                    // a lost one before the clock runs out.
                    let end = t + timeout;
                    attempts.push(Attempt { start: t, end, failure: Some(cause) });
                    reg.counter("ft_timeouts_total", "send attempts that timed out").inc();
                    if k < rc.max_retries {
                        let backoff = rc.backoff(timeout, k + 1);
                        reg.counter("ft_retries_total", "send re-attempts after a timeout")
                            .inc();
                        reg.histogram("ft_backoff_seconds", "backoff waits between retries")
                            .observe(backoff);
                        t = end + backoff;
                    }
                }
            }
        }
        self.dead[rank] = true;
        reg.counter("ft_dead_declared_total", "ranks declared dead after exhausted retries")
            .inc();
        let port_free = attempts.last().expect("at least one attempt").end;
        SendOutcome { attempts, delivered: None, port_free, declared_dead: true }
    }

    /// Wall-clock duration of a compute phase on `rank` starting at
    /// `start` whose fault-free duration is `nominal` (see
    /// [`FaultPlan::stretched_compute`]).
    pub fn compute_duration(&self, rank: usize, start: f64, nominal: f64) -> f64 {
        self.plan.stretched_compute(rank, start, nominal)
    }
}

/// The [`Incident`]s a [`SendOutcome`] contributes to a trace: one
/// `fault` per failed attempt (at the moment the failure is detected)
/// and one `retry` at the start of each re-attempt. Shared by the
/// simulator and the runtime so both label identical schedules with
/// identical incident streams.
pub fn outcome_incidents(
    rank: usize,
    items: u64,
    name: &str,
    out: &SendOutcome,
) -> Vec<Incident> {
    let mut incidents = Vec::new();
    for (k, a) in out.attempts.iter().enumerate() {
        if k > 0 {
            incidents.push(Incident {
                t: a.start,
                kind: IncidentKind::Retry,
                rank,
                items,
                info: format!("retry {k}/{} to {name}", out.attempts.len() - 1),
            });
        }
        if let Some(cause) = a.failure {
            incidents.push(Incident {
                t: a.end,
                kind: IncidentKind::Fault,
                rank,
                items,
                info: format!("attempt {} to {name}: {}", k + 1, cause.as_str()),
            });
        }
    }
    incidents
}

// ---- re-planning ----------------------------------------------------------

/// The re-planned distribution of a residual workload over survivors.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualPlan {
    /// Scatter positions (in the *original* rank space) of the
    /// survivors, in their preserved relative order, root last.
    pub positions: Vec<usize>,
    /// Items assigned to each survivor, aligned with `positions`.
    pub counts: Vec<u64>,
    /// Predicted makespan of the residual schedule (Eq. 2 on the
    /// survivor sub-platform), relative to the re-plan instant.
    pub predicted_makespan: f64,
}

/// Recomputes an optimal distribution of `residual` items over the
/// surviving processors (always from scratch — see
/// [`replan_residual_with`] for the warm-started version).
///
/// `procs` is the full scatter-order view (root last); `alive[i]`
/// says whether scatter position `i` survives (`alive[last]` must be
/// `true` — the root is the sender). The survivors keep their relative
/// order ([`OrderPolicy::AsIs`]), matching the guarantee documented in
/// `docs/robustness.md`: the residual distribution is exactly what a
/// from-scratch run of `strategy` on the survivor sub-platform yields.
pub fn replan_residual(
    procs: &[&Processor],
    alive: &[bool],
    residual: u64,
    strategy: Strategy,
) -> Result<ResidualPlan, PlanError> {
    replan_residual_with(procs, alive, residual, strategy, None)
}

/// [`replan_residual`] with an optional [`PlanCache`]: exact strategies
/// store their DP plane into the cache and warm-start from the columns
/// of trailing survivors whose cost functions are unchanged since the
/// cached solve — the dominant case after a mid-scatter failure, where
/// the survivor sub-platform is a sub-sequence of the one just solved.
///
/// Warm-started re-plans return the same distribution and predicted
/// makespan as from-scratch ones (bit-identical — property-tested);
/// the cache only changes how much of the DP table is recomputed.
/// Warm starts are counted as `ft_warm_replans_total` (and column-level
/// detail as `dp_warm_columns_reused_total`).
pub fn replan_residual_with(
    procs: &[&Processor],
    alive: &[bool],
    residual: u64,
    strategy: Strategy,
    cache: Option<&Arc<PlanCache>>,
) -> Result<ResidualPlan, PlanError> {
    assert_eq!(procs.len(), alive.len(), "one liveness flag per processor");
    assert!(alive.last().copied().unwrap_or(false), "the root must survive");
    let mut replan_span = span::span("ft", "ft.replan");
    let reg = crate::metrics::Registry::global();
    reg.counter("ft_replans_total", "residual re-plans after failures").inc();
    let replan_timer = reg
        .histogram("ft_replan_seconds", "wall-clock of residual re-planning")
        .start_timer();
    let positions: Vec<usize> = (0..procs.len()).filter(|&i| alive[i]).collect();
    let survivors: Vec<Processor> = positions.iter().map(|&i| procs[i].clone()).collect();
    let root = survivors.len() - 1;
    let platform = Platform::new(survivors, root)?;
    let mut planner = Planner::new(platform)
        .strategy(strategy)
        .order_policy(OrderPolicy::AsIs);
    let hits_before = cache.map(|c| c.hits());
    if let Some(c) = cache {
        planner = planner.plan_cache(Arc::clone(c));
    }
    let plan = planner.plan(residual as usize)?;
    let warm = hits_before.zip(cache).is_some_and(|(before, c)| c.hits() > before);
    if warm {
        reg.counter("ft_warm_replans_total", "residual re-plans that warm-started").inc();
    }
    replan_timer.stop();
    replan_span.attr("residual", residual);
    replan_span.attr("survivors", positions.len());
    replan_span.attr("warm", warm);
    Ok(ResidualPlan {
        positions,
        counts: plan.counts_in_order().iter().map(|&c| c as u64).collect(),
        predicted_makespan: plan.predicted_makespan,
    })
}

/// Takes the first `want` items off a pool of half-open item ranges
/// `(lo, hi)`, splitting the boundary range if needed. Returns the
/// taken ranges; the pool keeps the rest. Panics if the pool holds
/// fewer than `want` items.
pub fn take_items(pool: &mut Vec<(u64, u64)>, want: u64) -> Vec<(u64, u64)> {
    let mut taken = Vec::new();
    let mut need = want;
    while need > 0 {
        let (lo, hi) = *pool.first().expect("pool underflow: fewer items than requested");
        let len = hi - lo;
        if len <= need {
            taken.push((lo, hi));
            pool.remove(0);
            need -= len;
        } else {
            taken.push((lo, lo + need));
            pool[0] = (lo + need, hi);
            need = 0;
        }
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let names = ["w1", "w2", "w3", "root"];
        let plan = FaultPlan::parse(
            "crash:w1@2.5; flaky:w2:3, slow:w3:2@50%, link:0:1.5, slow:root:4",
            &names,
            10.0,
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 5);
        assert_eq!(plan.crash_time(0), Some(2.5));
        assert_eq!(plan.transient_budget(1), 3);
        assert_eq!(plan.slowdown(2), Some((5.0, 2.0))); // 50% of horizon 10
        assert_eq!(plan.link_factor(0), 1.5);
        assert_eq!(plan.slowdown(3), Some((0.0, 4.0)));
        plan.validate(4).unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        let names = ["w1", "root"];
        for bad in [
            "explode:w1@1",
            "crash:w1",
            "crash:nosuch@1",
            "crash:9@1",
            "slow:w1:-2",
            "slow:w1:0",
            "crash:w1@-1",
            "flaky:w1:x",
            "seed:x",
        ] {
            assert!(
                matches!(FaultPlan::parse(bad, &names, 1.0), Err(PlanError::FaultSpec(_))),
                "`{bad}` should be rejected"
            );
        }
        // Empty spec and empty clauses are fine.
        assert!(FaultPlan::parse("", &names, 1.0).unwrap().is_empty());
        assert!(FaultPlan::parse(" , ; ", &names, 1.0).unwrap().is_empty());
    }

    #[test]
    fn validate_protects_the_root() {
        let crash_root = FaultPlan { faults: vec![Fault { rank: 2, kind: FaultKind::Crash { at: 1.0 } }] };
        assert!(crash_root.validate(3).is_err());
        assert!(crash_root.validate(4).is_ok()); // rank 2 is not the root of a 4-rank run
        let oob = FaultPlan { faults: vec![Fault { rank: 7, kind: FaultKind::LinkDegrade { factor: 2.0 } }] };
        assert!(oob.validate(3).is_err());
    }

    #[test]
    fn seeded_is_deterministic_and_spares_the_root() {
        let a = FaultPlan::seeded(42, 16, 100.0);
        let b = FaultPlan::seeded(42, 16, 100.0);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, 16, 100.0));
        a.validate(16).unwrap();
        // Scanning many seeds, some must inject faults.
        assert!((0..50).any(|s| !FaultPlan::seeded(s, 16, 100.0).is_empty()));
    }

    #[test]
    fn shifted_moves_times_only() {
        let plan = FaultPlan::parse("crash:0@5, slow:1:2@3, flaky:0:1", &["a", "b", "r"], 1.0)
            .unwrap();
        let moved = plan.shifted(-4.0);
        assert_eq!(moved.crash_time(0), Some(1.0));
        assert_eq!(moved.slowdown(1), Some((0.0, 2.0))); // clamped at 0
        assert_eq!(moved.transient_budget(0), 1);
    }

    #[test]
    fn oracle_delivers_when_nothing_is_wrong() {
        let mut s = FaultSession::new(&FaultPlan::none(), 3);
        let rc = RecoveryConfig::default();
        let out = s.send(0, 1.0, 0.5, Some(&rc));
        assert_eq!(out.delivered, Some((1.0, 1.5)));
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.port_free, 1.5);
        assert!(!out.declared_dead);
        // Degraded mode agrees on the happy path.
        let mut s2 = FaultSession::new(&FaultPlan::none(), 3);
        assert_eq!(s2.send(0, 1.0, 0.5, None).delivered, Some((1.0, 1.5)));
    }

    #[test]
    fn oracle_retries_through_transient_faults() {
        let plan = FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::Transient { failures: 2 } }] };
        let mut s = FaultSession::new(&plan, 2);
        let rc = RecoveryConfig::default();
        let out = s.send(0, 0.0, 1.0, Some(&rc));
        // timeout = 3·1 + 1e-3; attempts 1,2 fail, 3 delivers.
        let timeout = rc.timeout(1.0);
        assert_eq!(out.attempts.len(), 3);
        assert_eq!(out.attempts[0].failure, Some(FailureCause::Transient));
        assert_eq!(out.attempts[1].start, timeout + rc.backoff(timeout, 1));
        let t3 = out.attempts[1].end + rc.backoff(timeout, 2);
        assert_eq!(out.attempts[2], Attempt { start: t3, end: t3 + 1.0, failure: None });
        assert_eq!(out.delivered, Some((t3, t3 + 1.0)));
        assert!(!out.declared_dead);
        assert_eq!(s.plan().transient_budget(0), 2); // plan itself untouched
    }

    #[test]
    fn oracle_declares_crashed_rank_dead() {
        let plan = FaultPlan { faults: vec![Fault { rank: 1, kind: FaultKind::Crash { at: 0.25 } }] };
        let mut s = FaultSession::new(&plan, 3);
        let rc = RecoveryConfig { max_retries: 1, ..RecoveryConfig::default() };
        let out = s.send(1, 0.0, 1.0, Some(&rc));
        assert_eq!(out.attempts.len(), 2);
        assert!(out.attempts.iter().all(|a| a.failure == Some(FailureCause::Crash)));
        assert_eq!(out.delivered, None);
        assert!(out.declared_dead);
        assert!(s.is_dead(1));
        assert_eq!(s.alive(), vec![0, 2]);
    }

    #[test]
    fn oracle_times_out_hopelessly_degraded_links() {
        // link factor 10 → dt_eff = 10 > timeout = 3 + floor.
        let plan = FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::LinkDegrade { factor: 10.0 } }] };
        let mut s = FaultSession::new(&plan, 2);
        let out = s.send(0, 0.0, 1.0, Some(&RecoveryConfig::default()));
        assert!(out.attempts.iter().all(|a| a.failure == Some(FailureCause::Timeout)));
        assert!(out.declared_dead);
        // A mild degradation inside the timeout just takes longer.
        let mild = FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::LinkDegrade { factor: 2.0 } }] };
        let mut s2 = FaultSession::new(&mild, 2);
        let ok = s2.send(0, 0.0, 1.0, Some(&RecoveryConfig::default()));
        assert_eq!(ok.delivered, Some((0.0, 2.0)));
    }

    #[test]
    fn degraded_mode_loses_blocks_silently() {
        let plan = FaultPlan {
            faults: vec![
                Fault { rank: 0, kind: FaultKind::Transient { failures: 1 } },
                Fault { rank: 1, kind: FaultKind::Crash { at: 0.1 } },
            ],
        };
        let mut s = FaultSession::new(&plan, 3);
        let lost = s.send(0, 0.0, 1.0, None);
        assert_eq!(lost.delivered, None);
        assert_eq!(lost.port_free, 1.0); // port held for the full transfer
        assert!(!lost.declared_dead); // nobody noticed
        let crashed = s.send(1, 1.0, 1.0, None);
        assert_eq!(crashed.delivered, None);
        // Second send to rank 0 goes through (budget spent).
        assert!(s.send(0, 2.0, 1.0, None).delivered.is_some());
    }

    #[test]
    fn compute_duration_stretches_piecewise() {
        let plan = FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::Slowdown { start: 10.0, factor: 3.0 } }] };
        let s = FaultSession::new(&plan, 2);
        assert_eq!(s.compute_duration(0, 12.0, 4.0), 12.0); // fully after onset
        assert_eq!(s.compute_duration(0, 2.0, 4.0), 4.0); // fully before
        assert_eq!(s.compute_duration(0, 8.0, 4.0), 2.0 + 2.0 * 3.0); // straddles
        assert_eq!(s.compute_duration(1, 0.0, 4.0), 4.0); // unaffected rank
    }

    #[test]
    fn outcome_incidents_are_time_ordered() {
        let plan = FaultPlan { faults: vec![Fault { rank: 0, kind: FaultKind::Transient { failures: 1 } }] };
        let mut s = FaultSession::new(&plan, 2);
        let out = s.send(0, 0.0, 1.0, Some(&RecoveryConfig::default()));
        let incidents = outcome_incidents(0, 7, "w1", &out);
        // fault (attempt 1) then retry (attempt 2), strictly ordered.
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].kind, IncidentKind::Fault);
        assert_eq!(incidents[1].kind, IncidentKind::Retry);
        assert!(incidents[0].t <= incidents[1].t);
        assert!(incidents[0].info.contains("transient loss"));
        assert_eq!(incidents[0].items, 7);
    }

    #[test]
    fn replan_matches_from_scratch_dp() {
        use crate::cost::Processor;
        let procs = [
            Processor::linear("w1", 2e-3, 8e-3),
            Processor::linear("w2", 1e-3, 5e-3),
            Processor::linear("w3", 3e-3, 2e-3),
            Processor::linear("root", 0.0, 4e-3),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        // w2 (position 1) died; 500 items left.
        let alive = [true, false, true, true];
        let rp = replan_residual(&view, &alive, 500, Strategy::Exact).unwrap();
        assert_eq!(rp.positions, vec![0, 2, 3]);
        assert_eq!(rp.counts.iter().sum::<u64>(), 500);
        // Cross-check against a hand-built survivor platform.
        let survivors = vec![procs[0].clone(), procs[2].clone(), procs[3].clone()];
        let platform = Platform::new(survivors, 2).unwrap();
        let direct = Planner::new(platform)
            .strategy(Strategy::Exact)
            .order_policy(OrderPolicy::AsIs)
            .plan(500)
            .unwrap();
        let direct_counts: Vec<u64> =
            direct.counts_in_order().iter().map(|&c| c as u64).collect();
        assert_eq!(rp.counts, direct_counts);
        assert_eq!(rp.predicted_makespan, direct.predicted_makespan);
    }

    #[test]
    fn warm_replan_is_bit_identical_to_cold() {
        use crate::cost::Processor;
        let procs = [
            Processor::linear("w1", 2e-3, 8e-3),
            Processor::linear("w2", 1e-3, 5e-3),
            Processor::linear("w3", 3e-3, 2e-3),
            Processor::linear("root", 0.0, 4e-3),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        let session = FaultSession::new(&FaultPlan::none(), 4);
        for strategy in [Strategy::Exact, Strategy::ExactDc, Strategy::ExactBasic] {
            // First re-plan fills the cache; w1 then dies and the second
            // re-plan warm-starts from the surviving suffix.
            let alive1 = [true, true, true, true];
            let warm1 = replan_residual_with(
                &view, &alive1, 800, strategy, Some(session.plan_cache()),
            )
            .unwrap();
            let cold1 = replan_residual(&view, &alive1, 800, strategy).unwrap();
            assert_eq!(warm1, cold1, "{strategy:?}: initial re-plan");
            let alive2 = [false, true, true, true];
            let hits_before = session.plan_cache().hits();
            let warm2 = replan_residual_with(
                &view, &alive2, 500, strategy, Some(session.plan_cache()),
            )
            .unwrap();
            let cold2 = replan_residual(&view, &alive2, 500, strategy).unwrap();
            assert_eq!(warm2, cold2, "{strategy:?}: warm re-plan after death");
            assert_eq!(
                warm2.predicted_makespan.to_bits(),
                cold2.predicted_makespan.to_bits(),
                "{strategy:?}"
            );
            assert!(
                session.plan_cache().hits() > hits_before,
                "{strategy:?}: survivor-suffix re-plan must warm-start"
            );
        }
    }

    #[test]
    fn warm_replan_misses_on_a_changed_platform() {
        use crate::cost::Processor;
        let session = FaultSession::new(&FaultPlan::none(), 3);
        let a = [
            Processor::linear("w1", 2e-3, 8e-3),
            Processor::linear("w2", 1e-3, 5e-3),
            Processor::linear("root", 0.0, 4e-3),
        ];
        let view_a: Vec<&Processor> = a.iter().collect();
        let alive = [true, true, true];
        replan_residual_with(&view_a, &alive, 300, Strategy::Exact, Some(session.plan_cache()))
            .unwrap();
        // Re-measured platform: every cost function differs, so the
        // cached columns are invalid and the lookup must miss.
        let b = [
            Processor::linear("w1", 3e-3, 9e-3),
            Processor::linear("w2", 2e-3, 6e-3),
            Processor::linear("root", 0.0, 5e-3),
        ];
        let view_b: Vec<&Processor> = b.iter().collect();
        let before = session.plan_cache().hits();
        let rp = replan_residual_with(
            &view_b, &alive, 300, Strategy::Exact, Some(session.plan_cache()),
        )
        .unwrap();
        assert_eq!(session.plan_cache().hits(), before, "changed platform must not hit");
        assert_eq!(rp, replan_residual(&view_b, &alive, 300, Strategy::Exact).unwrap());
    }

    #[test]
    fn take_items_splits_ranges() {
        let mut pool = vec![(0u64, 10u64), (20, 25)];
        assert_eq!(take_items(&mut pool, 4), vec![(0, 4)]);
        assert_eq!(pool, vec![(4, 10), (20, 25)]);
        assert_eq!(take_items(&mut pool, 8), vec![(4, 10), (20, 22)]);
        assert_eq!(pool, vec![(22, 25)]);
        assert_eq!(take_items(&mut pool, 3), vec![(22, 25)]);
        assert!(pool.is_empty());
        assert!(take_items(&mut pool, 0).is_empty());
    }

    #[test]
    fn degraded_platform_scales_costs() {
        let platform = Platform::new(
            vec![
                Processor::linear("root", 0.0, 1.0),
                Processor::linear("w1", 2.0, 4.0),
                Processor::linear("w2", 1.0, 2.0),
            ],
            0,
        )
        .unwrap();
        let order = vec![1, 2, 0]; // w1, w2, root
        let plan = FaultPlan::parse("slow:w1:3@5, link:w2:2", &["w1", "w2", "root"], 1.0)
            .unwrap();
        // Before the slowdown onset: only the link is degraded.
        let before = plan.degraded_platform(&platform, &order, 0.0).unwrap();
        assert_eq!(before.procs()[1].comp.eval(10), 40.0);
        assert_eq!(before.procs()[2].comm.eval(10), 20.0);
        // After the onset: compute is stretched too, and stays linear.
        let after = plan.degraded_platform(&platform, &order, 6.0).unwrap();
        assert_eq!(after.procs()[1].comp.eval(10), 120.0);
        assert!(after.procs()[1].comp.linear_slope().is_some());
    }
}
