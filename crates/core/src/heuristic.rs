//! The guaranteed LP heuristic of RR-4770 §3.3, for affine cost functions.
//!
//! The makespan minimization (Eq. 2) with affine costs is the linear
//! program (Eq. 3):
//!
//! ```text
//! minimize T   subject to
//!   n_i >= 0                                   for all i
//!   Σ_i n_i = n
//!   Σ_{j<=i} Tcomm(j, n_j) + Tcomp(i, n_i) <= T   for all i
//! ```
//!
//! solved here **exactly in rationals** (the paper used PIP). The rational
//! optimum `n_1..n_p` is rounded with the §3.3 scheme
//! ([`crate::rounding::round_shares`]), which moves every share by less
//! than one, giving the guarantee (Eq. 4):
//!
//! ```text
//! T_opt <= T' <= T_opt + Σ_j Tcomm(j, 1) + max_i Tcomp(i, 1)
//! ```
//!
//! where `T_opt` is the optimal *integer* makespan. In the paper's
//! experiment the observed relative error against the DP optimum was below
//! `6·10⁻⁶` with an essentially instantaneous runtime, versus 6 minutes for
//! Algorithm 2.

use gs_lp::{LpProblem, Sense};
use gs_numeric::Rational;

use crate::cost::Processor;
use crate::distribution::makespan;
use crate::error::PlanError;
use crate::rounding::round_shares;

/// Result of the guaranteed heuristic.
#[derive(Debug, Clone)]
pub struct HeuristicSolution {
    /// Integer counts after rounding, in scatter order.
    pub counts: Vec<usize>,
    /// The exact rational optimal shares of the LP relaxation.
    pub rational_shares: Vec<Rational>,
    /// The exact rational optimal makespan `T` of the LP relaxation
    /// (a lower bound on the optimal integer makespan).
    pub rational_makespan: Rational,
    /// Eq. (2) makespan of `counts`.
    pub makespan: f64,
    /// The guarantee (Eq. 4): `makespan <= guarantee_bound`, and the
    /// optimal integer makespan lies in `[rational_makespan, makespan]`.
    pub guarantee_bound: f64,
}

/// Exact `(intercept, slope)` pair of one affine cost function.
type AffinePair = (Rational, Rational);

/// Extracts the exact affine parameters `(intercept, slope)` of both cost
/// functions of each processor.
fn affine_params(procs: &[&Processor]) -> Result<Vec<(AffinePair, AffinePair)>, PlanError> {
    procs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let comm = p.comm.affine_params().ok_or(PlanError::NotAffine { proc: i })?;
            let comp = p.comp.affine_params().ok_or(PlanError::NotAffine { proc: i })?;
            for v in [comm.0, comm.1, comp.0, comp.1] {
                if !v.is_finite() || v < 0.0 {
                    return Err(PlanError::InvalidCost { proc: i, items: 1, value: v });
                }
            }
            let to_rat = |v: f64| Rational::from_f64(v).expect("finite checked above");
            Ok((
                (to_rat(comm.0), to_rat(comm.1)),
                (to_rat(comp.0), to_rat(comp.1)),
            ))
        })
        .collect()
}

/// Runs the guaranteed heuristic on processors in scatter order (root
/// last): exact rational LP solve, then the §3.3 rounding scheme.
///
/// ```
/// use gs_scatter::cost::Processor;
/// use gs_scatter::heuristic::heuristic_distribution;
///
/// let procs = vec![
///     Processor::linear("w", 1e-4, 0.004),
///     Processor::linear("root", 0.0, 0.009),
/// ];
/// let view: Vec<&Processor> = procs.iter().collect();
/// let h = heuristic_distribution(&view, 10_000).unwrap();
/// assert_eq!(h.counts.iter().sum::<usize>(), 10_000);
/// // Eq. (4): the rounded makespan never exceeds the guarantee bound.
/// assert!(h.makespan <= h.guarantee_bound);
/// ```
pub fn heuristic_distribution(
    procs: &[&Processor],
    n: usize,
) -> Result<HeuristicSolution, PlanError> {
    if procs.is_empty() {
        return Err(PlanError::InvalidPlatform("no processors".into()));
    }
    let params = affine_params(procs)?;
    let p = procs.len();

    // Build Eq. (3).
    let mut lp = LpProblem::new(Sense::Minimize);
    let t = lp.add_var("T");
    let vars: Vec<_> = (0..p).map(|i| lp.add_var(format!("n{i}"))).collect();
    lp.set_objective([(t, Rational::one())]);
    // Σ n_i = n.
    lp.add_eq(
        vars.iter().map(|&v| (v, Rational::one())),
        Rational::from(n),
    );
    // For each i: Σ_{j<=i} (b_j + β_j·n_j) + a_i + α_i·n_i <= T,
    // i.e.  Σ_{j<=i} β_j·n_j + α_i·n_i − T <= −(Σ_{j<=i} b_j + a_i).
    let mut comm_intercepts = Rational::zero();
    for i in 0..p {
        let ((ref b_i, _), (ref a_i, ref alpha_i)) = params[i];
        comm_intercepts += b_i;
        let mut terms: Vec<(gs_lp::VarId, Rational)> = Vec::with_capacity(i + 2);
        for j in 0..=i {
            let beta_j = params[j].0 .1.clone();
            let coef = if j == i { &beta_j + alpha_i } else { beta_j };
            terms.push((vars[j], coef));
        }
        terms.push((t, -Rational::one()));
        let rhs = -(&comm_intercepts + a_i);
        lp.add_le(terms, rhs);
    }

    let sol = lp.solve().map_err(|e| PlanError::LpFailed(e.to_string()))?;

    let rational_shares: Vec<Rational> = vars.iter().map(|&v| sol[v].clone()).collect();
    let rational_makespan = sol.objective.clone();
    let counts = round_shares(&rational_shares, n);
    let actual = makespan(procs, &counts);

    // Eq. (4) bound: T_rat + Σ_j Tcomm(j,1) + max_i Tcomp(i,1).
    let comm_sum: f64 = procs.iter().map(|p| p.comm.eval(1)).sum();
    let comp_max: f64 = procs
        .iter()
        .map(|p| p.comp.eval(1))
        .fold(0.0f64, f64::max);
    let guarantee_bound = rational_makespan.to_f64() + comm_sum + comp_max;

    Ok(HeuristicSolution {
        counts,
        rational_shares,
        rational_makespan,
        makespan: actual,
        guarantee_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::closed_form_distribution;
    use crate::cost::Processor;
    use crate::dp_optimized::optimal_distribution;

    fn view(ps: &[Processor]) -> Vec<&Processor> {
        ps.iter().collect()
    }

    #[test]
    fn matches_closed_form_on_linear_costs() {
        // For linear costs the LP optimum must equal the Theorem-1 closed
        // form (same rational program).
        let ps = vec![
            Processor::linear("a", 0.2, 2.0),
            Processor::linear("b", 0.5, 1.0),
            Processor::linear("root", 0.0, 1.5),
        ];
        let v = view(&ps);
        let n = 777;
        let h = heuristic_distribution(&v, n).unwrap();
        let cf = closed_form_distribution(&v, n).unwrap();
        assert_eq!(h.rational_makespan, cf.duration);
        for (hs, cs) in h.rational_shares.iter().zip(&cf.shares) {
            assert_eq!(hs, cs);
        }
    }

    #[test]
    fn guarantee_bound_holds_vs_dp() {
        let ps = vec![
            Processor::linear("a", 0.3, 1.2),
            Processor::linear("b", 0.6, 0.8),
            Processor::linear("c", 0.1, 2.5),
            Processor::linear("root", 0.0, 1.0),
        ];
        let v = view(&ps);
        for n in [1usize, 13, 100, 509] {
            let h = heuristic_distribution(&v, n).unwrap();
            let exact = optimal_distribution(&v, n).unwrap();
            // Sandwich: T_rat <= T_opt <= T' <= bound.
            assert!(h.rational_makespan.to_f64() <= exact.makespan + 1e-9, "n={n}");
            assert!(exact.makespan <= h.makespan + 1e-9, "n={n}");
            assert!(h.makespan <= h.guarantee_bound + 1e-9, "n={n}");
        }
    }

    #[test]
    fn affine_costs_supported() {
        let ps = vec![
            Processor::affine("a", 0.5, 0.01, 1.0, 0.2),
            Processor::affine("b", 0.2, 0.05, 0.3, 0.1),
            Processor::affine("root", 0.0, 0.0, 0.0, 0.15),
        ];
        let v = view(&ps);
        let n = 500;
        let h = heuristic_distribution(&v, n).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), n);
        assert!(h.makespan <= h.guarantee_bound + 1e-9);
        // Against the exact DP (affine costs are increasing):
        let exact = optimal_distribution(&v, n).unwrap();
        assert!(exact.makespan <= h.makespan + 1e-9);
        assert!(h.makespan <= h.guarantee_bound + 1e-9);
    }

    #[test]
    fn heuristic_error_is_tiny_at_scale() {
        // The §5.2 observation: relative error below 6e-6 at n = 817,101.
        // At n = 20,000 on a Table-1-like platform it is already minuscule.
        let ps = vec![
            Processor::linear("caseb", 1.00e-5, 0.004629),
            Processor::linear("pellinore", 1.12e-5, 0.009365),
            Processor::linear("sekhmet", 1.70e-5, 0.004885),
            Processor::linear("dinadan", 0.0, 0.009288),
        ];
        let v = view(&ps);
        let n = 20_000;
        let h = heuristic_distribution(&v, n).unwrap();
        let exact = optimal_distribution(&v, n).unwrap();
        let rel = (h.makespan - exact.makespan) / exact.makespan;
        assert!(rel >= -1e-12, "heuristic cannot beat the optimum");
        assert!(rel < 1e-4, "relative error {rel} too large");
    }

    #[test]
    fn rejects_non_affine() {
        let ps = vec![
            Processor::custom("weird", |x| (x as f64).sqrt(), |x| x as f64),
            Processor::linear("root", 0.0, 1.0),
        ];
        assert!(matches!(
            heuristic_distribution(&view(&ps), 10),
            Err(PlanError::NotAffine { proc: 0 })
        ));
    }

    #[test]
    fn zero_items() {
        let ps = vec![
            Processor::linear("a", 0.1, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let h = heuristic_distribution(&view(&ps), 0).unwrap();
        assert_eq!(h.counts, vec![0, 0]);
        assert_eq!(h.makespan, 0.0);
    }

    #[test]
    fn single_processor() {
        let ps = vec![Processor::linear("root", 0.0, 2.0)];
        let h = heuristic_distribution(&view(&ps), 21).unwrap();
        assert_eq!(h.counts, vec![21]);
        assert_eq!(h.rational_makespan, Rational::from_f64(2.0).unwrap() * Rational::from(21u64));
    }
}
