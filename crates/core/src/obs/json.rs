//! Versioned JSON serialization of traces (schema v1, no external
//! dependencies — the writer and the recursive-descent parser are
//! hand-rolled and cover exactly the JSON subset the schema uses).
//!
//! The document layout is described normatively in
//! `docs/observability.md`; in short:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "source": "predicted",
//!   "item_bytes": 8,
//!   "names": ["p1", "p2", "root"],
//!   "events": [
//!     {"t": 0.0, "kind": "send_start", "rank": 0, "peer": 2,
//!      "item_lo": 0, "item_hi": 3, "bytes": 24}
//!   ]
//! }
//! ```
//!
//! Optional event fields (`peer`, `item_lo`, `item_hi`) are omitted when
//! absent. Integers are written without a fractional part; the parser
//! reads all numbers as `f64`, which is exact for the magnitudes the
//! schema produces (counts and byte totals below 2⁵³).

use super::{
    Event, EventKind, Incident, IncidentKind, PlanTiming, Trace, TraceError, TraceSource,
    SCHEMA_VERSION,
};
use crate::metrics::{
    BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
};

// ---- writer ---------------------------------------------------------------

/// Appends `s` as a quoted, escaped JSON string. Public because every
/// hand-rolled JSON writer in the workspace (traces here, the gs-serve
/// wire protocol) must escape identically.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number. Rust's `Display` for f64 is
/// the shortest representation that round-trips, which is exactly what a
/// trace (or a wire protocol promising bit-identical plans) wants.
pub fn push_f64(out: &mut String, x: f64) {
    out.push_str(&format!("{x}"));
}

/// Serializes a metrics snapshot as the object the schema's optional
/// `metrics` field carries (and that [`metrics_from_json`] reads back).
/// Histogram bucket bounds are powers of two, hence exact; the overflow
/// bucket's +∞ bound — and a `sum` that overflowed to +∞ after ~1e308
/// worth of observations — is written as the string `"inf"` (JSON
/// numbers cannot express it).
pub fn metrics_to_json(snap: &MetricsSnapshot) -> String {
    fn push_le(out: &mut String, le: f64) {
        if le.is_finite() {
            push_f64(out, le);
        } else {
            out.push_str("\"inf\"");
        }
    }
    // A series' label pairs, as an object. Key order is stable: the
    // snapshot keeps labels sorted by key. Omitted entirely for
    // unlabeled series (the common case), which keeps old consumers
    // working — parsers skip unknown fields and tolerate absent ones.
    fn push_labels(out: &mut String, labels: &[(String, String)]) {
        if labels.is_empty() {
            return;
        }
        out.push_str(", \"labels\": {");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_escaped(out, k);
            out.push_str(": ");
            push_escaped(out, v);
        }
        out.push('}');
    }
    let mut out = String::new();
    out.push_str("{\"counters\": [");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        push_escaped(&mut out, &c.name);
        out.push_str(", \"help\": ");
        push_escaped(&mut out, &c.help);
        push_labels(&mut out, &c.labels);
        out.push_str(&format!(", \"value\": {}}}", c.value));
    }
    out.push_str("], \"gauges\": [");
    for (i, g) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        push_escaped(&mut out, &g.name);
        out.push_str(", \"help\": ");
        push_escaped(&mut out, &g.help);
        push_labels(&mut out, &g.labels);
        out.push_str(", \"value\": ");
        push_f64(&mut out, g.value);
        out.push('}');
    }
    out.push_str("], \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        push_escaped(&mut out, &h.name);
        out.push_str(", \"help\": ");
        push_escaped(&mut out, &h.help);
        push_labels(&mut out, &h.labels);
        if let Some(ex) = &h.exemplar {
            out.push_str(", \"exemplar\": ");
            push_escaped(&mut out, ex);
        }
        out.push_str(&format!(", \"count\": {}, \"sum\": ", h.count));
        push_le(&mut out, h.sum);
        out.push_str(", \"buckets\": [");
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"le\": ");
            push_le(&mut out, b.le);
            out.push_str(&format!(", \"count\": {}}}", b.count));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Serializes a trace as a schema-v1 JSON document (one event per line,
/// so the output diffs well under version control).
pub fn trace_to_json(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"source\": \"{}\",\n", trace.source.as_str()));
    out.push_str(&format!("  \"item_bytes\": {},\n", trace.item_bytes));
    if let Some(pt) = &trace.plan_timing {
        out.push_str("  \"plan_timing\": {\"strategy\": ");
        push_escaped(&mut out, &pt.strategy);
        out.push_str(&format!(", \"threads\": {}, \"pruned\": {}", pt.threads, pt.pruned));
        out.push_str(", \"tabulate_secs\": ");
        push_f64(&mut out, pt.tabulate_secs);
        out.push_str(", \"solve_secs\": ");
        push_f64(&mut out, pt.solve_secs);
        out.push_str(", \"total_secs\": ");
        push_f64(&mut out, pt.total_secs);
        out.push_str(&format!(
            ", \"cache_hits\": {}, \"cache_misses\": {}}},\n",
            pt.cache_hits, pt.cache_misses
        ));
    }
    if let Some(label) = &trace.label {
        out.push_str("  \"label\": ");
        push_escaped(&mut out, label);
        out.push_str(",\n");
    }
    if let Some(m) = &trace.metrics {
        out.push_str("  \"metrics\": ");
        out.push_str(&metrics_to_json(m));
        out.push_str(",\n");
    }
    if !trace.incidents.is_empty() {
        out.push_str("  \"incidents\": [");
        for (i, inc) in trace.incidents.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str("{\"t\": ");
            push_f64(&mut out, inc.t);
            out.push_str(&format!(
                ", \"kind\": \"{}\", \"rank\": {}, \"items\": {}, \"info\": ",
                inc.kind.as_str(),
                inc.rank,
                inc.items
            ));
            push_escaped(&mut out, &inc.info);
            out.push('}');
        }
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"names\": [");
    for (i, name) in trace.names.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_escaped(&mut out, name);
    }
    out.push_str("],\n  \"events\": [");
    for (i, e) in trace.events.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str("{\"t\": ");
        push_f64(&mut out, e.t);
        out.push_str(&format!(", \"kind\": \"{}\", \"rank\": {}", e.kind.as_str(), e.rank));
        if let Some(peer) = e.peer {
            out.push_str(&format!(", \"peer\": {peer}"));
        }
        if let Some((lo, hi)) = e.items {
            out.push_str(&format!(", \"item_lo\": {lo}, \"item_hi\": {hi}"));
        }
        out.push_str(&format!(", \"bytes\": {}}}", e.bytes));
    }
    if trace.events.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

// ---- generic JSON values --------------------------------------------------

/// A parsed JSON value (the subset the schema needs; numbers are `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Json, TraceError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(TraceError(format!("trailing garbage at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), TraceError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(TraceError(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, TraceError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err(TraceError("unexpected end of input".into())),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, TraceError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(TraceError(format!("bad literal at byte {}", *pos)))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, TraceError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| TraceError("non-utf8 number".into()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| TraceError(format!("bad number `{text}` at byte {start}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(TraceError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| TraceError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| TraceError(format!("bad \\u escape `{hex}`")))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| TraceError(format!("bad code point {code}")))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(TraceError("bad escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| TraceError("non-utf8 string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, TraceError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(TraceError(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, TraceError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(TraceError(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

// ---- trace decoding -------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, TraceError> {
    obj.get(key)
        .ok_or_else(|| TraceError(format!("missing field `{key}`")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, TraceError> {
    field(obj, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| TraceError(format!("field `{key}` must be a non-negative integer")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, TraceError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| TraceError(format!("field `{key}` must be a number")))
}

fn plan_timing_from_json(obj: &Json) -> Result<PlanTiming, TraceError> {
    let strategy = field(obj, "strategy")?
        .as_str()
        .ok_or_else(|| TraceError("field `strategy` must be a string".into()))?
        .to_string();
    let pruned = match field(obj, "pruned")? {
        Json::Bool(b) => *b,
        _ => return Err(TraceError("field `pruned` must be a boolean".into())),
    };
    Ok(PlanTiming {
        strategy,
        threads: usize_field(obj, "threads")?,
        pruned,
        tabulate_secs: f64_field(obj, "tabulate_secs")?,
        solve_secs: f64_field(obj, "solve_secs")?,
        total_secs: f64_field(obj, "total_secs")?,
        cache_hits: field(obj, "cache_hits")?
            .as_u64()
            .ok_or_else(|| TraceError("field `cache_hits` must be an integer".into()))?,
        cache_misses: field(obj, "cache_misses")?
            .as_u64()
            .ok_or_else(|| TraceError("field `cache_misses` must be an integer".into()))?,
    })
}

fn str_field(obj: &Json, key: &str) -> Result<String, TraceError> {
    field(obj, key)?
        .as_str()
        .map(String::from)
        .ok_or_else(|| TraceError(format!("field `{key}` must be a string")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, TraceError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| TraceError(format!("field `{key}` must be a non-negative integer")))
}

/// Decodes the object written by [`metrics_to_json`].
pub fn metrics_from_json(obj: &Json) -> Result<MetricsSnapshot, TraceError> {
    let arr = |key: &str| -> Result<&[Json], TraceError> {
        field(obj, key)?
            .as_arr()
            .ok_or_else(|| TraceError(format!("field `{key}` must be an array")))
    };
    // Optional `labels` object (absent ≡ unlabeled series).
    let labels_of = |entry: &Json| -> Result<Vec<(String, String)>, TraceError> {
        match entry.get("labels") {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| TraceError("label values must be strings".into()))
                })
                .collect(),
            Some(_) => Err(TraceError("field `labels` must be an object".into())),
        }
    };
    let mut snap = MetricsSnapshot::default();
    for c in arr("counters")? {
        snap.counters.push(CounterSnapshot {
            name: str_field(c, "name")?,
            help: str_field(c, "help")?,
            labels: labels_of(c)?,
            value: u64_field(c, "value")?,
        });
    }
    for g in arr("gauges")? {
        snap.gauges.push(GaugeSnapshot {
            name: str_field(g, "name")?,
            help: str_field(g, "help")?,
            labels: labels_of(g)?,
            value: f64_field(g, "value")?,
        });
    }
    for h in arr("histograms")? {
        let mut buckets = Vec::new();
        for b in field(h, "buckets")?
            .as_arr()
            .ok_or_else(|| TraceError("field `buckets` must be an array".into()))?
        {
            let le = match field(b, "le")? {
                Json::Num(x) => *x,
                Json::Str(s) if s == "inf" => f64::INFINITY,
                _ => {
                    return Err(TraceError(
                        "field `le` must be a number or the string \"inf\"".into(),
                    ))
                }
            };
            buckets.push(BucketCount { le, count: u64_field(b, "count")? });
        }
        let sum = match field(h, "sum")? {
            Json::Num(x) => *x,
            // A sum that overflowed f64 (only upward: observations are
            // non-negative) is exported as the string "inf".
            Json::Str(s) if s == "inf" => f64::INFINITY,
            _ => {
                return Err(TraceError(
                    "field `sum` must be a number or the string \"inf\"".into(),
                ))
            }
        };
        let exemplar = match h.get("exemplar") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(TraceError("field `exemplar` must be a string".into())),
        };
        snap.histograms.push(HistogramSnapshot {
            name: str_field(h, "name")?,
            help: str_field(h, "help")?,
            labels: labels_of(h)?,
            count: u64_field(h, "count")?,
            sum,
            buckets,
            exemplar,
        });
    }
    Ok(snap)
}

/// Deserializes a schema-v1 JSON document back into a [`Trace`].
///
/// Rejects documents with a different `schema` number, unknown event
/// kinds, or structurally invalid values. The decoded trace itself is
/// *not* semantically validated — call [`Trace::validate`] if the
/// document comes from outside the process.
pub fn trace_from_json(text: &str) -> Result<Trace, TraceError> {
    let doc = parse(text)?;
    let schema = usize_field(&doc, "schema")? as u32;
    if schema != SCHEMA_VERSION {
        return Err(TraceError(format!(
            "unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"
        )));
    }
    let source_name = field(&doc, "source")?
        .as_str()
        .ok_or_else(|| TraceError("field `source` must be a string".into()))?;
    let source = TraceSource::parse(source_name)
        .ok_or_else(|| TraceError(format!("unknown trace source `{source_name}`")))?;
    let item_bytes = field(&doc, "item_bytes")?
        .as_u64()
        .ok_or_else(|| TraceError("field `item_bytes` must be an integer".into()))?;
    let names: Vec<String> = field(&doc, "names")?
        .as_arr()
        .ok_or_else(|| TraceError("field `names` must be an array".into()))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(String::from)
                .ok_or_else(|| TraceError("names must be strings".into()))
        })
        .collect::<Result<_, _>>()?;
    let mut trace = Trace::new(source, item_bytes, names);
    // `plan_timing` is optional: absent in documents from older writers.
    if let Some(pt) = doc.get("plan_timing") {
        trace.plan_timing = Some(plan_timing_from_json(pt)?);
    }
    // `label` and `incidents` are optional: absent on fault-free traces
    // and in documents from older writers.
    if let Some(l) = doc.get("label") {
        trace.label = Some(
            l.as_str()
                .ok_or_else(|| TraceError("field `label` must be a string".into()))?
                .to_string(),
        );
    }
    // `metrics` is optional too: attaching is opt-in (see `Trace`).
    if let Some(m) = doc.get("metrics") {
        trace.metrics = Some(metrics_from_json(m)?);
    }
    if let Some(arr) = doc.get("incidents") {
        for (i, inc) in arr
            .as_arr()
            .ok_or_else(|| TraceError("field `incidents` must be an array".into()))?
            .iter()
            .enumerate()
        {
            let t = field(inc, "t")?
                .as_f64()
                .ok_or_else(|| TraceError(format!("incident {i}: `t` must be a number")))?;
            let kind_name = field(inc, "kind")?
                .as_str()
                .ok_or_else(|| TraceError(format!("incident {i}: `kind` must be a string")))?;
            let kind = IncidentKind::parse(kind_name)
                .ok_or_else(|| TraceError(format!("incident {i}: unknown kind `{kind_name}`")))?;
            let rank =
                usize_field(inc, "rank").map_err(|e| TraceError(format!("incident {i}: {e}")))?;
            let items = field(inc, "items")?
                .as_u64()
                .ok_or_else(|| TraceError(format!("incident {i}: `items` must be an integer")))?;
            let info = field(inc, "info")?
                .as_str()
                .ok_or_else(|| TraceError(format!("incident {i}: `info` must be a string")))?
                .to_string();
            trace.incidents.push(Incident { t, kind, rank, items, info });
        }
    }
    for (i, ev) in field(&doc, "events")?
        .as_arr()
        .ok_or_else(|| TraceError("field `events` must be an array".into()))?
        .iter()
        .enumerate()
    {
        let t = field(ev, "t")?
            .as_f64()
            .ok_or_else(|| TraceError(format!("event {i}: `t` must be a number")))?;
        let kind_name = field(ev, "kind")?
            .as_str()
            .ok_or_else(|| TraceError(format!("event {i}: `kind` must be a string")))?;
        let kind = EventKind::parse(kind_name)
            .ok_or_else(|| TraceError(format!("event {i}: unknown kind `{kind_name}`")))?;
        let rank = usize_field(ev, "rank").map_err(|e| TraceError(format!("event {i}: {e}")))?;
        let peer = match ev.get("peer") {
            Some(v) => Some(v.as_u64().map(|x| x as usize).ok_or_else(|| {
                TraceError(format!("event {i}: `peer` must be an integer"))
            })?),
            None => None,
        };
        let items = match (ev.get("item_lo"), ev.get("item_hi")) {
            (Some(lo), Some(hi)) => {
                let lo = lo.as_u64().ok_or_else(|| {
                    TraceError(format!("event {i}: `item_lo` must be an integer"))
                })?;
                let hi = hi.as_u64().ok_or_else(|| {
                    TraceError(format!("event {i}: `item_hi` must be an integer"))
                })?;
                Some((lo, hi))
            }
            (None, None) => None,
            _ => {
                return Err(TraceError(format!(
                    "event {i}: `item_lo` and `item_hi` must appear together"
                )))
            }
        };
        let bytes = field(ev, "bytes")?
            .as_u64()
            .ok_or_else(|| TraceError(format!("event {i}: `bytes` must be an integer")))?;
        trace.push(Event { t, kind, rank, peer, items, bytes });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::super::TraceSource;
    use super::*;
    use crate::cost::Processor;
    use crate::distribution::timeline;

    fn sample() -> Trace {
        let procs = [
            Processor::linear("p,1", 1.0, 2.0), // comma exercises escaping paths
            Processor::linear("p\"2", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![3usize, 2, 1];
        let tl = timeline(&view, &counts);
        Trace::from_timeline(TraceSource::Simulated, &["p,1", "p\"2", "root"], &counts, 8, &tl)
    }

    #[test]
    fn json_round_trips_exactly() {
        let trace = sample();
        let text = trace_to_json(&trace);
        let back = trace_from_json(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn plan_timing_round_trips_exactly() {
        let mut trace = sample();
        trace.plan_timing = Some(PlanTiming {
            strategy: "exact".into(),
            threads: 4,
            pruned: true,
            tabulate_secs: 0.001953125, // dyadic: exact in JSON round-trip
            solve_secs: 0.125,
            total_secs: 0.126953125,
            cache_hits: 3,
            cache_misses: 9,
        });
        let text = trace_to_json(&trace);
        assert!(text.contains("\"plan_timing\""));
        let back = trace_from_json(&text).unwrap();
        assert_eq!(back, trace);
        // Absent field decodes to None (older writers).
        assert_eq!(trace_from_json(&trace_to_json(&sample())).unwrap().plan_timing, None);
    }

    #[test]
    fn incidents_and_label_round_trip_exactly() {
        let mut trace = sample();
        trace.label = Some("recovered".into());
        trace.incidents = vec![
            Incident {
                t: 0.25,
                kind: IncidentKind::Fault,
                rank: 1,
                items: 2,
                info: "send to \"p2\" timed out".into(),
            },
            Incident { t: 0.5, kind: IncidentKind::Retry, rank: 1, items: 2, info: String::new() },
            Incident {
                t: 1.0,
                kind: IncidentKind::Replan,
                rank: 2,
                items: 2,
                info: "2 items over 2 survivors".into(),
            },
        ];
        let text = trace_to_json(&trace);
        assert!(text.contains("\"label\": \"recovered\""));
        assert!(text.contains("\"incidents\""));
        let back = trace_from_json(&text).unwrap();
        assert_eq!(back, trace);
        // Absent fields decode to empty/None (older writers, fault-free traces).
        let plain = trace_from_json(&trace_to_json(&sample())).unwrap();
        assert!(plain.incidents.is_empty());
        assert_eq!(plain.label, None);
    }

    #[test]
    fn metrics_block_round_trips_exactly() {
        let mut trace = sample();
        trace.metrics = Some(MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "dp_cells_evaluated_total".into(),
                help: "DP cells".into(),
                labels: Vec::new(),
                value: 12345,
            }],
            gauges: vec![GaugeSnapshot {
                name: "mpi_queue_depth".into(),
                help: "queue \"depth\"".into(),
                labels: vec![("pool".into(), "a\\b \"q\"".into())],
                value: 2.5, // dyadic: exact in JSON round-trip
            }],
            histograms: vec![HistogramSnapshot {
                name: "mpi_send_seconds".into(),
                help: "per-send".into(),
                labels: vec![("op".into(), "plan".into())],
                count: 3,
                sum: 0.375,
                buckets: vec![
                    BucketCount { le: 0.125, count: 2 },
                    BucketCount { le: f64::INFINITY, count: 1 },
                ],
                exemplar: Some("req-7".into()),
            }],
        });
        let text = trace_to_json(&trace);
        assert!(text.contains("\"metrics\""));
        assert!(text.contains("\"le\": \"inf\""));
        let back = trace_from_json(&text).unwrap();
        assert_eq!(back, trace);
        // Schema stays v1 and plain traces stay metrics-free.
        assert!(text.contains("\"schema\": 1"));
        assert_eq!(trace_from_json(&trace_to_json(&sample())).unwrap().metrics, None);
    }

    #[test]
    fn unknown_incident_kind_is_rejected() {
        let mut trace = sample();
        trace.incidents.push(Incident {
            t: 0.0,
            kind: IncidentKind::Fault,
            rank: 0,
            items: 1,
            info: String::new(),
        });
        let text = trace_to_json(&trace).replace("\"kind\": \"fault\"", "\"kind\": \"meltdown\"");
        assert!(trace_from_json(&text).unwrap_err().0.contains("unknown kind `meltdown`"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new(TraceSource::Executed, 0, vec![]);
        let back = trace_from_json(&trace_to_json(&trace)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn schema_version_is_embedded_and_checked() {
        let text = trace_to_json(&sample());
        assert!(text.contains("\"schema\": 1"));
        let wrong = text.replace("\"schema\": 1", "\"schema\": 999");
        let err = trace_from_json(&wrong).unwrap_err();
        assert!(err.0.contains("unsupported schema version 999"), "{err}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let text = trace_to_json(&sample()).replace("send_start", "teleport");
        assert!(trace_from_json(&text).unwrap_err().0.contains("unknown kind"));
    }

    #[test]
    fn missing_field_is_rejected() {
        assert!(trace_from_json("{}").unwrap_err().0.contains("missing field"));
        assert!(trace_from_json("not json at all").is_err());
        assert!(trace_from_json("{\"schema\": 1} trailing").is_err());
    }

    #[test]
    fn parser_handles_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let trace = Trace::new(
            TraceSource::Predicted,
            1,
            vec!["tab\there".into(), "uni\u{00e9}".into(), "quote\"q".into()],
        );
        let back = trace_from_json(&trace_to_json(&trace)).unwrap();
        assert_eq!(back.names, trace.names);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }
}
