//! Hierarchical span tracing with Chrome trace-event export.
//!
//! A *span* is a named interval with a parent — where the flat
//! [`Trace`](crate::obs::Trace) schema answers "what did the schedule
//! look like", spans answer "where did the wall-clock (or virtual)
//! time go" *inside* one operation: a `gs serve` request decomposes
//! into decode → cache lookup → singleflight wait → DP solve → encode,
//! a DP solve decomposes into tabulate → sweep → per-column chunks,
//! and so on. The result loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) via [`chrome_trace_json`].
//!
//! Design constraints (normative; see `docs/observability.md`):
//!
//! * **Zero dependencies, thread-safe.** Per-thread buffers (a
//!   `thread_local!` `Vec`) collect finished spans without locking; they
//!   drain into one bounded global ring ([`RING_CAPACITY`] spans,
//!   drop-oldest, dropped count kept) when a thread exits, when the
//!   local buffer outgrows a backstop, or on [`drain`].
//! * **Off by default, ~zero cost when off.** Every recording entry
//!   point first does one `Relaxed` atomic load; when tracing is
//!   disabled the returned [`SpanGuard`] is inert and nothing is
//!   allocated or written. Instrumented hot paths therefore pay one
//!   predictable branch.
//! * **Two clocks.** Wall spans ([`span`]) measure µs since a process
//!   epoch with [`Instant`]. Virtual spans ([`record_virtual`]) carry
//!   the deterministic simulation/runtime clock (seconds, converted to
//!   µs) — minimpi per-rank send/recv/compute and the fault session's
//!   attempt timelines live on this clock. The Chrome export keeps the
//!   two on separate `pid` lanes (1 = wall, 2 = virtual) so their
//!   timestamps never visually interleave.
//!
//! ## Usage
//!
//! ```
//! use gs_scatter::obs::span;
//!
//! span::set_enabled(true);
//! {
//!     let mut root = span::span("demo", "outer");
//!     root.attr("items", 42);
//!     let _child = span::span("demo", "inner"); // parented automatically
//! }
//! let spans = span::drain();
//! assert_eq!(spans.len(), 2);
//! let json = span::chrome_trace_json(&spans);
//! assert!(json.contains("\"traceEvents\""));
//! span::set_enabled(false);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use super::json::{push_escaped, push_f64};

/// Maximum spans the global ring retains; older spans are dropped first
/// (the count of discards is reported by [`dropped`]). Sized so that
/// phase-granular instrumentation of a 10⁵-rank simulation fits with
/// room to spare while a runaway per-event producer cannot exhaust
/// memory.
pub const RING_CAPACITY: usize = 1 << 16;

/// Local-buffer backstop: a thread that accumulates this many finished
/// spans flushes them to the global ring even before it exits.
const LOCAL_FLUSH: usize = 8 * 1024;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique span id (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root.
    pub parent: u64,
    /// What the span measures (`"dp.solve"`, `"request"`, …).
    pub name: &'static str,
    /// Component family (`"dp"`, `"serve"`, `"sim"`, `"mpi"`, `"ft"`)
    /// — the grouping key of `gs report --spans`.
    pub cat: &'static str,
    /// Lane within the clock domain: the recording thread for wall
    /// spans, the rank for virtual spans.
    pub tid: u64,
    /// `true` for wall-clock spans, `false` for virtual-clock spans.
    pub wall: bool,
    /// Start, µs — since the process epoch (wall) or since virtual
    /// time 0 (virtual).
    pub start_us: f64,
    /// Duration in µs (≥ 0).
    pub dur_us: f64,
    /// Key=value attributes (prune/fallback flags, request ids, byte
    /// counts, …).
    pub attrs: Vec<(&'static str, String)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

struct Tls {
    tid: u64,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

impl Drop for Tls {
    fn drop(&mut self) {
        flush_into_ring(&mut self.buf);
    }
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: Vec::new(),
    });
}

fn flush_into_ring(buf: &mut Vec<SpanRecord>) {
    if buf.is_empty() {
        return;
    }
    let mut ring = ring().lock().unwrap();
    for rec in buf.drain(..) {
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }
}

/// Turns recording on or off (global, all threads). Off is the
/// default; every entry point is a near-no-op while off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of spans discarded because the global ring was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Discards all buffered spans of the calling thread and of the global
/// ring, and zeroes the dropped count. Exporters call this before an
/// instrumented run so leftovers from earlier work do not pollute the
/// output; spans still buffered on *other* live threads are not
/// affected.
pub fn reset() {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.buf.clear();
        t.stack.clear();
    });
    ring().lock().unwrap().clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// RAII guard for one wall-clock span: records the interval from
/// creation to drop. Inert (records nothing) when tracing was disabled
/// at creation.
pub struct SpanGuard {
    active: Option<Active>,
}

struct Active {
    id: u64,
    parent: u64,
    name: &'static str,
    cat: &'static str,
    start_us: f64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// This span's id (0 when tracing is disabled) — pass to
    /// [`span_with_parent`] to parent work on another thread.
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }

    /// Attaches a key=value attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_us = (now_us() - a.start_us).max(0.0);
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            // Pop this span off the parenting stack. Guards drop in
            // LIFO order per thread, so the top is ours; tolerate a
            // mismatch (a guard moved across threads) by searching.
            match t.stack.last() {
                Some(&top) if top == a.id => {
                    t.stack.pop();
                }
                _ => t.stack.retain(|&id| id != a.id),
            }
            let tid = t.tid;
            t.buf.push(SpanRecord {
                id: a.id,
                parent: a.parent,
                name: a.name,
                cat: a.cat,
                tid,
                wall: true,
                start_us: a.start_us,
                dur_us,
                attrs: a.attrs,
            });
            if t.buf.len() >= LOCAL_FLUSH {
                flush_into_ring(&mut t.buf);
            }
        });
    }
}

/// Starts a wall-clock span parented to the calling thread's innermost
/// open span (a root if there is none).
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let parent = TLS.with(|t| t.borrow().stack.last().copied().unwrap_or(0));
    start(cat, name, parent)
}

/// Starts a wall-clock span with an explicit parent id — the
/// cross-thread variant: a worker thread parents its spans to the
/// coordinating span whose [`SpanGuard::id`] it was handed (0 for a
/// root).
pub fn span_with_parent(cat: &'static str, name: &'static str, parent: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    start(cat, name, parent)
}

fn start(cat: &'static str, name: &'static str, parent: u64) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    TLS.with(|t| t.borrow_mut().stack.push(id));
    SpanGuard {
        active: Some(Active { id, parent, name, cat, start_us: now_us(), attrs: Vec::new() }),
    }
}

/// Records one finished span on the **virtual** clock: `start_secs`
/// and `end_secs` are deterministic simulation/runtime seconds, `tid`
/// is the rank the interval belongs to. Virtual spans are flat
/// (parent 0): the rank lane, not nesting, is their structure. No-op
/// when tracing is disabled.
pub fn record_virtual(
    cat: &'static str,
    name: &'static str,
    tid: u64,
    start_secs: f64,
    end_secs: f64,
    attrs: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.buf.push(SpanRecord {
            id,
            parent: 0,
            name,
            cat,
            tid,
            wall: false,
            start_us: start_secs * 1e6,
            dur_us: ((end_secs - start_secs) * 1e6).max(0.0),
            attrs,
        });
        if t.buf.len() >= LOCAL_FLUSH {
            flush_into_ring(&mut t.buf);
        }
    });
}

/// Takes the calling thread's finished spans without touching the
/// global ring — the per-request extraction hook of
/// `gs serve --span-log`: a session thread calls this after handling
/// one request and gets exactly the spans that request finished on
/// this thread.
pub fn take_local() -> Vec<SpanRecord> {
    TLS.with(|t| std::mem::take(&mut t.borrow_mut().buf))
}

/// Drains every finished span visible to the caller: the calling
/// thread's local buffer plus the global ring (which holds the buffers
/// of all exited threads). Spans still buffered on other live threads
/// are not included — instrument coordinators drain after joining
/// their workers.
pub fn drain() -> Vec<SpanRecord> {
    TLS.with(|t| flush_into_ring(&mut t.borrow_mut().buf));
    let mut ring = ring().lock().unwrap();
    ring.drain(..).collect()
}

/// Serializes spans as Chrome trace-event JSON (the
/// `{"traceEvents": […]}` object format): complete `"X"` duration
/// events sorted by timestamp, preceded by `"M"` metadata events
/// naming the two process lanes (`pid` 1 = wall clock, `pid` 2 =
/// virtual clock). Span id, parent id and every attribute travel in
/// `args`. The output loads in `chrome://tracing` and Perfetto, and
/// `span_check` (crates/bench) validates it structurally in CI.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut order: Vec<&SpanRecord> = spans.iter().collect();
    order.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                   \"args\":{\"name\":\"wall clock\"}},");
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
                   \"args\":{\"name\":\"virtual clock\"}}");
    for s in order {
        out.push_str(",{\"name\":");
        push_escaped(&mut out, s.name);
        out.push_str(",\"cat\":");
        push_escaped(&mut out, s.cat);
        out.push_str(",\"ph\":\"X\",\"ts\":");
        push_f64(&mut out, s.start_us);
        out.push_str(",\"dur\":");
        push_f64(&mut out, s.dur_us);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", if s.wall { 1 } else { 2 }, s.tid);
        let _ = write!(out, ",\"args\":{{\"id\":\"{}\",\"parent\":\"{}\"", s.id, s.parent);
        for (k, v) in &s.attrs {
            out.push(',');
            push_escaped(&mut out, k);
            out.push(':');
            push_escaped(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;

    /// Spans recorded between `reset` and `drain` by this test only:
    /// other tests in the process may record concurrently, so filter
    /// to the ids this closure's guards produced.
    fn record_isolated(f: impl FnOnce()) -> Vec<SpanRecord> {
        let was = enabled();
        set_enabled(true);
        let lo = NEXT_ID.load(Ordering::Relaxed);
        f();
        let hi = NEXT_ID.load(Ordering::Relaxed);
        let spans: Vec<SpanRecord> =
            drain().into_iter().filter(|s| s.id >= lo && s.id < hi).collect();
        set_enabled(was);
        spans
    }

    #[test]
    fn disabled_records_nothing() {
        // Run with tracing forced off; the guard must be inert.
        let was = enabled();
        set_enabled(false);
        let g = span("t", "noop");
        assert_eq!(g.id(), 0);
        drop(g);
        record_virtual("t", "noop", 0, 0.0, 1.0, Vec::new());
        set_enabled(was);
        let leftover = take_local();
        assert!(leftover.iter().all(|s| s.name != "noop"));
    }

    #[test]
    fn nesting_sets_parents() {
        let spans = record_isolated(|| {
            let mut outer = span("t", "outer");
            outer.attr("k", "v");
            let inner = span("t", "inner");
            assert_ne!(inner.id(), 0);
            drop(inner);
        });
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.attrs, vec![("k", "v".to_string())]);
        assert!(outer.wall && outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let spans = record_isolated(|| {
            let root = span("t", "coord");
            let root_id = root.id();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _w = span_with_parent("t", "worker", root_id);
                });
            });
        });
        let root = spans.iter().find(|s| s.name == "coord").unwrap();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, root.id);
        assert_ne!(worker.tid, root.tid, "worker recorded on its own lane");
    }

    #[test]
    fn virtual_spans_carry_the_virtual_clock() {
        let spans = record_isolated(|| {
            record_virtual("mpi", "send", 3, 1.5, 2.25, vec![("bytes", "80".into())]);
        });
        let s = spans.iter().find(|s| s.name == "send").unwrap();
        assert!(!s.wall);
        assert_eq!((s.tid, s.start_us, s.dur_us), (3, 1.5e6, 0.75e6));
    }

    #[test]
    fn chrome_export_is_valid_json_with_lane_metadata() {
        let spans = record_isolated(|| {
            let mut g = span("t", "quoted");
            g.attr("note", "a \"quote\" and a \\ backslash");
            drop(g);
            record_virtual("t", "v", 0, 0.0, 1.0, Vec::new());
        });
        let text = chrome_trace_json(&spans);
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // 2 metadata lanes + the recorded spans.
        assert!(events.len() >= 4);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(|p| p.as_str())).collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert!(phases.iter().all(|p| *p == "M" || *p == "X"));
        // X events are sorted by ts.
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("ts").and_then(|t| t.as_f64()).unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        // Exercise the drop-oldest policy directly on the flush path.
        let mut batch: Vec<SpanRecord> = (0..RING_CAPACITY + 10)
            .map(|i| SpanRecord {
                id: u64::MAX - i as u64,
                parent: 0,
                name: "fill",
                cat: "t",
                tid: 0,
                wall: true,
                start_us: i as f64,
                dur_us: 0.0,
                attrs: Vec::new(),
            })
            .collect();
        let before = dropped();
        flush_into_ring(&mut batch);
        assert!(dropped() >= before + 10);
        assert!(ring().lock().unwrap().len() <= RING_CAPACITY);
        // Clean up so concurrent drain-based tests see bounded noise.
        ring().lock().unwrap().retain(|s| s.name != "fill");
    }
}
