//! Aggregation of a [`Trace`] into per-rank and per-link metrics.

use std::fmt::Write as _;

use super::{Event, EventKind, IncidentKind, Trace, TraceSource};

/// Per-rank breakdown of one trace.
///
/// Times relate as `busy + idle = makespan` for every rank (enforced by
/// computing `busy` as the length of the *union* of the rank's busy
/// intervals, so overlapping phases are not double-counted).
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// Rank index (into `Trace::names`).
    pub rank: usize,
    /// Display name.
    pub name: String,
    /// Seconds spent receiving (send intervals where this rank is the
    /// receiver) — the `Tcomm` terms of Eq. (1).
    pub recv: f64,
    /// Seconds this rank's outgoing port spent transmitting (send
    /// intervals where this rank is the `peer`); the root's stair of
    /// Fig. 1 shows up here.
    pub send: f64,
    /// Seconds spent computing — the `Tcomp` term of Eq. (1).
    pub compute: f64,
    /// Length of the union of all busy (send/recv/compute) intervals.
    pub busy: f64,
    /// `makespan − busy`: waiting before data arrives (the stair
    /// effect), plus any wait after finishing.
    pub idle: f64,
    /// Bytes received by this rank.
    pub bytes_in: u64,
    /// Bytes sent by this rank (as the `peer` of send events).
    pub bytes_out: u64,
    /// Timestamp of this rank's last non-idle event (its finish time
    /// `T_i` in Eq. 1 terms).
    pub finish: f64,
}

/// Total bytes moved over one (sender, receiver) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkBytes {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Total payload bytes, summed over all transfers on the link.
    pub bytes: u64,
}

/// Aggregate view of a [`Trace`]: makespan, per-rank breakdowns, link
/// totals.
///
/// Construct with [`TraceSummary::from_trace`] (or the validating
/// [`Trace::summarize`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Provenance of the underlying trace.
    pub source: TraceSource,
    /// Variant label of the underlying trace (e.g. `"degraded"` /
    /// `"recovered"` for fault runs); `None` for fault-free traces.
    pub label: Option<String>,
    /// Largest event timestamp (Eq. 2 when the trace covers one
    /// scatter + compute phase).
    pub makespan: f64,
    /// One row per rank, in rank order.
    pub ranks: Vec<RankSummary>,
    /// Bytes per (sender, receiver) pair, ordered by (src, dst). The
    /// root's kept block appears as a self-link (`src == dst`).
    pub links: Vec<LinkBytes>,
    /// Σ over links — with item-carrying traces this equals
    /// Σ counts · item_bytes (byte conservation).
    pub total_bytes: u64,
    /// Σ of per-rank receive seconds.
    pub total_recv: f64,
    /// Σ of per-rank compute seconds.
    pub total_compute: f64,
    /// Σ of per-rank idle seconds.
    pub total_idle: f64,
    /// Number of `fault` incidents recorded on the trace.
    pub faults: usize,
    /// Number of `retry` incidents recorded on the trace.
    pub retries: usize,
    /// Number of `replan` incidents recorded on the trace.
    pub replans: usize,
}

/// Sum of interval lengths after merging overlaps.
fn union_length(intervals: &mut [(f64, f64)]) -> f64 {
    intervals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN interval bounds"));
    let mut total = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for &(s, e) in intervals.iter() {
        match current {
            Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                current = Some((s, e));
            }
            None => current = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = current {
        total += ce - cs;
    }
    total
}

impl TraceSummary {
    /// Aggregates a trace. Assumes the trace is well-formed (run
    /// [`Trace::validate`] first, or use [`Trace::summarize`]); a
    /// malformed trace yields unspecified numbers, never a panic.
    pub fn from_trace(trace: &Trace) -> TraceSummary {
        let p = trace.num_ranks();
        let makespan = trace.makespan();
        let mut recv = vec![0.0f64; p];
        let mut send = vec![0.0f64; p];
        let mut compute = vec![0.0f64; p];
        let mut bytes_in = vec![0u64; p];
        let mut bytes_out = vec![0u64; p];
        let mut finish = vec![0.0f64; p];
        let mut busy_iv: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p];
        let mut open_send: Vec<Option<&Event>> = vec![None; p];
        let mut open_compute: Vec<Option<f64>> = vec![None; p];
        let mut link_totals: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();

        for e in &trace.events {
            if e.kind != EventKind::Idle {
                finish[e.rank] = finish[e.rank].max(e.t);
            }
            match e.kind {
                EventKind::SendStart => open_send[e.rank] = Some(e),
                EventKind::SendEnd => {
                    let start = match open_send[e.rank].take() {
                        Some(s) => s.t,
                        None => continue, // unmatched end: skip, not crash
                    };
                    let dur = e.t - start;
                    let sender = e.peer.unwrap_or(e.rank);
                    recv[e.rank] += dur;
                    bytes_in[e.rank] += e.bytes;
                    busy_iv[e.rank].push((start, e.t));
                    if sender != e.rank {
                        send[sender] += dur;
                        bytes_out[sender] += e.bytes;
                        busy_iv[sender].push((start, e.t));
                        finish[sender] = finish[sender].max(e.t);
                    } else {
                        // Self-link (root keeping its block): one side only.
                        bytes_out[sender] += e.bytes;
                    }
                    *link_totals.entry((sender, e.rank)).or_insert(0) += e.bytes;
                }
                EventKind::ComputeStart => open_compute[e.rank] = Some(e.t),
                EventKind::ComputeEnd => {
                    let start = match open_compute[e.rank].take() {
                        Some(s) => s,
                        None => continue,
                    };
                    compute[e.rank] += e.t - start;
                    busy_iv[e.rank].push((start, e.t));
                }
                EventKind::Idle => {}
            }
        }

        let ranks: Vec<RankSummary> = (0..p)
            .map(|r| {
                let busy = union_length(&mut busy_iv[r]);
                RankSummary {
                    rank: r,
                    name: trace.names[r].clone(),
                    recv: recv[r],
                    send: send[r],
                    compute: compute[r],
                    busy,
                    idle: makespan - busy,
                    bytes_in: bytes_in[r],
                    bytes_out: bytes_out[r],
                    finish: finish[r],
                }
            })
            .collect();
        let links: Vec<LinkBytes> = link_totals
            .into_iter()
            .map(|((src, dst), bytes)| LinkBytes { src, dst, bytes })
            .collect();
        let count = |k: IncidentKind| trace.incidents.iter().filter(|i| i.kind == k).count();
        TraceSummary {
            source: trace.source,
            label: trace.label.clone(),
            makespan,
            faults: count(IncidentKind::Fault),
            retries: count(IncidentKind::Retry),
            replans: count(IncidentKind::Replan),
            total_bytes: links.iter().map(|l| l.bytes).sum(),
            total_recv: ranks.iter().map(|r| r.recv).sum(),
            total_compute: ranks.iter().map(|r| r.compute).sum(),
            total_idle: ranks.iter().map(|r| r.idle).sum(),
            ranks,
            links,
        }
    }

    /// Renders the summary as a fixed-width text table.
    pub fn render(&self) -> String {
        let name_w = self
            .ranks
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let label = match &self.label {
            Some(l) => format!(" ({l})"),
            None => String::new(),
        };
        let mut out = format!(
            "{} trace{label}: {} ranks, makespan {:.4} s, {} bytes moved\n",
            self.source,
            self.ranks.len(),
            self.makespan,
            self.total_bytes
        );
        let _ = writeln!(
            out,
            "{:<name_w$} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "rank", "recv (s)", "send (s)", "comp (s)", "idle (s)", "finish", "bytes in"
        );
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12}",
                r.name, r.recv, r.send, r.compute, r.idle, r.finish, r.bytes_in
            );
        }
        let _ = writeln!(
            out,
            "totals: recv {:.4} s, compute {:.4} s, idle {:.4} s over {} links",
            self.total_recv,
            self.total_compute,
            self.total_idle,
            self.links.len()
        );
        if self.faults + self.retries + self.replans > 0 {
            let _ = writeln!(
                out,
                "incidents: {} fault(s), {} retry(s), {} replan(s)",
                self.faults, self.retries, self.replans
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Trace, TraceSource};
    use super::*;
    use crate::cost::Processor;
    use crate::distribution::timeline;

    fn sample() -> (Trace, crate::distribution::Timeline) {
        let procs = [
            Processor::linear("p1", 1.0, 2.0),
            Processor::linear("p2", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![3usize, 2, 1];
        let tl = timeline(&view, &counts);
        let trace =
            Trace::from_timeline(TraceSource::Predicted, &["p1", "p2", "root"], &counts, 8, &tl);
        (trace, tl)
    }

    #[test]
    fn per_rank_breakdown_matches_eq1_terms() {
        // Timeline: p1 comm [0,3] finish 9; p2 comm [3,7] finish 9;
        // root comm [7,7] finish 8; makespan 9.
        let (trace, _) = sample();
        let s = trace.summarize().unwrap();
        assert_eq!(s.makespan, 9.0);
        let p1 = &s.ranks[0];
        assert_eq!((p1.recv, p1.compute), (3.0, 6.0));
        assert_eq!(p1.idle, 0.0);
        let p2 = &s.ranks[1];
        assert_eq!((p2.recv, p2.compute), (4.0, 2.0));
        assert_eq!(p2.idle, 3.0); // waits [0,3] for the port
        let root = &s.ranks[2];
        assert_eq!(root.send, 7.0); // transmits [0,7]
        assert_eq!(root.compute, 1.0);
        assert_eq!(root.idle, 1.0); // finished at 8, makespan 9
    }

    #[test]
    fn busy_plus_idle_is_makespan_for_every_rank() {
        let (trace, _) = sample();
        let s = trace.summarize().unwrap();
        for r in &s.ranks {
            assert!((r.busy + r.idle - s.makespan).abs() < 1e-12, "rank {}", r.rank);
        }
    }

    #[test]
    fn bytes_conserve() {
        let (trace, _) = sample();
        let s = trace.summarize().unwrap();
        assert_eq!(s.total_bytes, 6 * 8);
        assert_eq!(s.links.len(), 3);
        // Root (rank 2) sends everything, including its self-link block.
        assert_eq!(s.ranks[2].bytes_out, 48);
        let self_link = s.links.iter().find(|l| l.src == 2 && l.dst == 2).unwrap();
        assert_eq!(self_link.bytes, 8);
    }

    #[test]
    fn union_length_merges_overlaps() {
        let mut iv = vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)];
        assert_eq!(union_length(&mut iv), 4.0);
        let mut empty: Vec<(f64, f64)> = vec![];
        assert_eq!(union_length(&mut empty), 0.0);
        let mut touching = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(union_length(&mut touching), 2.0);
    }

    #[test]
    fn render_mentions_all_ranks() {
        let (trace, _) = sample();
        let text = trace.summarize().unwrap().render();
        for name in ["p1", "p2", "root"] {
            assert!(text.contains(name), "{text}");
        }
        assert!(text.contains("makespan 9.0000"));
    }

    #[test]
    fn render_shows_label_and_incident_counts() {
        use super::super::{Incident, IncidentKind};
        let (mut trace, _) = sample();
        trace.label = Some("recovered".into());
        trace.incidents = vec![
            Incident { t: 1.0, kind: IncidentKind::Fault, rank: 0, items: 3, info: String::new() },
            Incident { t: 2.0, kind: IncidentKind::Retry, rank: 0, items: 3, info: String::new() },
            Incident { t: 3.0, kind: IncidentKind::Replan, rank: 2, items: 3, info: String::new() },
        ];
        let s = trace.summarize().unwrap();
        assert_eq!((s.faults, s.retries, s.replans), (1, 1, 1));
        let text = s.render();
        // The base "<source> trace" prefix survives so existing greps work.
        assert!(text.contains("predicted trace (recovered):"), "{text}");
        assert!(text.contains("incidents: 1 fault(s), 1 retry(s), 1 replan(s)"), "{text}");
        // Fault-free traces stay incident-silent.
        let plain = sample().0.summarize().unwrap().render();
        assert!(!plain.contains("incidents:"), "{plain}");
    }

    #[test]
    fn finish_matches_timeline() {
        let (trace, tl) = sample();
        let s = trace.summarize().unwrap();
        // Workers finish when their compute ends; the root also stays
        // "on the hook" until its last transfer completes.
        assert_eq!(s.ranks[0].finish, tl.finish[0]);
        assert_eq!(s.ranks[1].finish, tl.finish[1]);
        assert_eq!(s.ranks[2].finish, tl.finish[2].max(tl.comm_end[1]));
    }
}
