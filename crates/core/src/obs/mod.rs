//! Unified observability: one event schema for predicted, simulated and
//! executed scatters.
//!
//! The paper compares three views of the same operation: the schedule the
//! planner *predicts* from Eq. (1), the schedule a discrete-event
//! simulation *derives* from the same cost model, and the schedule a run
//! of the (mini-)MPI program actually *executes*. This module gives all
//! three a common trace format so they can be aggregated, exported and
//! diffed by the same code:
//!
//! * [`Event`] / [`EventKind`] — one timestamped occurrence on one rank
//!   (send start/end, compute start/end, idle);
//! * [`Trace`] — a full run: event list plus rank names, item size and
//!   provenance ([`TraceSource`]);
//! * [`TraceSummary`] — per-rank busy/idle/comm breakdowns, per-link byte
//!   totals and the makespan, derived from any trace;
//! * [`json`] / [`csv`] — versioned serialization (see
//!   `docs/observability.md` for the normative schema description);
//! * [`span`] — hierarchical wall/virtual-clock span tracing with
//!   Chrome trace-event export (the *inside-one-operation* view,
//!   orthogonal to the schedule-level trace above).
//!
//! The schema is versioned: [`SCHEMA_VERSION`] is embedded in every JSON
//! export and checked on import.
//!
//! ## Mapping to paper quantities
//!
//! For a trace built from an Eq. (1) timeline (see
//! [`Trace::from_timeline`]):
//!
//! * the largest event time is the makespan `T` of Eq. (2);
//! * a rank's receive interval `[SendStart, SendEnd]` is its
//!   `Tcomm(i, n_i)` term, and its compute interval is `Tcomp(i, n_i)`;
//! * idle time before the first `SendStart` is the per-processor "stair
//!   effect" of Fig. 1.

use std::fmt;

use crate::distribution::Timeline;

pub mod csv;
pub mod json;
pub mod span;
mod summary;

pub use summary::{LinkBytes, RankSummary, TraceSummary};

/// Version of the trace schema emitted by [`json::trace_to_json`] and
/// accepted by [`json::trace_from_json`]. Bumped on any incompatible
/// change; see `docs/observability.md` for the change policy.
pub const SCHEMA_VERSION: u32 = 1;

/// What happened at an [`Event`]'s timestamp.
///
/// Send events are recorded on the **receiving** rank (`Event::rank`),
/// with the sender in `Event::peer` — a transfer occupies the sender's
/// port and the receiver's link for the same interval, and aggregation
/// charges both sides from the one event pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The sender's port starts transmitting this rank's block.
    SendStart,
    /// The block has fully arrived (sender's port is free again).
    SendEnd,
    /// The rank starts computing on its block.
    ComputeStart,
    /// The rank finished computing.
    ComputeEnd,
    /// The rank is idle from this timestamp until its next event (or the
    /// end of the trace). Idle events are informative markers emitted by
    /// trace builders; aggregation re-derives idle time from the gaps
    /// between busy intervals and does not trust them blindly.
    Idle,
}

impl EventKind {
    /// The schema's wire name for this kind (`send_start`, `send_end`,
    /// `compute_start`, `compute_end`, `idle`).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SendStart => "send_start",
            EventKind::SendEnd => "send_end",
            EventKind::ComputeStart => "compute_start",
            EventKind::ComputeEnd => "compute_end",
            EventKind::Idle => "idle",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "send_start" => EventKind::SendStart,
            "send_end" => EventKind::SendEnd,
            "compute_start" => EventKind::ComputeStart,
            "compute_end" => EventKind::ComputeEnd,
            "idle" => EventKind::Idle,
            _ => return None,
        })
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timestamped occurrence on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time, seconds from the start of the operation.
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
    /// The rank the event concerns. For send events this is the
    /// **receiver** (the rank whose block is on the wire).
    pub rank: usize,
    /// The other endpoint of a transfer (the sender, for send events).
    /// `None` for compute and idle events. A send whose `peer` equals
    /// `rank` is the root keeping its own block: zero wire time, but the
    /// bytes still count towards conservation totals.
    pub peer: Option<usize>,
    /// Half-open range `[lo, hi)` of global item indices this event
    /// concerns, when known (blocks are laid out contiguously in scatter
    /// order, so a block is always one range).
    pub items: Option<(u64, u64)>,
    /// Payload size in bytes for send events; 0 for compute and idle.
    pub bytes: u64,
}

impl Event {
    /// A send-phase event (start or end) on receiver `rank` from `peer`.
    pub fn send(kind: EventKind, t: f64, rank: usize, peer: usize, bytes: u64) -> Event {
        debug_assert!(matches!(kind, EventKind::SendStart | EventKind::SendEnd));
        Event { t, kind, rank, peer: Some(peer), items: None, bytes }
    }

    /// A compute-phase event (start or end) on `rank`.
    pub fn compute(kind: EventKind, t: f64, rank: usize) -> Event {
        debug_assert!(matches!(kind, EventKind::ComputeStart | EventKind::ComputeEnd));
        Event { t, kind, rank, peer: None, items: None, bytes: 0 }
    }

    /// An idle marker on `rank` starting at `t`.
    pub fn idle(t: f64, rank: usize) -> Event {
        Event { t, kind: EventKind::Idle, rank, peer: None, items: None, bytes: 0 }
    }

    /// Sets the item range (builder style).
    pub fn with_items(mut self, lo: u64, hi: u64) -> Event {
        self.items = Some((lo, hi));
        self
    }
}

/// Which layer produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceSource {
    /// The planner's analytic Eq. (1) schedule.
    Predicted,
    /// The gs-gridsim discrete-event simulation.
    Simulated,
    /// A real run on the gs-minimpi runtime (virtual clocks).
    Executed,
}

impl TraceSource {
    /// The schema's wire name (`predicted`, `simulated`, `executed`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceSource::Predicted => "predicted",
            TraceSource::Simulated => "simulated",
            TraceSource::Executed => "executed",
        }
    }

    /// Parses a wire name back into a source.
    pub fn parse(s: &str) -> Option<TraceSource> {
        Some(match s {
            "predicted" => TraceSource::Predicted,
            "simulated" => TraceSource::Simulated,
            "executed" => TraceSource::Executed,
            _ => return None,
        })
    }
}

impl fmt::Display for TraceSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How long planning took, and with what solver configuration.
///
/// Produced by the planner (and by the parallel DP engine in
/// `crate::parallel`) and optionally attached to a [`Trace`], so
/// predicted/simulated/executed reports can show planning cost next to
/// the makespan they explain. Serialized as the optional `plan_timing`
/// object of the JSON schema — absent in traces from older writers, which
/// keeps [`SCHEMA_VERSION`] unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTiming {
    /// Which planning strategy ran (`exact`, `exact-basic`, `heuristic`,
    /// `closed-form`, `uniform`).
    pub strategy: String,
    /// Worker threads the DP engine used (1 for serial and for non-DP
    /// strategies).
    pub threads: usize,
    /// Whether upper-bound pruning was active.
    pub pruned: bool,
    /// Seconds spent tabulating cost functions (0 for non-DP strategies).
    pub tabulate_secs: f64,
    /// Seconds spent in the solve proper.
    pub solve_secs: f64,
    /// Total wall-clock seconds for the planning call, including
    /// validation.
    pub total_secs: f64,
    /// Cost-table lookups answered from cache during this solve.
    pub cache_hits: u64,
    /// Cost-table lookups that had to tabulate during this solve.
    pub cache_misses: u64,
}

impl PlanTiming {
    /// Timing for a strategy without a tabulate/solve split (the
    /// heuristic, closed form and uniform strategies): everything counts
    /// as solve time.
    pub fn simple(strategy: &str, total_secs: f64) -> PlanTiming {
        PlanTiming {
            strategy: strategy.to_string(),
            threads: 1,
            pruned: false,
            tabulate_secs: 0.0,
            solve_secs: total_secs,
            total_secs,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

/// What a fault-layer [`Incident`] records.
///
/// Incidents are the robustness counterpart of [`EventKind`]: they do not
/// carry schedule intervals (a failed send moves no bytes and must not
/// disturb byte conservation or interval bracketing), so they live in a
/// separate, optional side-channel of the trace — the `incidents` array
/// of the JSON schema, absent in fault-free traces, which keeps
/// [`SCHEMA_VERSION`] at 1. See `docs/robustness.md` for the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncidentKind {
    /// A send attempt failed (transient failure, timeout, or the receiver
    /// crashed before the transfer completed), or a rank was declared
    /// dead after exhausting its retries.
    Fault,
    /// The root re-attempts a failed transfer after a backoff.
    Retry,
    /// The root re-planned the residual (undelivered) items over the
    /// surviving ranks.
    Replan,
}

impl IncidentKind {
    /// The schema's wire name (`fault`, `retry`, `replan`).
    pub fn as_str(self) -> &'static str {
        match self {
            IncidentKind::Fault => "fault",
            IncidentKind::Retry => "retry",
            IncidentKind::Replan => "replan",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<IncidentKind> {
        Some(match s {
            "fault" => IncidentKind::Fault,
            "retry" => IncidentKind::Retry,
            "replan" => IncidentKind::Replan,
            _ => return None,
        })
    }
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One fault-layer occurrence: a failed attempt, a retry, or a re-plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Virtual time of the occurrence (for a failed attempt: when the
    /// failure was detected, i.e. the timeout expiry).
    pub t: f64,
    /// What happened.
    pub kind: IncidentKind,
    /// The rank the incident concerns (the intended receiver for
    /// fault/retry; the root for replan).
    pub rank: usize,
    /// Number of data items involved (the undelivered block size for
    /// fault/retry, the residual pool size for replan).
    pub items: u64,
    /// Free-form human-readable detail (`attempt 2/3 timed out`, …).
    pub info: String,
}

/// A malformed trace (or trace serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// A complete trace of one scatter + compute operation.
///
/// Events are kept globally sorted by time (stable, so the per-rank
/// emission order survives ties); [`Trace::push`] maintains this lazily
/// and [`Trace::sort_events`] restores it.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Which layer produced the trace.
    pub source: TraceSource,
    /// Size of one data item in bytes (0 when unknown). When non-zero,
    /// a send event carrying an item range must satisfy
    /// `bytes == (hi − lo) · item_bytes` — validated by
    /// [`Trace::validate`].
    pub item_bytes: u64,
    /// Display name of each rank; `names.len()` is the rank count and
    /// every event's `rank`/`peer` must index into it.
    pub names: Vec<String>,
    /// The events, sorted by time.
    pub events: Vec<Event>,
    /// How long planning took, when known. Optional — traces parsed from
    /// older exports (or built without a planner) leave it `None`.
    pub plan_timing: Option<PlanTiming>,
    /// Fault-layer incidents (failed attempts, retries, re-plans), in
    /// time order. Empty for fault-free traces — and absent from their
    /// JSON exports, which keeps the schema at version 1.
    pub incidents: Vec<Incident>,
    /// Optional scenario label distinguishing traces that share a
    /// [`TraceSource`] (e.g. `degraded` vs `recovered` simulated runs of
    /// the same faulty grid). Serialized as the optional `label` field.
    pub label: Option<String>,
    /// Optional frozen metrics of the process that produced the trace
    /// (see [`crate::metrics`]). Opt-in: producers never attach it
    /// automatically — a metrics block describes a *process*, not the
    /// schedule, so attaching it would break trace-equality comparisons
    /// between layers. Serialized as the optional `metrics` object,
    /// which keeps the schema at version 1.
    pub metrics: Option<crate::metrics::MetricsSnapshot>,
}

impl Trace {
    /// An empty trace over the given ranks.
    pub fn new(source: TraceSource, item_bytes: u64, names: Vec<String>) -> Trace {
        Trace {
            source,
            item_bytes,
            names,
            events: Vec::new(),
            plan_timing: None,
            incidents: Vec::new(),
            label: None,
            metrics: None,
        }
    }

    /// An empty trace over interned rank ids (see [`crate::intern`]).
    ///
    /// Each id resolves through `interner` to its display name; ids the
    /// interner does not know render as `#<id>` placeholders, which
    /// consumers holding sibling traces of the same platform can
    /// re-resolve by rank position (`gs report` does).
    pub fn new_interned(
        source: TraceSource,
        item_bytes: u64,
        ids: &[u32],
        interner: &crate::intern::NameInterner,
    ) -> Trace {
        Trace::new(source, item_bytes, ids.iter().map(|&id| interner.resolve(id)).collect())
    }

    /// The trace's display name: the source, refined by the scenario
    /// label when one is set (`simulated/recovered`).
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(l) => format!("{}/{l}", self.source),
            None => self.source.to_string(),
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.names.len()
    }

    /// Appends an event (call [`Trace::sort_events`] after out-of-order
    /// pushes).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Restores global time order (stable: ties keep insertion order, so
    /// emit each rank's events in causal order).
    pub fn sort_events(&mut self) {
        self.events
            .sort_by(|a, b| a.t.partial_cmp(&b.t).expect("event times must not be NaN"));
    }

    /// The trace's makespan: the largest event timestamp (0 if empty).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.t).fold(0.0, f64::max)
    }

    /// Events concerning `rank` (in time order).
    pub fn events_for_rank(&self, rank: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// Builds the trace of an Eq. (1) [`Timeline`].
    ///
    /// `names` and `counts` are in scatter order (root last, as produced
    /// by the planner); blocks are laid out contiguously in that order,
    /// which fixes each rank's item range. The root's own block appears
    /// as a zero-duration self-send so that byte totals conserve:
    /// Σ link bytes = Σ counts · `item_bytes`.
    pub fn from_timeline(
        source: TraceSource,
        names: &[&str],
        counts: &[usize],
        item_bytes: u64,
        tl: &Timeline,
    ) -> Trace {
        assert_eq!(names.len(), counts.len(), "one count per rank");
        assert_eq!(names.len(), tl.finish.len(), "one timeline row per rank");
        let p = names.len();
        let root = p.saturating_sub(1); // scatter order puts the root last
        let makespan = tl.makespan();
        let mut trace =
            Trace::new(source, item_bytes, names.iter().map(|s| s.to_string()).collect());
        let mut offset = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            let lo = offset;
            let hi = lo + count as u64;
            offset = hi;
            let bytes = (count as u64) * item_bytes;
            if tl.comm_start[i] > 0.0 {
                trace.push(Event::idle(0.0, i));
            }
            trace.push(
                Event::send(EventKind::SendStart, tl.comm_start[i], i, root, bytes)
                    .with_items(lo, hi),
            );
            trace.push(
                Event::send(EventKind::SendEnd, tl.comm_end[i], i, root, bytes)
                    .with_items(lo, hi),
            );
            trace.push(
                Event::compute(EventKind::ComputeStart, tl.comm_end[i], i).with_items(lo, hi),
            );
            trace.push(Event::compute(EventKind::ComputeEnd, tl.finish[i], i).with_items(lo, hi));
            if tl.finish[i] < makespan {
                trace.push(Event::idle(tl.finish[i], i));
            }
        }
        trace.sort_events();
        trace
    }

    /// Reconstructs a [`Timeline`] view of the trace: per rank, the first
    /// send interval and the last compute end. Lossy for traces with
    /// several phases per rank (multi-round runs); exact for traces built
    /// by [`Trace::from_timeline`] and for single-scatter runs.
    pub fn to_timeline(&self) -> Timeline {
        let p = self.num_ranks();
        let mut comm_start = vec![f64::NAN; p];
        let mut comm_end = vec![f64::NAN; p];
        let mut finish = vec![f64::NAN; p];
        for e in &self.events {
            match e.kind {
                EventKind::SendStart if comm_start[e.rank].is_nan() => comm_start[e.rank] = e.t,
                EventKind::SendEnd if comm_end[e.rank].is_nan() => comm_end[e.rank] = e.t,
                EventKind::ComputeEnd => finish[e.rank] = e.t,
                _ => {}
            }
        }
        // Ranks with no events of a kind fall back sensibly: a rank that
        // never received starts at 0; one that never computed finishes
        // when its block arrived.
        for i in 0..p {
            if comm_start[i].is_nan() {
                comm_start[i] = 0.0;
            }
            if comm_end[i].is_nan() {
                comm_end[i] = comm_start[i];
            }
            if finish[i].is_nan() {
                finish[i] = comm_end[i];
            }
        }
        Timeline { comm_start, comm_end, finish }
    }

    /// Checks every schema-v1 invariant (documented in
    /// `docs/observability.md`):
    ///
    /// 1. timestamps are finite and non-negative;
    /// 2. `rank` and `peer` index into `names`;
    /// 3. item ranges satisfy `lo ≤ hi`, and send bytes equal
    ///    `(hi − lo) · item_bytes` when both are known;
    /// 4. per rank, timestamps are non-decreasing;
    /// 5. per rank, send and compute intervals are properly bracketed
    ///    (every end closes a matching open start, nothing left open) and
    ///    an end carries the same `peer`/`bytes` as its start;
    /// 6. idle markers never fall strictly inside one of that rank's
    ///    send or compute intervals;
    /// 7. incidents carry finite non-negative timestamps, in-range ranks,
    ///    and appear in time order.
    pub fn validate(&self) -> Result<(), TraceError> {
        let p = self.num_ranks();
        let err = |msg: String| Err(TraceError(msg));
        let mut last_t = vec![0.0f64; p];
        let mut open_send: Vec<Option<&Event>> = vec![None; p];
        let mut open_compute: Vec<Option<&Event>> = vec![None; p];
        for (i, e) in self.events.iter().enumerate() {
            if !e.t.is_finite() || e.t < 0.0 {
                return err(format!("event {i}: bad timestamp {}", e.t));
            }
            if e.rank >= p {
                return err(format!("event {i}: rank {} out of range (p={p})", e.rank));
            }
            if let Some(peer) = e.peer {
                if peer >= p {
                    return err(format!("event {i}: peer {peer} out of range (p={p})"));
                }
            }
            if let Some((lo, hi)) = e.items {
                if lo > hi {
                    return err(format!("event {i}: item range {lo}..{hi} is inverted"));
                }
                let is_send = matches!(e.kind, EventKind::SendStart | EventKind::SendEnd);
                if is_send && self.item_bytes > 0 && e.bytes != (hi - lo) * self.item_bytes {
                    return err(format!(
                        "event {i}: {} bytes but {} items of {} bytes each",
                        e.bytes,
                        hi - lo,
                        self.item_bytes
                    ));
                }
            }
            if e.t < last_t[e.rank] {
                return err(format!(
                    "event {i}: rank {} goes back in time ({} < {})",
                    e.rank, e.t, last_t[e.rank]
                ));
            }
            last_t[e.rank] = e.t;
            match e.kind {
                EventKind::SendStart => {
                    if open_send[e.rank].is_some() {
                        return err(format!("event {i}: rank {} opens a nested send", e.rank));
                    }
                    open_send[e.rank] = Some(e);
                }
                EventKind::SendEnd => match open_send[e.rank].take() {
                    None => return err(format!("event {i}: rank {} ends an unopened send", e.rank)),
                    Some(start) => {
                        if start.peer != e.peer || start.bytes != e.bytes {
                            return err(format!(
                                "event {i}: send end does not match its start \
                                 (peer {:?}/{:?}, bytes {}/{})",
                                start.peer, e.peer, start.bytes, e.bytes
                            ));
                        }
                    }
                },
                EventKind::ComputeStart => {
                    if open_compute[e.rank].is_some() {
                        return err(format!("event {i}: rank {} opens a nested compute", e.rank));
                    }
                    open_compute[e.rank] = Some(e);
                }
                EventKind::ComputeEnd => {
                    if open_compute[e.rank].take().is_none() {
                        return err(format!(
                            "event {i}: rank {} ends an unopened compute",
                            e.rank
                        ));
                    }
                }
                EventKind::Idle => {
                    let inside_send =
                        open_send[e.rank].is_some_and(|s| e.t > s.t);
                    let inside_compute =
                        open_compute[e.rank].is_some_and(|s| e.t > s.t);
                    if inside_send || inside_compute {
                        return err(format!(
                            "event {i}: rank {} idle inside a busy interval",
                            e.rank
                        ));
                    }
                }
            }
        }
        for r in 0..p {
            if open_send[r].is_some() {
                return err(format!("rank {r}: send never ends"));
            }
            if open_compute[r].is_some() {
                return err(format!("rank {r}: compute never ends"));
            }
        }
        let mut last_incident = 0.0f64;
        for (i, inc) in self.incidents.iter().enumerate() {
            if !inc.t.is_finite() || inc.t < 0.0 {
                return err(format!("incident {i}: bad timestamp {}", inc.t));
            }
            if inc.rank >= p {
                return err(format!("incident {i}: rank {} out of range (p={p})", inc.rank));
            }
            if inc.t < last_incident {
                return err(format!(
                    "incident {i}: goes back in time ({} < {last_incident})",
                    inc.t
                ));
            }
            last_incident = inc.t;
        }
        Ok(())
    }

    /// Validates, then aggregates into a [`TraceSummary`].
    pub fn summarize(&self) -> Result<TraceSummary, TraceError> {
        self.validate()?;
        Ok(TraceSummary::from_trace(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;
    use crate::distribution::timeline;

    fn sample_timeline() -> (Vec<Processor>, Vec<usize>, Timeline) {
        let procs = vec![
            Processor::linear("p1", 1.0, 2.0),
            Processor::linear("p2", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![3usize, 2, 1];
        let tl = timeline(&view, &counts);
        (procs, counts, tl)
    }

    fn sample_trace() -> Trace {
        let (_procs, counts, tl) = sample_timeline();
        Trace::from_timeline(TraceSource::Predicted, &["p1", "p2", "root"], &counts, 8, &tl)
    }

    #[test]
    fn from_timeline_is_valid_and_sorted() {
        let trace = sample_trace();
        trace.validate().unwrap();
        assert!(trace.events.windows(2).all(|w| w[0].t <= w[1].t));
        assert_eq!(trace.makespan(), 9.0);
    }

    #[test]
    fn from_timeline_round_trips_to_timeline() {
        let (_procs, counts, tl) = sample_timeline();
        let trace =
            Trace::from_timeline(TraceSource::Predicted, &["p1", "p2", "root"], &counts, 8, &tl);
        assert_eq!(trace.to_timeline(), tl);
    }

    #[test]
    fn item_ranges_tile_the_buffer() {
        let trace = sample_trace();
        let mut ranges: Vec<(u64, u64)> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SendEnd)
            .map(|e| e.items.unwrap())
            .collect();
        ranges.sort();
        assert_eq!(ranges, vec![(0, 3), (3, 5), (5, 6)]);
        let total: u64 = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SendEnd)
            .map(|e| e.bytes)
            .sum();
        assert_eq!(total, 6 * 8);
    }

    #[test]
    fn kind_and_source_wire_names_round_trip() {
        for k in [
            EventKind::SendStart,
            EventKind::SendEnd,
            EventKind::ComputeStart,
            EventKind::ComputeEnd,
            EventKind::Idle,
        ] {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        for s in [TraceSource::Predicted, TraceSource::Simulated, TraceSource::Executed] {
            assert_eq!(TraceSource::parse(s.as_str()), Some(s));
        }
        assert_eq!(EventKind::parse("warp"), None);
        assert_eq!(TraceSource::parse("dreamt"), None);
    }

    #[test]
    fn validate_rejects_out_of_range_rank() {
        let mut trace = sample_trace();
        trace.events[0].rank = 99;
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_byte_count() {
        let mut trace = sample_trace();
        let i = trace
            .events
            .iter()
            .position(|e| e.kind == EventKind::SendStart)
            .unwrap();
        trace.events[i].bytes += 1;
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_rejects_unbalanced_intervals() {
        let mut trace = Trace::new(TraceSource::Executed, 0, vec!["a".into()]);
        trace.push(Event::send(EventKind::SendStart, 0.0, 0, 0, 10));
        assert!(trace.validate().unwrap_err().0.contains("never ends"));
        trace.push(Event::send(EventKind::SendEnd, 1.0, 0, 0, 10));
        trace.validate().unwrap();
        trace.push(Event::compute(EventKind::ComputeEnd, 2.0, 0));
        assert!(trace.validate().unwrap_err().0.contains("unopened compute"));
    }

    #[test]
    fn validate_rejects_time_travel() {
        let mut trace = Trace::new(TraceSource::Executed, 0, vec!["a".into()]);
        trace.push(Event::compute(EventKind::ComputeStart, 5.0, 0));
        trace.push(Event::compute(EventKind::ComputeEnd, 3.0, 0));
        assert!(trace.validate().unwrap_err().0.contains("back in time"));
    }

    #[test]
    fn validate_rejects_idle_inside_busy() {
        let mut trace = Trace::new(TraceSource::Executed, 0, vec!["a".into()]);
        trace.push(Event::compute(EventKind::ComputeStart, 0.0, 0));
        trace.push(Event::idle(1.0, 0));
        trace.push(Event::compute(EventKind::ComputeEnd, 2.0, 0));
        assert!(trace.validate().unwrap_err().0.contains("idle inside"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Trace::new(TraceSource::Predicted, 8, vec![]);
        trace.validate().unwrap();
        assert_eq!(trace.makespan(), 0.0);
    }

    #[test]
    fn incident_kind_wire_names_round_trip() {
        for k in [IncidentKind::Fault, IncidentKind::Retry, IncidentKind::Replan] {
            assert_eq!(IncidentKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(IncidentKind::parse("meltdown"), None);
    }

    #[test]
    fn validate_checks_incidents() {
        let mut trace = sample_trace();
        trace.incidents.push(Incident {
            t: 1.0,
            kind: IncidentKind::Fault,
            rank: 0,
            items: 3,
            info: "attempt 1/3 timed out".into(),
        });
        trace.validate().unwrap();
        trace.incidents[0].rank = 99;
        assert!(trace.validate().unwrap_err().0.contains("out of range"));
        trace.incidents[0].rank = 0;
        trace.incidents[0].t = f64::NAN;
        assert!(trace.validate().unwrap_err().0.contains("bad timestamp"));
        trace.incidents[0].t = 5.0;
        trace.incidents.push(Incident {
            t: 2.0,
            kind: IncidentKind::Retry,
            rank: 0,
            items: 3,
            info: String::new(),
        });
        assert!(trace.validate().unwrap_err().0.contains("back in time"));
    }

    #[test]
    fn display_name_includes_label() {
        let mut trace = sample_trace();
        assert_eq!(trace.display_name(), "predicted");
        trace.label = Some("recovered".into());
        assert_eq!(trace.display_name(), "predicted/recovered");
    }

    #[test]
    fn events_for_rank_filters() {
        let trace = sample_trace();
        assert!(trace.events_for_rank(1).all(|e| e.rank == 1));
        // p2 waits (idle), receives, computes, and finishes at the
        // makespan: idle + 2 send + 2 compute events.
        assert_eq!(trace.events_for_rank(1).count(), 5);
    }
}
