//! CSV export of traces and summaries, for spreadsheets and plotting
//! tools. Column meanings are documented in `docs/observability.md`.

use super::{Trace, TraceSummary};

/// Minimal CSV field escaping (RFC 4180: quote fields containing `,`,
/// `"` or newlines).
fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One row per event, header
/// `t,kind,rank,name,peer,item_lo,item_hi,bytes`. Optional fields are
/// left empty when absent.
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("t,kind,rank,name,peer,item_lo,item_hi,bytes\n");
    for e in &trace.events {
        let (lo, hi) = match e.items {
            Some((lo, hi)) => (lo.to_string(), hi.to_string()),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{lo},{hi},{}\n",
            e.t,
            e.kind.as_str(),
            e.rank,
            escape(trace.names.get(e.rank).map(String::as_str).unwrap_or("")),
            e.peer.map(|p| p.to_string()).unwrap_or_default(),
            e.bytes
        ));
    }
    out
}

/// One row per rank, header
/// `rank,name,recv,send,compute,busy,idle,finish,bytes_in,bytes_out`
/// (times in seconds).
pub fn summary_to_csv(summary: &TraceSummary) -> String {
    let mut out =
        String::from("rank,name,recv,send,compute,busy,idle,finish,bytes_in,bytes_out\n");
    for r in &summary.ranks {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            r.rank,
            escape(&r.name),
            r.recv,
            r.send,
            r.compute,
            r.busy,
            r.idle,
            r.finish,
            r.bytes_in,
            r.bytes_out
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{Trace, TraceSource};
    use super::*;
    use crate::cost::Processor;
    use crate::distribution::timeline;

    fn sample() -> Trace {
        let procs = [
            Processor::linear("w,orker", 1.0, 2.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![3usize, 1];
        let tl = timeline(&view, &counts);
        Trace::from_timeline(TraceSource::Predicted, &["w,orker", "root"], &counts, 4, &tl)
    }

    #[test]
    fn trace_csv_shape() {
        let csv = trace_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,kind,rank,name,peer,item_lo,item_hi,bytes");
        // 2 ranks × (2 send + 2 compute) + idle markers.
        assert!(lines.len() > 8);
        assert!(csv.contains("\"w,orker\""), "comma-bearing names are quoted");
        assert!(csv.contains("send_start"));
    }

    #[test]
    fn idle_rows_have_empty_optional_fields() {
        let csv = trace_to_csv(&sample());
        let idle = csv.lines().find(|l| l.contains(",idle,")).unwrap();
        // peer, item_lo, item_hi empty: `...,name,,,,0`.
        assert!(idle.ends_with(",,,0"), "{idle}");
    }

    #[test]
    fn summary_csv_shape() {
        let summary = sample().summarize().unwrap();
        let csv = summary_to_csv(&summary);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 ranks
        assert!(lines[0].starts_with("rank,name,recv,"));
        assert!(lines[1].starts_with("0,\"w,orker\","));
    }
}
