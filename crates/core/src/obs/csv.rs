//! CSV export of traces and summaries, for spreadsheets and plotting
//! tools. Column meanings are documented in `docs/observability.md`.

use super::{Trace, TraceSummary};

/// Minimal CSV field escaping (RFC 4180: quote fields containing `,`,
/// `"` or newlines).
fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits one RFC 4180 CSV row back into its fields (the inverse of the
/// escaping this module writes) — handy for round-trip checks and quick
/// consumers that do not want a CSV library.
pub fn split_row(row: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = row.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => quoted = false,
                c => cur.push(c),
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// One row per event, then one row per incident, header
/// `t,kind,rank,name,peer,item_lo,item_hi,bytes,items,label,info`.
///
/// Event rows leave `items` and `info` empty; incident rows (kinds
/// `fault`/`retry`/`replan`) leave `peer`, `item_lo`, `item_hi` and
/// `bytes` empty and carry the incident's item count and free-form
/// detail. The trace's scenario `label` is repeated on every row so
/// concatenated CSVs from several runs stay distinguishable. Optional
/// fields are left empty when absent.
pub fn trace_to_csv(trace: &Trace) -> String {
    let label = escape(trace.label.as_deref().unwrap_or(""));
    let mut out = String::from("t,kind,rank,name,peer,item_lo,item_hi,bytes,items,label,info\n");
    for e in &trace.events {
        let (lo, hi) = match e.items {
            Some((lo, hi)) => (lo.to_string(), hi.to_string()),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{lo},{hi},{},,{label},\n",
            e.t,
            e.kind.as_str(),
            e.rank,
            escape(trace.names.get(e.rank).map(String::as_str).unwrap_or("")),
            e.peer.map(|p| p.to_string()).unwrap_or_default(),
            e.bytes
        ));
    }
    for inc in &trace.incidents {
        out.push_str(&format!(
            "{},{},{},{},,,,,{},{label},{}\n",
            inc.t,
            inc.kind.as_str(),
            inc.rank,
            escape(trace.names.get(inc.rank).map(String::as_str).unwrap_or("")),
            inc.items,
            escape(&inc.info)
        ));
    }
    out
}

/// One row per rank, header
/// `rank,name,recv,send,compute,busy,idle,finish,bytes_in,bytes_out,label,faults,retries,replans`
/// (times in seconds). The trace-level `label` and incident counts are
/// repeated on every row, like `trace_to_csv`'s label column.
pub fn summary_to_csv(summary: &TraceSummary) -> String {
    let label = escape(summary.label.as_deref().unwrap_or(""));
    let mut out = String::from(
        "rank,name,recv,send,compute,busy,idle,finish,bytes_in,bytes_out,\
         label,faults,retries,replans\n",
    );
    for r in &summary.ranks {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{label},{},{},{}\n",
            r.rank,
            escape(&r.name),
            r.recv,
            r.send,
            r.compute,
            r.busy,
            r.idle,
            r.finish,
            r.bytes_in,
            r.bytes_out,
            summary.faults,
            summary.retries,
            summary.replans
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{Incident, IncidentKind, Trace, TraceSource};
    use super::*;
    use crate::cost::Processor;
    use crate::distribution::timeline;

    fn sample() -> Trace {
        let procs = [
            Processor::linear("w,orker", 1.0, 2.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let view: Vec<&Processor> = procs.iter().collect();
        let counts = vec![3usize, 1];
        let tl = timeline(&view, &counts);
        Trace::from_timeline(TraceSource::Predicted, &["w,orker", "root"], &counts, 4, &tl)
    }

    fn faulty_sample() -> Trace {
        let mut trace = sample();
        trace.label = Some("recovered, retried".into()); // comma: exercises quoting
        trace.incidents = vec![
            Incident {
                t: 0.5,
                kind: IncidentKind::Fault,
                rank: 0,
                items: 3,
                info: "attempt 1 to \"w,orker\": timeout".into(),
            },
            Incident { t: 0.75, kind: IncidentKind::Retry, rank: 0, items: 3, info: String::new() },
            Incident {
                t: 1.5,
                kind: IncidentKind::Replan,
                rank: 1,
                items: 3,
                info: "3 items over 1 survivor".into(),
            },
        ];
        trace
    }

    #[test]
    fn trace_csv_shape() {
        let csv = trace_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,kind,rank,name,peer,item_lo,item_hi,bytes,items,label,info");
        // 2 ranks × (2 send + 2 compute) + idle markers.
        assert!(lines.len() > 8);
        assert!(csv.contains("\"w,orker\""), "comma-bearing names are quoted");
        assert!(csv.contains("send_start"));
    }

    #[test]
    fn idle_rows_have_empty_optional_fields() {
        let csv = trace_to_csv(&sample());
        let idle = csv.lines().find(|l| l.contains(",idle,")).unwrap();
        // peer, item_lo, item_hi empty, bytes 0; items, label, info empty.
        assert!(idle.ends_with(",,,0,,,"), "{idle}");
    }

    #[test]
    fn summary_csv_shape() {
        let summary = sample().summarize().unwrap();
        let csv = summary_to_csv(&summary);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 ranks
        assert!(lines[0].starts_with("rank,name,recv,"));
        assert!(lines[0].ends_with(",label,faults,retries,replans"));
        assert!(lines[1].starts_with("0,\"w,orker\","));
        // Fault-free trace: empty label, zero incident counts.
        assert!(lines[1].ends_with(",,0,0,0"), "{}", lines[1]);
    }

    #[test]
    fn label_and_incidents_round_trip_through_trace_csv() {
        let trace = faulty_sample();
        let csv = trace_to_csv(&trace);
        let rows: Vec<Vec<String>> = csv.lines().skip(1).map(split_row).collect();
        assert!(rows.iter().all(|r| r.len() == 11), "rectangular CSV");
        // The label survives, un-mangled, on every row.
        assert!(rows.iter().all(|r| r[9] == "recovered, retried"), "{csv}");
        // Each incident comes back as one row with its kind, rank, item
        // count and info text intact.
        let incident_rows: Vec<&Vec<String>> = rows
            .iter()
            .filter(|r| IncidentKind::parse(&r[1]).is_some())
            .collect();
        assert_eq!(incident_rows.len(), trace.incidents.len());
        for (row, inc) in incident_rows.iter().zip(&trace.incidents) {
            assert_eq!(row[0].parse::<f64>().unwrap(), inc.t);
            assert_eq!(row[1], inc.kind.as_str());
            assert_eq!(row[2].parse::<usize>().unwrap(), inc.rank);
            assert_eq!(row[8].parse::<u64>().unwrap(), inc.items);
            assert_eq!(row[10], inc.info);
            // Schedule-only columns stay empty on incident rows.
            assert!(row[4].is_empty() && row[7].is_empty());
        }
    }

    #[test]
    fn label_and_incident_counts_round_trip_through_summary_csv() {
        let summary = faulty_sample().summarize().unwrap();
        let csv = summary_to_csv(&summary);
        let rows: Vec<Vec<String>> = csv.lines().skip(1).map(split_row).collect();
        assert!(rows.iter().all(|r| r.len() == 14), "rectangular CSV");
        for row in &rows {
            assert_eq!(row[10], "recovered, retried");
            assert_eq!(row[11].parse::<usize>().unwrap(), summary.faults);
            assert_eq!(row[12].parse::<usize>().unwrap(), summary.retries);
            assert_eq!(row[13].parse::<usize>().unwrap(), summary.replans);
        }
    }

    #[test]
    fn split_row_inverts_escaping() {
        let row = r#"1,"a,b","say ""hi""",plain,"#;
        assert_eq!(split_row(row), vec!["1", "a,b", "say \"hi\"", "plain", ""]);
    }
}
