//! Root-processor selection (RR-4770 §3.4).
//!
//! The `n` data items initially live on a computer `C`. If the root is not
//! on `C`, the whole execution additionally pays the transfer of the data
//! set from `C` to the root. The best root minimizes
//! `transfer(C → r, n) + T(plan with root r)` over the `p` candidates.

use std::sync::Arc;

use crate::cost::Platform;
use crate::cost_table::CostTable;
use crate::error::PlanError;
use crate::ordering::OrderPolicy;
use crate::planner::{Plan, Planner, Strategy};

/// Outcome of root selection.
#[derive(Debug, Clone)]
pub struct RootChoice {
    /// Index of the winning root processor.
    pub root: usize,
    /// Total time (initial transfer + balanced execution) with that root.
    pub total_time: f64,
    /// The plan computed for the winning root.
    pub plan: Plan,
    /// `(candidate, transfer, makespan, total)` for every candidate, for
    /// reporting.
    pub candidates: Vec<CandidateReport>,
}

/// Evaluation of one root candidate.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Candidate processor index.
    pub root: usize,
    /// Time to move the data set from `C` to this candidate.
    pub transfer: f64,
    /// Predicted balanced makespan with this candidate as root.
    pub makespan: f64,
    /// `transfer + makespan`.
    pub total: f64,
}

/// Selects the best root (§3.4): minimizes initial transfer plus balanced
/// execution time.
///
/// `transfer_time[i]` is the time to move the whole data set from its
/// initial location `C` to candidate `i` (zero when the candidate is on
/// `C`). The same `strategy`/`policy` is used to evaluate every candidate.
pub fn select_root(
    platform: &Platform,
    transfer_time: &[f64],
    n: usize,
    strategy: Strategy,
    policy: OrderPolicy,
) -> Result<RootChoice, PlanError> {
    if transfer_time.len() != platform.len() {
        return Err(PlanError::InvalidPlatform(format!(
            "need one transfer time per processor ({} != {})",
            transfer_time.len(),
            platform.len()
        )));
    }
    let mut best: Option<(usize, f64, Plan)> = None;
    let mut candidates = Vec::with_capacity(platform.len());
    // One cost table for the whole scan: every candidate re-plans on the
    // same processors, so the DP strategies tabulate each function once.
    let table = Arc::new(CostTable::new());
    for (r, &transfer) in transfer_time.iter().enumerate() {
        let candidate_platform = platform.with_root(r)?;
        let plan = Planner::new(candidate_platform)
            .strategy(strategy)
            .order_policy(policy)
            .cache(Arc::clone(&table))
            .plan(n)?;
        let total = transfer + plan.predicted_makespan;
        candidates.push(CandidateReport {
            root: r,
            transfer,
            makespan: plan.predicted_makespan,
            total,
        });
        if best.as_ref().is_none_or(|(_, t, _)| total < *t) {
            best = Some((r, total, plan));
        }
    }
    let (root, total_time, plan) = best.expect("platform is non-empty");
    Ok(RootChoice { root, total_time, plan, candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("a", 1e-4, 0.01),
                Processor::linear("b", 5e-5, 0.02),
                Processor::linear("c", 2e-4, 0.005),
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn zero_transfer_everywhere_picks_best_makespan() {
        let choice = select_root(
            &platform(),
            &[0.0, 0.0, 0.0],
            10_000,
            Strategy::Heuristic,
            OrderPolicy::DescendingBandwidth,
        )
        .unwrap();
        // Whatever wins, it must be the argmin of the reports.
        let best = choice
            .candidates
            .iter()
            .min_by(|a, b| a.total.partial_cmp(&b.total).unwrap())
            .unwrap();
        assert_eq!(choice.root, best.root);
        assert_eq!(choice.candidates.len(), 3);
    }

    #[test]
    fn expensive_transfer_disqualifies_candidate() {
        // Candidate 2 has the best CPU but a huge initial transfer cost.
        let free = select_root(
            &platform(),
            &[0.0, 0.0, 0.0],
            10_000,
            Strategy::Heuristic,
            OrderPolicy::DescendingBandwidth,
        )
        .unwrap();
        let taxed = select_root(
            &platform(),
            &[0.0, 0.0, 1e6],
            10_000,
            Strategy::Heuristic,
            OrderPolicy::DescendingBandwidth,
        )
        .unwrap();
        assert_ne!(taxed.root, 2, "prohibitive transfer must exclude candidate 2");
        assert!(taxed.total_time >= free.total_time);
    }

    #[test]
    fn data_host_wins_when_links_are_slow() {
        // All transfers off-host are slow: the host of the data (index 1,
        // transfer 0) should be root.
        let choice = select_root(
            &platform(),
            &[500.0, 0.0, 500.0],
            10_000,
            Strategy::Heuristic,
            OrderPolicy::DescendingBandwidth,
        )
        .unwrap();
        assert_eq!(choice.root, 1);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(select_root(
            &platform(),
            &[0.0, 0.0],
            100,
            Strategy::Uniform,
            OrderPolicy::AsIs,
        )
        .is_err());
    }

    #[test]
    fn cached_exact_scan_matches_fresh_plans_bit_for_bit() {
        // The scan reuses one CostTable across candidates; every
        // candidate's makespan must still equal a fresh, uncached plan.
        let choice = select_root(
            &platform(),
            &[0.0, 0.0, 0.0],
            400,
            Strategy::Exact,
            OrderPolicy::DescendingBandwidth,
        )
        .unwrap();
        for c in &choice.candidates {
            let fresh = Planner::new(platform().with_root(c.root).unwrap())
                .strategy(Strategy::Exact)
                .order_policy(OrderPolicy::DescendingBandwidth)
                .plan(400)
                .unwrap();
            assert_eq!(fresh.predicted_makespan.to_bits(), c.makespan.to_bits(), "root {}", c.root);
        }
    }

    #[test]
    fn reports_are_consistent() {
        let choice = select_root(
            &platform(),
            &[1.0, 2.0, 3.0],
            5_000,
            Strategy::ClosedForm,
            OrderPolicy::DescendingBandwidth,
        )
        .unwrap();
        for c in &choice.candidates {
            assert!((c.total - (c.transfer + c.makespan)).abs() < 1e-12);
            assert!(choice.total_time <= c.total + 1e-12);
        }
    }
}
