//! # gs-scatter — static load-balancing of scatter operations
//!
//! Reproduction of the algorithms of Genaud, Giersch & Vivien,
//! *Load-Balancing Scatter Operations for Grid Computing* (IPPS/HCW 2003,
//! long version INRIA RR-4770).
//!
//! A *scatter* sends block `i` of a root buffer to processor `i`, which then
//! computes on it. On a heterogeneous grid (different CPU speeds, different
//! link bandwidths) equal-size blocks (`MPI_Scatter`) leave fast machines
//! idle; this crate computes the block sizes an `MPI_Scatterv` should use
//! instead.
//!
//! ## Cost model (single-port root)
//!
//! The root sends to processors in turn, so processor `P_i` (in scatter
//! order, root last) finishes at
//!
//! ```text
//! T_i = Σ_{j<=i} Tcomm(j, n_j) + Tcomp(i, n_i)        (Eq. 1)
//! T   = max_i T_i                                      (Eq. 2)
//! ```
//!
//! and we seek the integer distribution `n_1..n_p` (Σ n_i = n) minimizing
//! `T`.
//!
//! ## Solvers
//!
//! | module | paper | requirements | complexity |
//! |---|---|---|---|
//! | [`dp_basic`] | Algorithm 1 | non-negative costs | `O(p·n²)` |
//! | [`dp_optimized`] | Algorithm 2 | increasing costs | `O(p·n²)` worst, `~O(p·n·log n)` typical |
//! | [`dp_dc`] | D&C extension | increasing costs (else falls back to Alg. 1) | `O(p·n·log n)` |
//! | [`heuristic`] | §3.3 LP + rounding | affine costs | polynomial, guaranteed (Eq. 4) |
//! | [`closed_form`] | §4, Theorems 1–2 | linear costs | `O(p)`, exact rational |
//!
//! Plus the ordering policy of Theorem 3 ([`ordering`]), root selection of
//! §3.4 ([`root`]), and a high-level [`planner`] that ties it all together
//! and emits `MPI_Scatterv`-style `counts`/`displs`.
//!
//! ## Quick start
//!
//! ```
//! use gs_scatter::prelude::*;
//!
//! // Three workers plus a root, linear costs (Table-1 style coefficients).
//! let platform = Platform::new(vec![
//!     Processor::linear("root", 0.0, 0.009),
//!     Processor::linear("fast", 1.0e-5, 0.004),
//!     Processor::linear("slow", 2.0e-5, 0.016),
//!     Processor::linear("far", 8.0e-5, 0.004),
//! ], 0).unwrap();
//!
//! let plan = Planner::new(platform)
//!     .strategy(Strategy::Heuristic)
//!     .order_policy(OrderPolicy::DescendingBandwidth)
//!     .plan(100_000)
//!     .unwrap();
//!
//! assert_eq!(plan.counts.iter().sum::<usize>(), 100_000);
//! // The fast machine gets more work than the slow one.
//! assert!(plan.counts[1] > plan.counts[2]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod brute;
pub mod calibrate;
pub mod closed_form;
pub mod cost;
pub mod cost_table;
pub mod distribution;
pub mod dp_basic;
pub mod dp_dc;
mod dp_kernel;
pub mod dp_optimized;
pub mod error;
pub mod fault;
pub mod gather;
pub mod heuristic;
pub mod intern;
pub mod metrics;
pub mod multiround;
pub mod obs;
pub mod ordering;
pub mod paper;
pub mod parallel;
pub mod planner;
pub mod platform_file;
pub mod root;
pub mod rounding;

/// Convenient glob-import of the main types.
pub mod prelude {
    pub use crate::calibrate::{Calibration, DriftReport};
    pub use crate::closed_form::{closed_form_distribution, ClosedFormSolution};
    pub use crate::cost::{CostFn, Platform, Processor};
    pub use crate::cost_table::CostTable;
    pub use crate::distribution::{finish_times, makespan, uniform_distribution, Timeline};
    pub use crate::dp_basic::optimal_distribution_basic;
    pub use crate::dp_dc::optimal_distribution_dc;
    pub use crate::dp_optimized::optimal_distribution;
    pub use crate::error::PlanError;
    pub use crate::fault::{
        replan_residual, replan_residual_with, Fault, FaultKind, FaultPlan, FaultSession,
        RecoveryConfig, SendOutcome,
    };
    pub use crate::heuristic::{heuristic_distribution, HeuristicSolution};
    pub use crate::intern::NameInterner;
    pub use crate::metrics::{MetricsSnapshot, Registry};
    pub use crate::obs::{
        Event, EventKind, Incident, IncidentKind, PlanTiming, Trace, TraceSource, TraceSummary,
    };
    pub use crate::parallel::{
        optimal_distribution_basic_parallel, optimal_distribution_dc_parallel,
        optimal_distribution_parallel, ParallelOpts,
    };
    pub use crate::ordering::{scatter_order, OrderPolicy};
    pub use crate::planner::{Plan, PlanCache, Planner, Strategy};
    pub use crate::root::select_root;
}
