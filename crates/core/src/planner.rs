//! High-level planner: picks an ordering, runs a distribution strategy,
//! and emits `MPI_Scatterv`-ready `counts`/`displs` — plus the
//! [`PlanCache`] that lets exact re-plans warm-start from a previous
//! solve's DP plane.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cost::{Platform, Processor};
use crate::cost_table::{key_of, CostKey, CostTable};
use crate::distribution::{self, Timeline};
use crate::dp_kernel::DpPlane;
use crate::error::PlanError;
use crate::metrics::Registry;
use crate::obs::{PlanTiming, Trace, TraceSource};
use crate::ordering::{scatter_order, OrderPolicy};
use crate::parallel::{self, Algo, ParallelOpts, WarmStart};

/// Which distribution algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Equal shares — the original `MPI_Scatter` behaviour (baseline).
    Uniform,
    /// Algorithm 1: exact DP, arbitrary non-negative costs, `O(p·n²)`.
    ExactBasic,
    /// Algorithm 2: exact DP, non-decreasing costs (default exact solver).
    Exact,
    /// Divide-and-conquer exact DP, `O(p·n log n)` for non-decreasing
    /// costs (falls back to Algorithm 1 otherwise) — see
    /// [`crate::dp_dc`].
    ExactDc,
    /// §3.3 guaranteed LP heuristic, affine costs.
    Heuristic,
    /// §4 closed form, linear costs, exact rational + rounding.
    ClosedForm,
}

/// The `(Tcomm, Tcomp)` identity of one processor, in scatter order —
/// what a cached DP column's validity depends on.
type CostSig = (CostKey, CostKey);

/// A cached DP plane, identified by the platform it was solved on.
#[derive(Debug)]
struct PlaneEntry {
    /// Hash over `sigs` — the "platform hash + cost kind" identity.
    key: u64,
    /// Cost-function identities in scatter order (root last).
    sigs: Vec<CostSig>,
    plane: DpPlane,
}

/// Sharded cache of recent exact solves' DP planes, enabling
/// **warm-started re-plans**.
///
/// DP column `i` depends only on the cost functions of processors
/// `i..p-1` (suffixes of the scatter order). When a re-plan runs over a
/// platform whose *trailing* processors are unchanged — exactly what
/// happens when fault recovery drops dead ranks but keeps the
/// survivors' relative order, root last — the cached plane's trailing
/// columns are bit-identical to what the new solve would recompute, so
/// the engine copies them and only computes the columns that actually
/// changed.
///
/// Entries are keyed by a hash of the ordered `(Tcomm, Tcomp)`
/// cost-function identities (coefficient bits for linear/affine costs,
/// shared-`Arc` identity for tabulated/custom ones, which survivor
/// clones share). Any platform change shows up as a signature mismatch
/// and invalidates the non-matching columns — a changed processor
/// invalidates every column at or above its scatter position, and a
/// fully changed platform misses outright. Planes are only stored (and
/// only reused) for **unpruned** solves, so every cached cell is a true
/// DP value.
///
/// # Sharding
///
/// [`PlanCache::new`] holds a single plane — the last exact solve wins,
/// which is exactly right for a CLI run or a fault-recovery session.
/// A multi-tenant service re-planning many *different* platforms
/// concurrently wants [`PlanCache::with_shards`]: each shard is an
/// independent slot under its own lock, and a platform is routed to a
/// shard by the hash of its **root** (last-in-scatter-order) cost
/// signature. Routing by the root rather than the whole platform is
/// deliberate — fault survivors keep the root last, so a re-plan over
/// survivors lands in the same shard as the original solve and still
/// finds the trailing columns it can reuse, while unrelated platforms
/// (different roots) stop evicting each other.
///
/// Plans through a cache are bit-identical in makespan to cold plans —
/// property-tested — and hits/misses are published as
/// `plan_cache_hits_total` / `plan_cache_misses_total`.
///
/// ```
/// use std::sync::Arc;
/// use gs_scatter::prelude::*;
///
/// let platform = Platform::new(vec![
///     Processor::linear("root", 0.0, 0.01),
///     Processor::linear("w1", 1e-4, 0.02),
///     Processor::linear("w2", 2e-4, 0.03),
/// ], 0).unwrap();
/// let cache = Arc::new(PlanCache::new());
/// let planner = Planner::new(platform)
///     .strategy(Strategy::Exact)
///     .plan_cache(Arc::clone(&cache));
///
/// let cold = planner.plan(2000).unwrap(); // nothing cached yet: a miss
/// let warm = planner.plan(1000).unwrap(); // reuses the cached plane
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// // Warm starts never change the answer, only the work done.
/// assert_eq!(warm.total_items(), 1000);
/// assert!(warm.predicted_makespan < cold.predicted_makespan);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    /// One independently locked slot per shard; `shard_of` routes by the
    /// root cost signature.
    shards: Box<[Mutex<Option<PlaneEntry>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_shards(1)
    }
}

impl PlanCache {
    /// An empty single-shard cache (the last exact solve's plane wins).
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache with `shards` independent slots (minimum 1),
    /// routed by root cost signature. Use more shards when many
    /// unrelated platforms share one cache — e.g. a planning daemon —
    /// so they stop evicting each other and contending on one lock.
    ///
    /// ```
    /// use gs_scatter::planner::PlanCache;
    /// assert_eq!(PlanCache::with_shards(16).shard_count(), 16);
    /// assert_eq!(PlanCache::with_shards(0).shard_count(), 1);
    /// ```
    pub fn with_shards(shards: usize) -> PlanCache {
        let shards = shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(None)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of independent shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lookups that warm-started a solve (at least one column reused).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing reusable.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The platform-hash key for a signature list.
    fn key(sigs: &[CostSig]) -> u64 {
        let mut h = DefaultHasher::new();
        sigs.hash(&mut h);
        h.finish()
    }

    /// The shard a platform belongs to: hash of the root (last)
    /// signature only, so survivor sub-platforms — which keep the root
    /// last — route to the same shard as the platform they came from.
    fn shard_of(&self, sigs: &[CostSig]) -> &Mutex<Option<PlaneEntry>> {
        let mut h = DefaultHasher::new();
        sigs.last().hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Takes the cached plane out when its trailing columns are
    /// reusable for a solve over `sigs` with `n` items, returning it
    /// with the number of trailing columns to reuse. The caller is
    /// expected to [`PlanCache::store`] the new solve's plane, refilling
    /// the slot.
    fn take_warm(&self, sigs: &[CostSig], n: usize) -> Option<(DpPlane, usize)> {
        let mut slot = self.shard_of(sigs).lock().expect("plan cache poisoned");
        let Some(entry) = slot.take() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            Registry::global()
                .counter("plan_cache_misses_total", "plan-cache lookups with nothing to reuse")
                .inc();
            return None;
        };
        let (p_new, p_old) = (sigs.len(), entry.sigs.len());
        // Fast path: an unchanged platform (same hash, then verified
        // equal) skips the per-column signature walk.
        let same_platform = entry.key == PlanCache::key(sigs) && entry.sigs == sigs;
        // The top column of either solve is never reusable (only its
        // cell `n` is ever computed, and the new one must be recomputed
        // anyway); `col_len` additionally guards partially computed
        // columns and residuals larger than the cached solve.
        let max = p_new.saturating_sub(1).min(p_old.saturating_sub(1));
        let mut reuse = 0;
        while reuse < max
            && (same_platform || entry.sigs[p_old - 1 - reuse] == sigs[p_new - 1 - reuse])
            && entry.plane.col_len[p_old - 1 - reuse] > n
        {
            reuse += 1;
        }
        if reuse == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            Registry::global()
                .counter("plan_cache_misses_total", "plan-cache lookups with nothing to reuse")
                .inc();
            *slot = Some(entry);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Registry::global()
            .counter("plan_cache_hits_total", "plan-cache lookups that warm-started a solve")
            .inc();
        Some((entry.plane, reuse))
    }

    /// Stores the plane of a finished **unpruned** exact solve,
    /// replacing whatever the platform's shard held.
    fn store(&self, sigs: Vec<CostSig>, plane: DpPlane) {
        let shard = self.shard_of(&sigs);
        let entry = PlaneEntry { key: PlanCache::key(&sigs), sigs, plane };
        *shard.lock().expect("plan cache poisoned") = Some(entry);
    }
}

/// A complete scatter plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Items for each processor, **by platform index** (ready to be used
    /// as the `counts` argument of a scatterv).
    pub counts: Vec<usize>,
    /// Offset of each processor's block in the root buffer, by platform
    /// index. Blocks are laid out contiguously in scatter order, so the
    /// root transmits a single sequential sweep of its buffer.
    pub displs: Vec<usize>,
    /// The scatter order used (processor indices, root last).
    pub order: Vec<usize>,
    /// Predicted schedule (Eq. 1), in scatter order.
    pub predicted: Timeline,
    /// Predicted makespan (Eq. 2).
    pub predicted_makespan: f64,
    /// How long planning took (also attached to traces built from this
    /// plan, so reports can show planning cost next to the makespan).
    pub timing: PlanTiming,
}

impl Plan {
    /// Counts re-arranged into scatter order.
    pub fn counts_in_order(&self) -> Vec<usize> {
        self.order.iter().map(|&i| self.counts[i]).collect()
    }

    /// Total number of items distributed.
    pub fn total_items(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The predicted Eq. (1) schedule as an observability [`Trace`]
    /// (source [`TraceSource::Predicted`]), ranked in scatter order with
    /// the platform's processor names. `item_bytes` is the size of one
    /// data item, used to fill in per-transfer byte counts.
    pub fn predicted_trace(&self, platform: &Platform, item_bytes: u64) -> Trace {
        let names: Vec<&str> =
            self.order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();
        let mut trace = Trace::from_timeline(
            TraceSource::Predicted,
            &names,
            &self.counts_in_order(),
            item_bytes,
            &self.predicted,
        );
        trace.plan_timing = Some(self.timing.clone());
        trace
    }
}

/// Builder tying a [`Platform`] to a [`Strategy`] and an [`OrderPolicy`].
///
/// ```
/// use gs_scatter::prelude::*;
/// let platform = Platform::new(vec![
///     Processor::linear("root", 0.0, 0.01),
///     Processor::linear("w1", 1e-4, 0.02),
/// ], 0).unwrap();
/// let plan = Planner::new(platform).strategy(Strategy::Exact).plan(1000).unwrap();
/// assert_eq!(plan.total_items(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    platform: Platform,
    strategy: Strategy,
    policy: OrderPolicy,
    threads: usize,
    prune: bool,
    cache: Option<Arc<CostTable>>,
    plan_cache: Option<Arc<PlanCache>>,
}

impl Planner {
    /// Creates a planner with the paper's defaults: the guaranteed
    /// heuristic and descending-bandwidth ordering, single-threaded
    /// exact solves without pruning.
    pub fn new(platform: Platform) -> Self {
        Planner {
            platform,
            strategy: Strategy::Heuristic,
            policy: OrderPolicy::DescendingBandwidth,
            threads: 1,
            prune: false,
            cache: None,
            plan_cache: None,
        }
    }

    /// Selects the distribution strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the ordering policy.
    pub fn order_policy(mut self, policy: OrderPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Worker threads for the exact DP strategies (`0` = one per core,
    /// default 1). Results are bit-identical for any thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables upper-bound pruning for [`Strategy::Exact`] (bit-identical
    /// results; only effective with linear/affine costs, which seed the
    /// bound).
    pub fn prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Shares a [`CostTable`] across planners, so repeated plans on the
    /// same cost functions (e.g. root-selection scans) tabulate once.
    pub fn cache(mut self, table: Arc<CostTable>) -> Self {
        self.cache = Some(table);
        self
    }

    /// Shares a [`PlanCache`]: exact strategies store their DP plane
    /// into it after every unpruned solve, and later plans whose
    /// platform shares a trailing suffix (e.g. re-plans over fault
    /// survivors) warm-start from the cached columns. No effect on
    /// non-exact strategies or pruned solves; makespans are identical
    /// with or without the cache.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The platform being planned for.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Computes a plan for `n` items.
    pub fn plan(&self, n: usize) -> Result<Plan, PlanError> {
        let order = scatter_order(&self.platform, self.policy);
        self.plan_with_order(n, order)
    }

    /// Computes a plan for `n` items using an explicit scatter order
    /// (a permutation of processor indices, root last).
    pub fn plan_with_order(&self, n: usize, order: Vec<usize>) -> Result<Plan, PlanError> {
        let view = self.platform.ordered(&order);
        let start = Instant::now();
        let fresh_table;
        let table = match &self.cache {
            Some(shared) => shared.as_ref(),
            None => {
                fresh_table = CostTable::new();
                &fresh_table
            }
        };
        let opts = ParallelOpts { threads: self.threads, prune: self.prune, chunk: 0 };
        let (counts_ordered, timing): (Vec<usize>, PlanTiming) = match self.strategy {
            Strategy::Uniform => {
                let counts = distribution::uniform_distribution(view.len(), n);
                (counts, PlanTiming::simple("uniform", start.elapsed().as_secs_f64()))
            }
            Strategy::ExactBasic => self.exact(Algo::Basic, table, &view, n, &opts)?,
            Strategy::Exact => self.exact(Algo::Optimized, table, &view, n, &opts)?,
            Strategy::ExactDc => self.exact(Algo::Dc, table, &view, n, &opts)?,
            Strategy::Heuristic => {
                let counts = crate::heuristic::heuristic_distribution(&view, n)?.counts;
                (counts, PlanTiming::simple("heuristic", start.elapsed().as_secs_f64()))
            }
            Strategy::ClosedForm => {
                let counts = crate::closed_form::closed_form_distribution(&view, n)?.counts;
                (counts, PlanTiming::simple("closed-form", start.elapsed().as_secs_f64()))
            }
        };
        let predicted = distribution::timeline(&view, &counts_ordered);
        let predicted_makespan = predicted.makespan();

        // Map ordered counts back to platform indices and lay out blocks
        // contiguously in send (scatter) order.
        let p = self.platform.len();
        let mut counts = vec![0usize; p];
        let mut displs = vec![0usize; p];
        let mut offset = 0usize;
        for (pos, &idx) in order.iter().enumerate() {
            counts[idx] = counts_ordered[pos];
            displs[idx] = offset;
            offset += counts_ordered[pos];
        }
        debug_assert_eq!(offset, n);

        Ok(Plan { counts, displs, order, predicted, predicted_makespan, timing })
    }

    /// Runs one exact DP strategy, going through the [`PlanCache`] when
    /// one is attached (and pruning is off — cached planes must hold
    /// true DP values in every cell).
    fn exact(
        &self,
        algo: Algo,
        table: &CostTable,
        view: &[&Processor],
        n: usize,
        opts: &ParallelOpts,
    ) -> Result<(Vec<usize>, PlanTiming), PlanError> {
        let cache = match &self.plan_cache {
            Some(c) if !self.prune => c,
            _ => {
                let (sol, timing) = parallel::solve(algo, table, view, n, opts)?;
                return Ok((sol.counts, timing));
            }
        };
        let sigs: Vec<CostSig> =
            view.iter().map(|pr| (key_of(&pr.comm), key_of(&pr.comp))).collect();
        let taken = cache.take_warm(&sigs, n);
        let warm = taken.as_ref().map(|(plane, reuse)| WarmStart { plane, reuse: *reuse });
        let (sol, timing, plane) = parallel::solve_full(algo, table, view, n, opts, warm.as_ref())?;
        cache.store(sigs, plane);
        Ok((sol.counts, timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("root", 0.0, 0.009288),
                Processor::linear("caseb", 1.00e-5, 0.004629),
                Processor::linear("merlin", 8.15e-5, 0.003976),
                Processor::linear("seven", 2.10e-5, 0.016156),
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn all_strategies_distribute_everything() {
        let n = 5000;
        for strategy in [
            Strategy::Uniform,
            Strategy::ExactBasic,
            Strategy::Exact,
            Strategy::ExactDc,
            Strategy::Heuristic,
            Strategy::ClosedForm,
        ] {
            let plan = Planner::new(platform()).strategy(strategy).plan(n).unwrap();
            assert_eq!(plan.total_items(), n, "{strategy:?}");
            assert_eq!(*plan.order.last().unwrap(), 0, "{strategy:?}: root last");
        }
    }

    #[test]
    fn displs_are_contiguous_in_scatter_order() {
        let plan = Planner::new(platform())
            .strategy(Strategy::Heuristic)
            .plan(10_000)
            .unwrap();
        let mut offset = 0;
        for &idx in &plan.order {
            assert_eq!(plan.displs[idx], offset);
            offset += plan.counts[idx];
        }
        assert_eq!(offset, 10_000);
    }

    #[test]
    fn balanced_beats_uniform() {
        let n = 50_000;
        let uniform = Planner::new(platform()).strategy(Strategy::Uniform).plan(n).unwrap();
        let balanced = Planner::new(platform()).strategy(Strategy::Heuristic).plan(n).unwrap();
        assert!(
            balanced.predicted_makespan < uniform.predicted_makespan * 0.8,
            "balanced {} should clearly beat uniform {}",
            balanced.predicted_makespan,
            uniform.predicted_makespan
        );
    }

    #[test]
    fn exact_and_heuristic_agree_closely() {
        let n = 2_000;
        let exact = Planner::new(platform()).strategy(Strategy::Exact).plan(n).unwrap();
        let heur = Planner::new(platform()).strategy(Strategy::Heuristic).plan(n).unwrap();
        assert!(exact.predicted_makespan <= heur.predicted_makespan + 1e-9);
        let rel =
            (heur.predicted_makespan - exact.predicted_makespan) / exact.predicted_makespan;
        assert!(rel < 1e-2, "relative gap {rel}");
    }

    #[test]
    fn descending_no_worse_than_ascending() {
        let n = 20_000;
        let desc = Planner::new(platform())
            .strategy(Strategy::ClosedForm)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(n)
            .unwrap();
        let asc = Planner::new(platform())
            .strategy(Strategy::ClosedForm)
            .order_policy(OrderPolicy::AscendingBandwidth)
            .plan(n)
            .unwrap();
        assert!(desc.predicted_makespan <= asc.predicted_makespan + 1e-9);
    }

    #[test]
    fn counts_in_order_round_trips() {
        let plan = Planner::new(platform()).strategy(Strategy::Uniform).plan(103).unwrap();
        let in_order = plan.counts_in_order();
        for (pos, &idx) in plan.order.iter().enumerate() {
            assert_eq!(in_order[pos], plan.counts[idx]);
        }
    }

    #[test]
    fn predicted_trace_reflects_the_plan() {
        let plat = platform();
        let plan = Planner::new(plat.clone()).strategy(Strategy::Exact).plan(5000).unwrap();
        let trace = plan.predicted_trace(&plat, 8);
        trace.validate().unwrap();
        assert_eq!(trace.makespan(), plan.predicted_makespan);
        let summary = trace.summarize().unwrap();
        assert_eq!(summary.total_bytes, 5000 * 8);
        // Scatter order and names line up.
        for (pos, &idx) in plan.order.iter().enumerate() {
            assert_eq!(trace.names[pos], plat.procs()[idx].name);
        }
    }

    #[test]
    fn threads_and_pruning_do_not_change_the_plan() {
        let n = 3000;
        let base = Planner::new(platform()).strategy(Strategy::Exact).plan(n).unwrap();
        let table = Arc::new(CostTable::new());
        let tuned = Planner::new(platform())
            .strategy(Strategy::Exact)
            .threads(4)
            .prune(true)
            .cache(Arc::clone(&table))
            .plan(n)
            .unwrap();
        assert_eq!(tuned.counts, base.counts);
        assert_eq!(tuned.predicted_makespan.to_bits(), base.predicted_makespan.to_bits());
        assert_eq!(tuned.timing.strategy, "exact");
        assert_eq!(tuned.timing.threads, 4);
        assert!(tuned.timing.pruned, "linear costs seed a pruning bound");
        assert!(!table.is_empty(), "shared cache was populated");
    }

    #[test]
    fn every_plan_carries_timing() {
        for (strategy, name) in [
            (Strategy::Uniform, "uniform"),
            (Strategy::ExactBasic, "exact-basic"),
            (Strategy::Exact, "exact"),
            (Strategy::ExactDc, "exact-dc"),
            (Strategy::Heuristic, "heuristic"),
            (Strategy::ClosedForm, "closed-form"),
        ] {
            let plan = Planner::new(platform()).strategy(strategy).plan(500).unwrap();
            assert_eq!(plan.timing.strategy, name);
            assert!(plan.timing.total_secs >= 0.0);
            let trace = plan.predicted_trace(&platform(), 8);
            assert_eq!(trace.plan_timing.as_ref().unwrap().strategy, name);
        }
    }

    #[test]
    fn exact_dc_plans_match_exact_plans() {
        for n in [0usize, 1, 500, 5000] {
            let dc = Planner::new(platform()).strategy(Strategy::ExactDc).plan(n).unwrap();
            let exact = Planner::new(platform()).strategy(Strategy::Exact).plan(n).unwrap();
            assert_eq!(dc.counts, exact.counts, "n={n}");
            assert_eq!(
                dc.predicted_makespan.to_bits(),
                exact.predicted_makespan.to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn plan_cache_warm_start_is_invisible_in_the_result() {
        let plat = platform();
        let cache = Arc::new(PlanCache::new());
        // Prime the cache with a full-platform solve.
        let full = Planner::new(plat.clone())
            .strategy(Strategy::Exact)
            .plan_cache(Arc::clone(&cache))
            .plan(4000)
            .unwrap();
        assert_eq!(cache.misses(), 1, "first lookup has nothing to reuse");
        // Survivor platform: drop the first worker in scatter order, so
        // the whole remaining suffix of DP columns is reusable.
        let procs = plat.procs();
        let surv = Platform::new(
            vec![procs[0].clone(), procs[2].clone(), procs[3].clone()],
            0,
        )
        .unwrap();
        let cold = Planner::new(surv.clone()).strategy(Strategy::Exact).plan(1500).unwrap();
        let warm = Planner::new(surv)
            .strategy(Strategy::Exact)
            .plan_cache(Arc::clone(&cache))
            .plan(1500)
            .unwrap();
        assert_eq!(cache.hits(), 1, "survivor suffix must be reusable");
        assert_eq!(warm.counts, cold.counts);
        assert_eq!(warm.predicted_makespan.to_bits(), cold.predicted_makespan.to_bits());
        let _ = full;
    }

    #[test]
    fn plan_cache_misses_on_platform_change() {
        let cache = Arc::new(PlanCache::new());
        Planner::new(platform())
            .strategy(Strategy::ExactDc)
            .plan_cache(Arc::clone(&cache))
            .plan(1000)
            .unwrap();
        // A different root changes every suffix: nothing is reusable.
        let other = Platform::new(
            vec![
                Processor::linear("other-root", 0.0, 0.123),
                Processor::linear("other-w", 1e-4, 0.456),
            ],
            0,
        )
        .unwrap();
        Planner::new(other)
            .strategy(Strategy::ExactDc)
            .plan_cache(Arc::clone(&cache))
            .plan(500)
            .unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn sharded_cache_keeps_unrelated_platforms_apart() {
        // With enough shards, two platforms with different roots no
        // longer evict each other: plan A, plan B, then re-plan A —
        // A's plane must still be there (a hit), which the single-slot
        // cache cannot deliver.
        let other = Platform::new(
            vec![
                Processor::linear("other-root", 0.0, 0.123),
                Processor::linear("other-w", 1e-4, 0.456),
            ],
            0,
        )
        .unwrap();
        for shards in [1usize, 64] {
            let cache = Arc::new(PlanCache::with_shards(shards));
            let a = Planner::new(platform())
                .strategy(Strategy::Exact)
                .plan_cache(Arc::clone(&cache));
            let b = Planner::new(other.clone())
                .strategy(Strategy::Exact)
                .plan_cache(Arc::clone(&cache));
            a.plan(2000).unwrap();
            b.plan(2000).unwrap();
            let replan = a.plan(1000).unwrap();
            if shards > 1 {
                // Root hashes differ, so A and B land in different
                // shards (true for these fixed coefficients) and the
                // re-plan warm-starts.
                assert_eq!(cache.hits(), 1, "shards={shards}");
            }
            let cold = Planner::new(platform()).strategy(Strategy::Exact).plan(1000).unwrap();
            assert_eq!(replan.counts, cold.counts, "shards={shards}");
            assert_eq!(
                replan.predicted_makespan.to_bits(),
                cold.predicted_makespan.to_bits(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_cache_preserves_survivor_warm_starts() {
        // The shard is chosen by the root signature, so a survivor
        // platform (root kept last) must land in the same shard as the
        // full platform and warm-start, whatever the shard count.
        let plat = platform();
        let cache = Arc::new(PlanCache::with_shards(64));
        Planner::new(plat.clone())
            .strategy(Strategy::Exact)
            .plan_cache(Arc::clone(&cache))
            .plan(4000)
            .unwrap();
        let procs = plat.procs();
        let surv =
            Platform::new(vec![procs[0].clone(), procs[2].clone(), procs[3].clone()], 0)
                .unwrap();
        Planner::new(surv)
            .strategy(Strategy::Exact)
            .plan_cache(Arc::clone(&cache))
            .plan(1500)
            .unwrap();
        assert_eq!(cache.hits(), 1, "survivor re-plan must hit across shards");
    }

    /// The Send/Sync audit the serve daemon relies on: everything a
    /// request handler shares across threads must be thread-safe *by
    /// construction*, checked here at compile time.
    #[test]
    fn service_shared_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Platform>();
        assert_send_sync::<Processor>();
        assert_send_sync::<crate::cost::CostFn>();
        assert_send_sync::<Plan>();
        assert_send_sync::<Planner>();
        assert_send_sync::<PlanCache>();
        assert_send_sync::<CostTable>();
        assert_send_sync::<Registry>();
        assert_send_sync::<Trace>();
        assert_send_sync::<PlanError>();
    }

    #[test]
    fn explicit_order() {
        let plan = Planner::new(platform())
            .strategy(Strategy::Exact)
            .plan_with_order(1000, vec![3, 2, 1, 0])
            .unwrap();
        assert_eq!(plan.order, vec![3, 2, 1, 0]);
        assert_eq!(plan.total_items(), 1000);
    }
}
