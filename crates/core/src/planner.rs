//! High-level planner: picks an ordering, runs a distribution strategy,
//! and emits `MPI_Scatterv`-ready `counts`/`displs`.

use std::sync::Arc;
use std::time::Instant;

use crate::cost::Platform;
use crate::cost_table::CostTable;
use crate::distribution::{self, Timeline};
use crate::error::PlanError;
use crate::obs::{PlanTiming, Trace, TraceSource};
use crate::ordering::{scatter_order, OrderPolicy};
use crate::parallel::{self, Algo, ParallelOpts};

/// Which distribution algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Equal shares — the original `MPI_Scatter` behaviour (baseline).
    Uniform,
    /// Algorithm 1: exact DP, arbitrary non-negative costs, `O(p·n²)`.
    ExactBasic,
    /// Algorithm 2: exact DP, non-decreasing costs (default exact solver).
    Exact,
    /// §3.3 guaranteed LP heuristic, affine costs.
    Heuristic,
    /// §4 closed form, linear costs, exact rational + rounding.
    ClosedForm,
}

/// A complete scatter plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Items for each processor, **by platform index** (ready to be used
    /// as the `counts` argument of a scatterv).
    pub counts: Vec<usize>,
    /// Offset of each processor's block in the root buffer, by platform
    /// index. Blocks are laid out contiguously in scatter order, so the
    /// root transmits a single sequential sweep of its buffer.
    pub displs: Vec<usize>,
    /// The scatter order used (processor indices, root last).
    pub order: Vec<usize>,
    /// Predicted schedule (Eq. 1), in scatter order.
    pub predicted: Timeline,
    /// Predicted makespan (Eq. 2).
    pub predicted_makespan: f64,
    /// How long planning took (also attached to traces built from this
    /// plan, so reports can show planning cost next to the makespan).
    pub timing: PlanTiming,
}

impl Plan {
    /// Counts re-arranged into scatter order.
    pub fn counts_in_order(&self) -> Vec<usize> {
        self.order.iter().map(|&i| self.counts[i]).collect()
    }

    /// Total number of items distributed.
    pub fn total_items(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The predicted Eq. (1) schedule as an observability [`Trace`]
    /// (source [`TraceSource::Predicted`]), ranked in scatter order with
    /// the platform's processor names. `item_bytes` is the size of one
    /// data item, used to fill in per-transfer byte counts.
    pub fn predicted_trace(&self, platform: &Platform, item_bytes: u64) -> Trace {
        let names: Vec<&str> =
            self.order.iter().map(|&i| platform.procs()[i].name.as_str()).collect();
        let mut trace = Trace::from_timeline(
            TraceSource::Predicted,
            &names,
            &self.counts_in_order(),
            item_bytes,
            &self.predicted,
        );
        trace.plan_timing = Some(self.timing.clone());
        trace
    }
}

/// Builder tying a [`Platform`] to a [`Strategy`] and an [`OrderPolicy`].
///
/// ```
/// use gs_scatter::prelude::*;
/// let platform = Platform::new(vec![
///     Processor::linear("root", 0.0, 0.01),
///     Processor::linear("w1", 1e-4, 0.02),
/// ], 0).unwrap();
/// let plan = Planner::new(platform).strategy(Strategy::Exact).plan(1000).unwrap();
/// assert_eq!(plan.total_items(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    platform: Platform,
    strategy: Strategy,
    policy: OrderPolicy,
    threads: usize,
    prune: bool,
    cache: Option<Arc<CostTable>>,
}

impl Planner {
    /// Creates a planner with the paper's defaults: the guaranteed
    /// heuristic and descending-bandwidth ordering, single-threaded
    /// exact solves without pruning.
    pub fn new(platform: Platform) -> Self {
        Planner {
            platform,
            strategy: Strategy::Heuristic,
            policy: OrderPolicy::DescendingBandwidth,
            threads: 1,
            prune: false,
            cache: None,
        }
    }

    /// Selects the distribution strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the ordering policy.
    pub fn order_policy(mut self, policy: OrderPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Worker threads for the exact DP strategies (`0` = one per core,
    /// default 1). Results are bit-identical for any thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables upper-bound pruning for [`Strategy::Exact`] (bit-identical
    /// results; only effective with linear/affine costs, which seed the
    /// bound).
    pub fn prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Shares a [`CostTable`] across planners, so repeated plans on the
    /// same cost functions (e.g. root-selection scans) tabulate once.
    pub fn cache(mut self, table: Arc<CostTable>) -> Self {
        self.cache = Some(table);
        self
    }

    /// The platform being planned for.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Computes a plan for `n` items.
    pub fn plan(&self, n: usize) -> Result<Plan, PlanError> {
        let order = scatter_order(&self.platform, self.policy);
        self.plan_with_order(n, order)
    }

    /// Computes a plan for `n` items using an explicit scatter order
    /// (a permutation of processor indices, root last).
    pub fn plan_with_order(&self, n: usize, order: Vec<usize>) -> Result<Plan, PlanError> {
        let view = self.platform.ordered(&order);
        let start = Instant::now();
        let fresh_table;
        let table = match &self.cache {
            Some(shared) => shared.as_ref(),
            None => {
                fresh_table = CostTable::new();
                &fresh_table
            }
        };
        let opts = ParallelOpts { threads: self.threads, prune: self.prune, chunk: 0 };
        let (counts_ordered, timing): (Vec<usize>, PlanTiming) = match self.strategy {
            Strategy::Uniform => {
                let counts = distribution::uniform_distribution(view.len(), n);
                (counts, PlanTiming::simple("uniform", start.elapsed().as_secs_f64()))
            }
            Strategy::ExactBasic => {
                let (sol, timing) = parallel::solve(Algo::Basic, table, &view, n, &opts)?;
                (sol.counts, timing)
            }
            Strategy::Exact => {
                let (sol, timing) = parallel::solve(Algo::Optimized, table, &view, n, &opts)?;
                (sol.counts, timing)
            }
            Strategy::Heuristic => {
                let counts = crate::heuristic::heuristic_distribution(&view, n)?.counts;
                (counts, PlanTiming::simple("heuristic", start.elapsed().as_secs_f64()))
            }
            Strategy::ClosedForm => {
                let counts = crate::closed_form::closed_form_distribution(&view, n)?.counts;
                (counts, PlanTiming::simple("closed-form", start.elapsed().as_secs_f64()))
            }
        };
        let predicted = distribution::timeline(&view, &counts_ordered);
        let predicted_makespan = predicted.makespan();

        // Map ordered counts back to platform indices and lay out blocks
        // contiguously in send (scatter) order.
        let p = self.platform.len();
        let mut counts = vec![0usize; p];
        let mut displs = vec![0usize; p];
        let mut offset = 0usize;
        for (pos, &idx) in order.iter().enumerate() {
            counts[idx] = counts_ordered[pos];
            displs[idx] = offset;
            offset += counts_ordered[pos];
        }
        debug_assert_eq!(offset, n);

        Ok(Plan { counts, displs, order, predicted, predicted_makespan, timing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("root", 0.0, 0.009288),
                Processor::linear("caseb", 1.00e-5, 0.004629),
                Processor::linear("merlin", 8.15e-5, 0.003976),
                Processor::linear("seven", 2.10e-5, 0.016156),
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn all_strategies_distribute_everything() {
        let n = 5000;
        for strategy in [
            Strategy::Uniform,
            Strategy::ExactBasic,
            Strategy::Exact,
            Strategy::Heuristic,
            Strategy::ClosedForm,
        ] {
            let plan = Planner::new(platform()).strategy(strategy).plan(n).unwrap();
            assert_eq!(plan.total_items(), n, "{strategy:?}");
            assert_eq!(*plan.order.last().unwrap(), 0, "{strategy:?}: root last");
        }
    }

    #[test]
    fn displs_are_contiguous_in_scatter_order() {
        let plan = Planner::new(platform())
            .strategy(Strategy::Heuristic)
            .plan(10_000)
            .unwrap();
        let mut offset = 0;
        for &idx in &plan.order {
            assert_eq!(plan.displs[idx], offset);
            offset += plan.counts[idx];
        }
        assert_eq!(offset, 10_000);
    }

    #[test]
    fn balanced_beats_uniform() {
        let n = 50_000;
        let uniform = Planner::new(platform()).strategy(Strategy::Uniform).plan(n).unwrap();
        let balanced = Planner::new(platform()).strategy(Strategy::Heuristic).plan(n).unwrap();
        assert!(
            balanced.predicted_makespan < uniform.predicted_makespan * 0.8,
            "balanced {} should clearly beat uniform {}",
            balanced.predicted_makespan,
            uniform.predicted_makespan
        );
    }

    #[test]
    fn exact_and_heuristic_agree_closely() {
        let n = 2_000;
        let exact = Planner::new(platform()).strategy(Strategy::Exact).plan(n).unwrap();
        let heur = Planner::new(platform()).strategy(Strategy::Heuristic).plan(n).unwrap();
        assert!(exact.predicted_makespan <= heur.predicted_makespan + 1e-9);
        let rel =
            (heur.predicted_makespan - exact.predicted_makespan) / exact.predicted_makespan;
        assert!(rel < 1e-2, "relative gap {rel}");
    }

    #[test]
    fn descending_no_worse_than_ascending() {
        let n = 20_000;
        let desc = Planner::new(platform())
            .strategy(Strategy::ClosedForm)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(n)
            .unwrap();
        let asc = Planner::new(platform())
            .strategy(Strategy::ClosedForm)
            .order_policy(OrderPolicy::AscendingBandwidth)
            .plan(n)
            .unwrap();
        assert!(desc.predicted_makespan <= asc.predicted_makespan + 1e-9);
    }

    #[test]
    fn counts_in_order_round_trips() {
        let plan = Planner::new(platform()).strategy(Strategy::Uniform).plan(103).unwrap();
        let in_order = plan.counts_in_order();
        for (pos, &idx) in plan.order.iter().enumerate() {
            assert_eq!(in_order[pos], plan.counts[idx]);
        }
    }

    #[test]
    fn predicted_trace_reflects_the_plan() {
        let plat = platform();
        let plan = Planner::new(plat.clone()).strategy(Strategy::Exact).plan(5000).unwrap();
        let trace = plan.predicted_trace(&plat, 8);
        trace.validate().unwrap();
        assert_eq!(trace.makespan(), plan.predicted_makespan);
        let summary = trace.summarize().unwrap();
        assert_eq!(summary.total_bytes, 5000 * 8);
        // Scatter order and names line up.
        for (pos, &idx) in plan.order.iter().enumerate() {
            assert_eq!(trace.names[pos], plat.procs()[idx].name);
        }
    }

    #[test]
    fn threads_and_pruning_do_not_change_the_plan() {
        let n = 3000;
        let base = Planner::new(platform()).strategy(Strategy::Exact).plan(n).unwrap();
        let table = Arc::new(CostTable::new());
        let tuned = Planner::new(platform())
            .strategy(Strategy::Exact)
            .threads(4)
            .prune(true)
            .cache(Arc::clone(&table))
            .plan(n)
            .unwrap();
        assert_eq!(tuned.counts, base.counts);
        assert_eq!(tuned.predicted_makespan.to_bits(), base.predicted_makespan.to_bits());
        assert_eq!(tuned.timing.strategy, "exact");
        assert_eq!(tuned.timing.threads, 4);
        assert!(tuned.timing.pruned, "linear costs seed a pruning bound");
        assert!(!table.is_empty(), "shared cache was populated");
    }

    #[test]
    fn every_plan_carries_timing() {
        for (strategy, name) in [
            (Strategy::Uniform, "uniform"),
            (Strategy::ExactBasic, "exact-basic"),
            (Strategy::Exact, "exact"),
            (Strategy::Heuristic, "heuristic"),
            (Strategy::ClosedForm, "closed-form"),
        ] {
            let plan = Planner::new(platform()).strategy(strategy).plan(500).unwrap();
            assert_eq!(plan.timing.strategy, name);
            assert!(plan.timing.total_secs >= 0.0);
            let trace = plan.predicted_trace(&platform(), 8);
            assert_eq!(trace.plan_timing.as_ref().unwrap().strategy, name);
        }
    }

    #[test]
    fn explicit_order() {
        let plan = Planner::new(platform())
            .strategy(Strategy::Exact)
            .plan_with_order(1000, vec![3, 2, 1, 0])
            .unwrap();
        assert_eq!(plan.order, vec![3, 2, 1, 0]);
        assert_eq!(plan.total_items(), 1000);
    }
}
