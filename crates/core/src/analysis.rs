//! Plan diagnostics: lower bounds, efficiency metrics, and participation
//! analysis (Theorem 2) — the numbers a user wants *before* trusting a
//! distribution on a real grid.

use crate::closed_form::{simultaneous_endings_hold, LinearSlopes};
use crate::cost::Processor;
use crate::distribution::timeline;
use crate::error::PlanError;

/// Lower bounds on any scatter+compute makespan for `n` items on the
/// given (scatter-ordered) processors.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Aggregate-throughput bound: even with free communication and a
    /// perfectly divisible load, `n` items cannot finish before
    /// `n / Σ_i (1/α_i)` with `α_i` the effective per-item compute cost
    /// (for non-linear costs, the secant slope at `n` items).
    pub work_bound: f64,
    /// Single-item bound: any schedule with `n >= 1` ends no earlier than
    /// the cheapest placement of one item,
    /// `min_i (Tcomm(i,1) + Tcomp(i,1))` — trivial but non-zero, and the
    /// binding bound on degenerate platforms.
    pub single_item_bound: f64,
    /// The larger of the two.
    pub best: f64,
}

/// Computes [`Bounds`] for `n` items.
pub fn lower_bounds(procs: &[&Processor], n: usize) -> Bounds {
    if n == 0 || procs.is_empty() {
        return Bounds { work_bound: 0.0, single_item_bound: 0.0, best: 0.0 };
    }
    // Effective per-item compute rate at scale n.
    let mut rate_sum = 0.0f64;
    for p in procs {
        let cost_n = p.comp.eval(n).max(0.0);
        if cost_n > 0.0 {
            rate_sum += n as f64 / cost_n;
        } else {
            // A free processor makes the work bound vacuous.
            rate_sum = f64::INFINITY;
        }
    }
    let work_bound = if rate_sum.is_infinite() { 0.0 } else { n as f64 / rate_sum };
    let single_item_bound = procs
        .iter()
        .map(|p| p.comm.eval(1) + p.comp.eval(1))
        .fold(f64::INFINITY, f64::min)
        .max(0.0);
    Bounds { work_bound, single_item_bound, best: work_bound.max(single_item_bound) }
}

/// A quality report for a concrete distribution.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Eq. (2) makespan of the distribution.
    pub makespan: f64,
    /// The best lower bound ([`lower_bounds`]).
    pub lower_bound: f64,
    /// `makespan / lower_bound` (1.0 = provably optimal; ∞ if the bound
    /// is vacuous).
    pub optimality_ratio: f64,
    /// Fraction of total processor-seconds spent computing (vs waiting).
    pub efficiency: f64,
    /// Processors that received nothing.
    pub idle_processors: Vec<usize>,
}

/// Analyzes a distribution (processors and counts in scatter order).
pub fn analyze(procs: &[&Processor], counts: &[usize]) -> PlanReport {
    assert_eq!(procs.len(), counts.len());
    let n: usize = counts.iter().sum();
    let tl = timeline(procs, counts);
    let makespan = tl.makespan();
    let bounds = lower_bounds(procs, n);
    let compute_area: f64 = tl
        .finish
        .iter()
        .zip(&tl.comm_end)
        .map(|(f, c)| f - c)
        .sum();
    let total_area = makespan * procs.len() as f64;
    PlanReport {
        makespan,
        lower_bound: bounds.best,
        optimality_ratio: if bounds.best > 0.0 { makespan / bounds.best } else { f64::INFINITY },
        efficiency: if total_area > 0.0 { compute_area / total_area } else { 0.0 },
        idle_processors: counts
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == 0).then_some(i))
            .collect(),
    }
}

/// Theorem-2 participation analysis for a linear platform (scatter order,
/// root last): which processors would the optimal rational solution use,
/// and does the simultaneous-endings regime hold?
#[derive(Debug, Clone)]
pub struct Participation {
    /// Theorem 2's condition holds for the full set (everyone works).
    pub all_participate: bool,
    /// Per-processor participation under Theorem-2 pruning.
    pub participates: Vec<bool>,
}

/// Runs the Theorem-2 analysis. Errors if the platform is not linear.
pub fn participation(procs: &[&Processor]) -> Result<Participation, PlanError> {
    let slopes = LinearSlopes::from_procs(procs)?;
    let all = simultaneous_endings_hold(&slopes);
    // Re-derive the pruning mask via the closed form on a nominal size.
    let sol = crate::closed_form::closed_form_from_slopes(&slopes, 1_000_000)?;
    Ok(Participation { all_participate: all, participates: sol.participants })
}

/// Renders a [`PlanReport`] as a short human-readable block.
pub fn render_report(report: &PlanReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("makespan:          {:.4} s\n", report.makespan));
    out.push_str(&format!("lower bound:       {:.4} s\n", report.lower_bound));
    out.push_str(&format!(
        "optimality ratio:  {:.4} (1.0 = provably optimal)\n",
        report.optimality_ratio
    ));
    out.push_str(&format!("compute efficiency: {:.1}%\n", report.efficiency * 100.0));
    if report.idle_processors.is_empty() {
        out.push_str("all processors participate\n");
    } else {
        out.push_str(&format!("idle processors:   {:?}\n", report.idle_processors));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp_optimized::optimal_distribution;
    use crate::heuristic::heuristic_distribution;

    fn procs() -> Vec<Processor> {
        vec![
            Processor::linear("a", 1e-4, 0.004),
            Processor::linear("b", 2e-4, 0.016),
            Processor::linear("root", 0.0, 0.009),
        ]
    }

    #[test]
    fn bounds_are_valid_lower_bounds() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        for n in [1usize, 100, 5_000] {
            let exact = optimal_distribution(&view, n).unwrap();
            let b = lower_bounds(&view, n);
            assert!(
                b.best <= exact.makespan + 1e-9,
                "n={n}: bound {} above optimum {}",
                b.best,
                exact.makespan
            );
            assert!(b.best >= 0.0);
        }
    }

    #[test]
    fn work_bound_is_tight_without_comm() {
        // Free comm, equal CPUs: the work bound equals the optimum.
        let ps = [Processor::linear("a", 0.0, 1.0),
            Processor::linear("root", 0.0, 1.0)];
        let view: Vec<&Processor> = ps.iter().collect();
        let b = lower_bounds(&view, 10);
        assert!((b.work_bound - 5.0).abs() < 1e-12);
        let exact = optimal_distribution(&view, 10).unwrap();
        assert!((exact.makespan - b.best).abs() < 1e-12);
    }

    #[test]
    fn analyze_balanced_plan_is_near_bound() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let h = heuristic_distribution(&view, 50_000).unwrap();
        let report = analyze(&view, &h.counts);
        assert!(report.optimality_ratio < 1.1, "{report:?}");
        assert!(report.efficiency > 0.9, "{report:?}");
        assert!(report.idle_processors.is_empty());
    }

    #[test]
    fn analyze_uniform_plan_shows_waste() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let uniform = crate::distribution::uniform_distribution(3, 50_000);
        let report = analyze(&view, &uniform);
        assert!(report.optimality_ratio > 1.3, "{report:?}");
        assert!(report.efficiency < 0.8, "{report:?}");
    }

    #[test]
    fn idle_processors_reported() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let report = analyze(&view, &[100, 0, 50]);
        assert_eq!(report.idle_processors, vec![1]);
    }

    #[test]
    fn zero_items_degenerate() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let b = lower_bounds(&view, 0);
        assert_eq!(b.best, 0.0);
        let report = analyze(&view, &[0, 0, 0]);
        assert_eq!(report.makespan, 0.0);
    }

    #[test]
    fn participation_mirrors_theorem2() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let part = participation(&view).unwrap();
        assert!(part.all_participate);
        assert!(part.participates.iter().all(|&x| x));

        let bad = [Processor::linear("hopeless", 100.0, 0.001),
            Processor::linear("root", 0.0, 1.0)];
        let bview: Vec<&Processor> = bad.iter().collect();
        let part = participation(&bview).unwrap();
        assert!(!part.all_participate);
        assert_eq!(part.participates, vec![false, true]);
    }

    #[test]
    fn report_renders() {
        let ps = procs();
        let view: Vec<&Processor> = ps.iter().collect();
        let report = analyze(&view, &[100, 0, 50]);
        let text = render_report(&report);
        assert!(text.contains("makespan"));
        assert!(text.contains("idle processors:   [1]"));
    }

    #[test]
    fn rejects_non_linear_participation() {
        let ps = [Processor::custom("c", |x| x as f64, |x| (x as f64).sqrt()),
            Processor::linear("root", 0.0, 1.0)];
        let view: Vec<&Processor> = ps.iter().collect();
        assert!(participation(&view).is_err());
    }
}
