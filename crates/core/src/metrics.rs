//! In-process metrics: counters, gauges, latency histograms and scoped
//! timers, with Prometheus-text and obs-JSON exporters.
//!
//! The paper's pipeline assumes the affine cost parameters are *measured*
//! (§5: the authors profile the seismic application and the network before
//! planning). This module is the measuring side of that loop for our own
//! runtime: hot paths (the parallel DP engine, the fault-recovery session,
//! the simulator, the minimpi runtime) increment metrics here, an exporter
//! turns a [`MetricsSnapshot`] into Prometheus text exposition format or
//! the obs JSON style, and [`crate::calibrate`] closes the loop by fitting
//! cost parameters back out of executed traces.
//!
//! ## Design
//!
//! * **Zero dependencies, thread-safe, cheap when idle.** Every metric is
//!   a handful of atomics; handles are `Arc`s handed out by a [`Registry`]
//!   so hot paths never touch the registry lock after setup.
//! * **Deterministic export.** The registry keeps metrics sorted by name,
//!   so two snapshots of the same run serialize identically.
//! * **Histograms are log₂-bucketed.** Latencies span nanoseconds to
//!   hours; powers of two give exact, culture-free bucket bounds that
//!   round-trip through JSON bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use gs_scatter::metrics::Registry;
//!
//! let reg = Registry::new();
//! let cells = reg.counter("dp_cells_evaluated_total", "DP cells evaluated");
//! cells.add(1024);
//! let lat = reg.histogram("mpi_send_seconds", "per-send wall-clock");
//! lat.observe(3.5e-4);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters[0].value, 1024);
//! assert!(snap.to_prometheus().contains("# TYPE mpi_send_seconds histogram"));
//! ```
//!
//! Library code instruments against [`Registry::global`], the process-wide
//! registry that `gs metrics` exports. Tests that assert on global metrics
//! must compare *deltas* (the test harness runs tests concurrently in one
//! process) or use a private `Registry::new()`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Smallest finite histogram bucket bound, as a power of two
/// (2⁻³⁰ ≈ 0.93 ns).
const MIN_EXP: i32 = -30;
/// Largest finite histogram bucket bound, as a power of two
/// (2²⁰ ≈ 12 days).
const MAX_EXP: i32 = 20;
/// Finite buckets: one per exponent in `MIN_EXP..=MAX_EXP`, plus the
/// overflow (+∞) bucket appended by [`Histogram`].
const FINITE_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// A monotonically increasing count (events, bytes, cache hits…).
///
/// ```
/// use gs_scatter::metrics::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, residual items…).
///
/// Stored as `f64` bits in an atomic; `add` uses a compare-and-swap loop,
/// so concurrent increments never lose updates.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `dv` (may be negative).
    pub fn add(&self, dv: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + dv).to_bits();
            match self.bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram of non-negative values (typically seconds).
///
/// Bucket `k` counts observations `v` with
/// `2^(MIN_EXP+k−1) < v ≤ 2^(MIN_EXP+k)`; values at or below the smallest
/// bound land in bucket 0, values above the largest in the overflow (+∞)
/// bucket. Negative and non-finite observations are ignored (they would
/// poison `sum`).
#[derive(Debug)]
pub struct Histogram {
    /// `FINITE_BUCKETS` finite buckets plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ of observed values, as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
    /// Most recent exemplar (e.g. the request id behind the last
    /// observation). Exposed by the JSON exporter only — the Prometheus
    /// text format 0.0.4 has no exemplar syntax.
    exemplar: Mutex<Option<String>>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..=FINITE_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Upper bound of finite bucket `k` (`2^(MIN_EXP+k)`).
    fn bound(k: usize) -> f64 {
        (2.0f64).powi(MIN_EXP + k as i32)
    }

    /// Records one observation. Negative and non-finite values are
    /// dropped.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let idx = if v <= Self::bound(0) {
            0
        } else if v > Self::bound(FINITE_BUCKETS - 1) {
            FINITE_BUCKETS // overflow
        } else {
            let e = v.log2().ceil() as i32;
            (e - MIN_EXP).clamp(0, FINITE_BUCKETS as i32 - 1) as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one observation and remembers `exemplar` (typically a
    /// request id) as the series' most recent exemplar. The exemplar
    /// travels in JSON snapshots only, never in the Prometheus text
    /// format.
    pub fn observe_with_exemplar(&self, v: f64, exemplar: &str) {
        self.observe(v);
        if v.is_finite() && v >= 0.0 {
            *self.exemplar.lock().expect("histogram exemplar poisoned") =
                Some(exemplar.to_string());
        }
    }

    /// The most recent exemplar recorded by
    /// [`Histogram::observe_with_exemplar`], if any.
    pub fn exemplar(&self) -> Option<String> {
        self.exemplar.lock().expect("histogram exemplar poisoned").clone()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Starts a scoped timer that `observe`s its elapsed wall-clock
    /// seconds into this histogram when dropped.
    ///
    /// ```
    /// use gs_scatter::metrics::Registry;
    /// let reg = Registry::new();
    /// let lat = reg.histogram("req_seconds", "request latency");
    /// {
    ///     let _timer = lat.start_timer(); // observes on scope exit
    /// }
    /// assert_eq!(lat.count(), 1);
    /// ```
    pub fn start_timer(self: &Arc<Histogram>) -> Timer {
        Timer { hist: Arc::clone(self), start: Instant::now() }
    }

    /// Freezes this histogram's current state.
    fn snapshot(&self) -> Vec<BucketCount> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(k, c)| BucketCount {
                le: if k == FINITE_BUCKETS { f64::INFINITY } else { Self::bound(k) },
                count: c.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// RAII timer: observes its lifetime, in seconds, into a [`Histogram`]
/// on drop. Create with [`Histogram::start_timer`].
#[derive(Debug)]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Timer {
    /// Stops the timer early and returns the observed seconds.
    pub fn stop(self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.hist.observe(secs);
        std::mem::forget(self); // avoid double-observe from Drop
        secs
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_secs_f64());
    }
}

/// A registered metric: the shared handle plus its help text.
#[derive(Debug, Clone)]
enum Metric {
    Counter { help: String, handle: Arc<Counter> },
    Gauge { help: String, handle: Arc<Gauge> },
    Histogram { help: String, handle: Arc<Histogram> },
}

/// One time series' identity: metric (family) name plus its sorted
/// label pairs. The `BTreeMap` order — by name, then labels — is what
/// keeps all series of one family adjacent in every export.
type SeriesKey = (String, Vec<(String, String)>);

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create: the first call registers
/// the metric, later calls (from any thread) return the same handle. A
/// name registered as one kind and requested as another panics — that is
/// a programming error, not a runtime condition. The `*_with` variants
/// register **labeled** series: same family name, distinct label sets,
/// one `# HELP`/`# TYPE` preamble per family in the Prometheus export
/// (`serve_latency_seconds{op="plan"}` vs `…{op="ping"}`).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<SeriesKey, Metric>>,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    (name.to_string(), labels)
}

impl Registry {
    /// A fresh, empty registry (use [`Registry::global`] for the
    /// process-wide one).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry that library instrumentation writes to
    /// and `gs metrics` exports.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or creates the (unlabeled) counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates the counter series `name{labels}`.
    pub fn counter_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        let entry = m.entry(series_key(name, labels)).or_insert_with(|| Metric::Counter {
            help: help.to_string(),
            handle: Arc::new(Counter::new()),
        });
        match entry {
            Metric::Counter { handle, .. } => Arc::clone(handle),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Gets or creates the (unlabeled) gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates the gauge series `name{labels}`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        let entry = m.entry(series_key(name, labels)).or_insert_with(|| Metric::Gauge {
            help: help.to_string(),
            handle: Arc::new(Gauge::new()),
        });
        match entry {
            Metric::Gauge { handle, .. } => Arc::clone(handle),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Gets or creates the (unlabeled) histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Gets or creates the histogram series `name{labels}`.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        let entry = m.entry(series_key(name, labels)).or_insert_with(|| Metric::Histogram {
            help: help.to_string(),
            handle: Arc::new(Histogram::new()),
        });
        match entry {
            Metric::Histogram { handle, .. } => Arc::clone(handle),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Freezes the current state of every registered series, sorted by
    /// name then label set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for ((name, labels), metric) in m.iter() {
            match metric {
                Metric::Counter { help, handle } => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    labels: labels.clone(),
                    value: handle.get(),
                }),
                Metric::Gauge { help, handle } => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    labels: labels.clone(),
                    value: handle.get(),
                }),
                Metric::Histogram { help, handle } => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    labels: labels.clone(),
                    count: handle.count(),
                    sum: handle.sum(),
                    buckets: handle.snapshot(),
                    exemplar: handle.exemplar(),
                }),
            }
        }
        snap
    }
}

/// One non-empty histogram bucket: observations `≤ le` that exceeded the
/// previous bound. `le` is `2^k` (or +∞ for the overflow bucket), so it
/// serializes exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: f64,
    /// Observations in this bucket (non-cumulative).
    pub count: u64,
}

/// Frozen state of one counter series.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric (family) name (Prometheus-safe: `[a-z0-9_]`).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Label pairs identifying this series within the family, sorted by
    /// key; empty for unlabeled metrics.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: u64,
}

/// Frozen state of one gauge series.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric (family) name.
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Label pairs, sorted by key; empty for unlabeled metrics.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: f64,
}

/// Frozen state of one histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric (family) name.
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Label pairs, sorted by key; empty for unlabeled metrics.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
    /// Most recent exemplar (see [`Histogram::observe_with_exemplar`]).
    /// JSON-only: the text exposition never carries it.
    pub exemplar: Option<String>,
}

/// Escapes a HELP text for the Prometheus text exposition format 0.0.4:
/// `\` becomes `\\` and a line feed becomes `\n` (those are the only two
/// escapes the spec defines for help lines).
pub fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value for the Prometheus text exposition format
/// 0.0.4: `\` becomes `\\`, `"` becomes `\"`, and a line feed becomes
/// `\n`.
pub fn escape_label_value(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders sorted label pairs as `{k="v",…}` (values escaped), plus any
/// `extra` pre-rendered pairs (the histogram `le` bound). Empty input →
/// empty string.
fn render_labels(labels: &[(String, String)], extra: Option<&str>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(e) = extra {
        parts.push(e.to_string());
    }
    format!("{{{}}}", parts.join(","))
}

impl HistogramSnapshot {
    /// Estimated quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th observation (0 when empty). An upper
    /// estimate, tight to one log₂ bucket.
    ///
    /// ```
    /// use gs_scatter::metrics::Registry;
    /// let reg = Registry::new();
    /// let lat = reg.histogram("lat_seconds", "latency");
    /// for _ in 0..99 { lat.observe(1e-4); }
    /// lat.observe(2.0); // one slow outlier
    /// let snap = &reg.snapshot().histograms[0];
    /// assert!(snap.quantile(0.50) < 1e-3); // p50 stays in the fast bucket
    /// assert!(snap.quantile(1.00) >= 2.0); // max covers the outlier
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= target {
                return b.le;
            }
        }
        self.buckets.last().map_or(0.0, |b| b.le)
    }
}

/// Frozen state of a whole [`Registry`], ready for export. Attachable to
/// an obs [`crate::obs::Trace`] as its optional `metrics` block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// 0.0.4: one `# HELP`/`# TYPE` preamble per metric family (emitted
    /// at its first series; the snapshot keeps same-name series
    /// adjacent), label values and HELP text escaped per the spec,
    /// cumulative `le` buckets, `_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        fn fmt_f64(v: f64) -> String {
            if v == f64::INFINITY {
                "+Inf".to_string()
            } else {
                format!("{v}")
            }
        }
        fn preamble(out: &mut String, last: &mut String, name: &str, help: &str, kind: &str) {
            if last != name {
                let _ = writeln!(out, "# HELP {} {}", name, escape_help(help));
                let _ = writeln!(out, "# TYPE {name} {kind}");
                *last = name.to_string();
            }
        }
        let mut out = String::new();
        let mut last = String::new();
        for c in &self.counters {
            preamble(&mut out, &mut last, &c.name, &c.help, "counter");
            let _ = writeln!(out, "{}{} {}", c.name, render_labels(&c.labels, None), c.value);
        }
        for g in &self.gauges {
            preamble(&mut out, &mut last, &g.name, &g.help, "gauge");
            let _ =
                writeln!(out, "{}{} {}", g.name, render_labels(&g.labels, None), fmt_f64(g.value));
        }
        for h in &self.histograms {
            preamble(&mut out, &mut last, &h.name, &h.help, "histogram");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                let le = format!("le=\"{}\"", fmt_f64(b.le));
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    h.name,
                    render_labels(&h.labels, Some(&le))
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                render_labels(&h.labels, Some("le=\"+Inf\"")),
                h.count
            );
            let labels = render_labels(&h.labels, None);
            let _ = writeln!(out, "{}_sum{labels} {}", h.name, fmt_f64(h.sum));
            let _ = writeln!(out, "{}_count{labels} {}", h.name, h.count);
        }
        out
    }

    /// Renders a short human-readable digest: one line per series, with
    /// p50/p95/p99 for histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let series = format!("{}{}", c.name, render_labels(&c.labels, None));
            let _ = writeln!(out, "{series:<32} {}", c.value);
        }
        for g in &self.gauges {
            let series = format!("{}{}", g.name, render_labels(&g.labels, None));
            let _ = writeln!(out, "{series:<32} {}", g.value);
        }
        for h in &self.histograms {
            let series = format!("{}{}", h.name, render_labels(&h.labels, None));
            let _ = writeln!(
                out,
                "{series:<32} count={} sum={:.6}s p50≤{:.3e} p95≤{:.3e} p99≤{:.3e}",
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let reg = Registry::new();
        let c = reg.counter("x_total", "x");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Same name → same handle.
        assert_eq!(reg.counter("x_total", "x").get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10.0);
        g.add(-2.5);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(1e-4); // fast
        }
        for _ in 0..10 {
            h.observe(1.0); // slow tail
        }
        h.observe(-1.0); // ignored
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (90.0 * 1e-4 + 10.0)).abs() < 1e-9);
        let snap = HistogramSnapshot {
            name: "t".into(),
            help: String::new(),
            labels: Vec::new(),
            count: h.count(),
            sum: h.sum(),
            buckets: h.snapshot(),
            exemplar: None,
        };
        // p50 lands in the fast bucket, p99 in the slow tail.
        assert!(snap.quantile(0.50) < 1e-3, "{}", snap.quantile(0.50));
        assert!(snap.quantile(0.99) >= 1.0, "{}", snap.quantile(0.99));
        // Quantile bound actually covers the observation.
        assert!(snap.quantile(0.50) >= 1e-4);
    }

    #[test]
    fn histogram_extremes_land_in_edge_buckets() {
        let h = Histogram::new();
        h.observe(0.0);
        h.observe(1e300); // beyond the largest finite bucket
        let buckets = h.snapshot();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].le, Histogram::bound(0));
        assert_eq!(buckets[1].le, f64::INFINITY);
    }

    #[test]
    fn timer_observes_on_drop_and_stop() {
        let reg = Registry::new();
        let h = reg.histogram("t_seconds", "t");
        {
            let _t = h.start_timer();
        }
        let t = h.start_timer();
        let secs = t.stop();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("zeta_total", "z").inc();
        reg.counter("alpha_total", "a").add(5);
        reg.gauge("mid_gauge", "m").set(1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "alpha_total");
        assert_eq!(snap.counters[1].name, "zeta_total");
        assert_eq!(snap.gauges[0].value, 1.5);
        assert_eq!(reg.snapshot(), snap);
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let reg = Registry::new();
        reg.counter("reqs_total", "requests").add(3);
        reg.gauge("depth", "queue depth").set(2.0);
        let h = reg.histogram("lat_seconds", "latency");
        h.observe(0.25);
        h.observe(300.0);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total 3"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        // Buckets are cumulative and end with an explicit +Inf.
        assert!(text.contains("lat_seconds_bucket{le=\"0.25\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_sum 300.25"));
        assert!(text.contains("lat_seconds_count 2"));
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("n_total", "n");
        let g = reg.gauge("g", "g");
        let h = reg.histogram("h_seconds", "h");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (c, g, h) = (Arc::clone(&c), Arc::clone(&g), Arc::clone(&h));
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        g.add(1.0);
                        h.observe(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(g.get(), 4000.0);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 2000.0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("thing", "thing");
        reg.counter("thing", "thing");
    }

    #[test]
    fn labeled_series_share_one_family_preamble() {
        let reg = Registry::new();
        reg.counter_with("ops_total", "ops by kind", &[("op", "plan")]).add(2);
        reg.counter_with("ops_total", "ops by kind", &[("op", "ping")]).add(5);
        let h = reg.histogram_with("lat_seconds", "latency by op", &[("op", "plan")]);
        h.observe(0.25);
        reg.histogram_with("lat_seconds", "latency by op", &[("op", "shed")]).observe(0.5);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# HELP ops_total").count(), 1);
        assert_eq!(text.matches("# TYPE ops_total").count(), 1);
        assert!(text.contains("ops_total{op=\"ping\"} 5"));
        assert!(text.contains("ops_total{op=\"plan\"} 2"));
        assert_eq!(text.matches("# TYPE lat_seconds histogram").count(), 1);
        assert!(text.contains("lat_seconds_bucket{op=\"plan\",le=\"0.25\"} 1"));
        assert!(text.contains("lat_seconds_bucket{op=\"shed\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_seconds_sum{op=\"plan\"} 0.25"));
        assert!(text.contains("lat_seconds_count{op=\"shed\"} 1"));
    }

    #[test]
    fn labeled_and_unlabeled_series_are_distinct() {
        let reg = Registry::new();
        reg.counter("n_total", "n").add(1);
        reg.counter_with("n_total", "n", &[("k", "v")]).add(10);
        let snap = reg.snapshot();
        let values: Vec<u64> = snap.counters.iter().map(|c| c.value).collect();
        assert_eq!(values, vec![1, 10]);
    }

    #[test]
    fn exemplar_is_kept_in_snapshot_but_not_in_text() {
        let reg = Registry::new();
        let h = reg.histogram("x_seconds", "x");
        h.observe_with_exemplar(0.1, "req-42");
        h.observe_with_exemplar(f64::NAN, "req-ignored"); // dropped observation
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].exemplar.as_deref(), Some("req-42"));
        assert!(!snap.to_prometheus().contains("req-42"));
    }

    #[test]
    fn escaping_follows_the_text_format_spec() {
        assert_eq!(escape_help(r"a\b" ), r"a\\b");
        assert_eq!(escape_help("two\nlines"), "two\\nlines");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("a\\b\nc"), "a\\\\b\\nc");
    }

    /// Satellite conformance check: every line a fully-populated registry
    /// (all three kinds, labeled and unlabeled series, hostile help text
    /// and label values) exports must lex as Prometheus text format
    /// 0.0.4.
    #[test]
    fn exposition_conformance_lint() {
        fn valid_name(s: &str) -> bool {
            !s.is_empty()
                && s.chars().next().unwrap().is_ascii_alphabetic()
                && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        // One escaped label set: `k="v"` pairs, comma-separated; the
        // value may contain any escaped char but no raw `"` or `\`.
        fn check_labels(s: &str) {
            for pair in split_pairs(s) {
                let (k, v) = pair.split_once('=').expect("label pair has =");
                assert!(valid_name(k), "bad label name {k}");
                assert!(v.starts_with('"') && v.ends_with('"') && v.len() >= 2);
                let inner = &v[1..v.len() - 1];
                let mut chars = inner.chars();
                while let Some(c) = chars.next() {
                    assert!(c != '"', "unescaped quote in {v}");
                    if c == '\\' {
                        let next = chars.next().expect("dangling backslash");
                        assert!(matches!(next, '\\' | '"' | 'n'), "bad escape \\{next}");
                    }
                }
            }
        }
        // Splits `a="b",c="d"` on commas outside quotes.
        fn split_pairs(s: &str) -> Vec<String> {
            let mut out = Vec::new();
            let mut cur = String::new();
            let mut in_quotes = false;
            let mut escaped = false;
            for c in s.chars() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_quotes = !in_quotes;
                } else if c == ',' && !in_quotes {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                cur.push(c);
            }
            assert!(!in_quotes, "unterminated quote in {s}");
            out.push(cur);
            out
        }

        let reg = Registry::new();
        reg.counter("plain_total", "an ordinary counter").add(7);
        reg.counter_with(
            "labeled_total",
            "help with a \\ backslash\nand a second line",
            &[("path", "C:\\temp\n\"quoted\"")],
        )
        .inc();
        reg.gauge_with("depth", "gauge \"help\"", &[("queue", "a\nb")]).set(-2.5);
        let h = reg.histogram_with("lat_seconds", "latency\\by op", &[("op", "pl\"an")]);
        h.observe(0.1);
        h.observe(1e9); // overflow bucket
        reg.histogram("plain_seconds", "unlabeled histogram").observe(0.3);

        let text = reg.snapshot().to_prometheus();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has name and text");
                assert!(valid_name(name), "bad metric name {name}");
                // Help text must not contain a raw newline (it is one
                // line by construction) or a dangling backslash.
                let mut chars = help.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        let next = chars.next().expect("dangling backslash in HELP");
                        assert!(matches!(next, '\\' | 'n'), "bad HELP escape \\{next}");
                    }
                }
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
                assert!(valid_name(name), "bad metric name {name}");
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{kind}");
            } else {
                // Sample line: name[{labels}] value
                let (series, value) =
                    line.rsplit_once(' ').expect("sample line has name and value");
                assert!(
                    value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf",
                    "unparseable value {value}"
                );
                match series.split_once('{') {
                    None => assert!(valid_name(series), "bad series name {series}"),
                    Some((name, labels)) => {
                        assert!(valid_name(name), "bad series name {name}");
                        let labels =
                            labels.strip_suffix('}').expect("label block closed");
                        check_labels(labels);
                    }
                }
            }
        }
    }

    #[test]
    fn render_mentions_every_metric() {
        let reg = Registry::new();
        reg.counter("a_total", "a").inc();
        reg.gauge("b", "b").set(2.0);
        reg.histogram("c_seconds", "c").observe(1.0);
        let text = reg.snapshot().render();
        for name in ["a_total", "b", "c_seconds"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
