//! The platform-file format: one processor per line.
//!
//! ```text
//! # comments and blank lines are ignored
//! proc dinadan   beta=0        alpha=0.009288
//! proc pellinore beta=1.12e-5  alpha=0.009365
//! proc merlin    beta=8.15e-5  alpha=0.003976  comm_intercept=0.02
//! root dinadan
//! ```
//!
//! * `beta` — link cost from the root, seconds per item (required);
//! * `alpha` — compute cost, seconds per item (required);
//! * `comm_intercept` / `comp_intercept` — optional affine intercepts;
//! * `root <name>` — designates the root (default: the first processor).
//!
//! Duplicate names are allowed (Table 1 lists `leda` eight times); `root`
//! refers to the first occurrence.
//!
//! This format is the lingua franca of every user-facing surface: the
//! `gs` CLI reads and writes it, `gs calibrate` emits it, and the
//! `gs-serve` planning daemon carries it verbatim inside the
//! `platform` field of `plan`/`simulate` requests — which is why
//! parsing lives here in the core crate rather than in any one frontend.

use crate::cost::{CostFn, Platform, Processor};

/// A parse failure, with a user-facing message (line numbers included
/// where applicable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformFileError(pub String);

impl std::fmt::Display for PlatformFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PlatformFileError {}

/// Parses a platform file's contents.
///
/// ```
/// use gs_scatter::platform_file::parse_platform;
/// let p = parse_platform("proc root beta=0 alpha=0.01\nproc w1 beta=1e-4 alpha=0.02\n").unwrap();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.procs()[1].name, "w1");
/// ```
pub fn parse_platform(text: &str) -> Result<Platform, PlatformFileError> {
    let mut procs: Vec<Processor> = Vec::new();
    let mut root_name: Option<String> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line has a first word");
        match keyword {
            "proc" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "proc needs a name"))?
                    .to_string();
                let mut beta: Option<f64> = None;
                let mut alpha: Option<f64> = None;
                let mut comm_icpt = 0.0f64;
                let mut comp_icpt = 0.0f64;
                for kv in words {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(lineno, &format!("expected key=value, got `{kv}`")))?;
                    let v: f64 = v
                        .parse()
                        .map_err(|_| err(lineno, &format!("`{v}` is not a number")))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(err(lineno, &format!("{k} must be a non-negative number")));
                    }
                    match k {
                        "beta" => beta = Some(v),
                        "alpha" => alpha = Some(v),
                        "comm_intercept" => comm_icpt = v,
                        "comp_intercept" => comp_icpt = v,
                        other => return Err(err(lineno, &format!("unknown key `{other}`"))),
                    }
                }
                let beta = beta.ok_or_else(|| err(lineno, "proc needs beta=<s/item>"))?;
                let alpha = alpha.ok_or_else(|| err(lineno, "proc needs alpha=<s/item>"))?;
                let comm = mk_cost(comm_icpt, beta);
                let comp = mk_cost(comp_icpt, alpha);
                procs.push(Processor { name, comm, comp });
            }
            "root" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "root needs a processor name"))?;
                if words.next().is_some() {
                    return Err(err(lineno, "root takes exactly one name"));
                }
                root_name = Some(name.to_string());
            }
            other => return Err(err(lineno, &format!("unknown directive `{other}`"))),
        }
    }

    if procs.is_empty() {
        return Err(PlatformFileError("platform file defines no processors".into()));
    }
    let root = match root_name {
        None => 0,
        Some(name) => procs
            .iter()
            .position(|p| p.name == name)
            .ok_or_else(|| {
                PlatformFileError(format!("root `{name}` is not a declared processor"))
            })?,
    };
    Platform::new(procs, root).map_err(|e| PlatformFileError(e.to_string()))
}

fn mk_cost(intercept: f64, slope: f64) -> CostFn {
    if intercept == 0.0 {
        if slope == 0.0 {
            CostFn::Zero
        } else {
            CostFn::Linear { slope }
        }
    } else {
        CostFn::Affine { intercept, slope }
    }
}

fn err(lineno: usize, msg: &str) -> PlatformFileError {
    PlatformFileError(format!("line {}: {msg}", lineno + 1))
}

/// Renders a platform back into the file format (used by `gs table1` and
/// `gs calibrate`; only linear/affine cost functions render, which is all
/// the format can express).
pub fn render_platform(platform: &Platform) -> String {
    let mut out = String::from("# grid-scatter platform file (beta/alpha in seconds per item)\n");
    for p in platform.procs() {
        let (ci, b) = p.comm.affine_params().unwrap_or((0.0, 0.0));
        let (pi, a) = p.comp.affine_params().unwrap_or((0.0, 0.0));
        out.push_str(&format!("proc {:<12} beta={b:<12} alpha={a}", p.name));
        if ci != 0.0 {
            out.push_str(&format!(" comm_intercept={ci}"));
        }
        if pi != 0.0 {
            out.push_str(&format!(" comp_intercept={pi}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("root {}\n", platform.procs()[platform.root()].name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\n# testbed\nproc dinadan beta=0 alpha=0.009288\nproc pellinore beta=1.12e-5 alpha=0.009365 # inline comment\nroot dinadan\n";

    #[test]
    fn parses_sample() {
        let p = parse_platform(SAMPLE).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.root(), 0);
        assert_eq!(p.procs()[1].name, "pellinore");
        assert!((p.procs()[1].comm.eval(100_000) - 1.12).abs() < 1e-9);
    }

    #[test]
    fn default_root_is_first() {
        let p = parse_platform("proc a beta=1 alpha=1\nproc b beta=2 alpha=2\n").unwrap();
        assert_eq!(p.root(), 0);
    }

    #[test]
    fn affine_intercepts() {
        let p = parse_platform("proc a beta=0.5 alpha=1 comm_intercept=2 comp_intercept=3\n")
            .unwrap();
        assert_eq!(p.procs()[0].comm.eval(0), 2.0);
        assert_eq!(p.procs()[0].comp.eval(2), 5.0);
    }

    #[test]
    fn duplicate_names_root_binds_first() {
        let p = parse_platform(
            "proc leda beta=1 alpha=1\nproc leda beta=2 alpha=2\nroot leda\n",
        )
        .unwrap();
        assert_eq!(p.root(), 0);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = parse_platform("proc a beta=1 alpha=1\nbogus x\n").unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
        let e = parse_platform("proc a beta=x alpha=1\n").unwrap_err();
        assert!(e.0.contains("not a number"), "{e}");
        let e = parse_platform("proc a alpha=1\n").unwrap_err();
        assert!(e.0.contains("beta"), "{e}");
        let e = parse_platform("proc a beta=-1 alpha=1\n").unwrap_err();
        assert!(e.0.contains("non-negative"), "{e}");
        let e = parse_platform("").unwrap_err();
        assert!(e.0.contains("no processors"), "{e}");
        let e = parse_platform("proc a beta=1 alpha=1\nroot zz\n").unwrap_err();
        assert!(e.0.contains("not a declared processor"), "{e}");
    }

    #[test]
    fn round_trip_through_render() {
        let p1 = parse_platform(SAMPLE).unwrap();
        let text = render_platform(&p1);
        let p2 = parse_platform(&text).unwrap();
        assert_eq!(p1.len(), p2.len());
        assert_eq!(p1.root(), p2.root());
        for (a, b) in p1.procs().iter().zip(p2.procs()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.comm.eval(1000), b.comm.eval(1000));
            assert_eq!(a.comp.eval(1000), b.comp.eval(1000));
        }
    }

    #[test]
    fn table1_round_trips() {
        let t1 = crate::paper::table1_platform();
        let p = parse_platform(&render_platform(&t1)).unwrap();
        assert_eq!(p.len(), 16);
        assert_eq!(p.root(), 0);
    }
}
