//! The closed-form rational solution for linear cost functions
//! (RR-4770 §4, Theorems 1 and 2), computed in exact rational arithmetic.
//!
//! With `Tcomm(i, x) = β_i·x` and `Tcomp(i, x) = α_i·x`, Theorem 2 shows an
//! optimal rational solution exists in which every *participating*
//! processor ends at the same date `t`, and `P_i` participates iff
//! `β_i <= D(P_{i+1}..P_p)`, where (Theorem 1)
//!
//! ```text
//! D(P_1..P_p) = 1 / Σ_i [ 1/(α_i+β_i) · Π_{j<i} α_j/(α_j+β_j) ]
//! t           = n · D(participants)
//! n_i         = t · 1/(α_i+β_i) · Π_{j<i} α_j/(α_j+β_j)      (Eq. 8)
//! ```
//!
//! `1/D` obeys the suffix recurrence
//! `1/D(P_i..) = 1/(α_i+β_i) + α_i/(α_i+β_i) · 1/D(P_{i+1}..)`,
//! which is what the implementation folds from the last processor (the
//! root) backwards, skipping processors whose `β` exceeds the `D` of the
//! participating suffix (Theorem 2's pruning).

use gs_numeric::Rational;

use crate::cost::Processor;
use crate::error::PlanError;
use crate::rounding::round_shares;

/// Exact per-processor `(β, α)` = (comm, comp) slopes of a linear platform,
/// in scatter order.
#[derive(Debug, Clone)]
pub struct LinearSlopes {
    /// Communication slope `β_i` (seconds per item root → `P_i`).
    pub beta: Vec<Rational>,
    /// Computation slope `α_i` (seconds per item on `P_i`).
    pub alpha: Vec<Rational>,
}

impl LinearSlopes {
    /// Extracts exact slopes from processors with linear cost functions.
    pub fn from_procs(procs: &[&Processor]) -> Result<Self, PlanError> {
        let mut beta = Vec::with_capacity(procs.len());
        let mut alpha = Vec::with_capacity(procs.len());
        for (i, p) in procs.iter().enumerate() {
            let b = p.comm.linear_slope().ok_or(PlanError::NotLinear { proc: i })?;
            let a = p.comp.linear_slope().ok_or(PlanError::NotLinear { proc: i })?;
            if b < 0.0 || a < 0.0 || !b.is_finite() || !a.is_finite() {
                return Err(PlanError::InvalidCost { proc: i, items: 1, value: a.min(b) });
            }
            beta.push(Rational::from_f64(b).expect("finite"));
            alpha.push(Rational::from_f64(a).expect("finite"));
        }
        Ok(LinearSlopes { beta, alpha })
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.beta.len()
    }

    /// `true` iff there are no processors.
    pub fn is_empty(&self) -> bool {
        self.beta.is_empty()
    }
}

/// `D(P_1..P_p)` of Theorem 1 over **all** given processors (no pruning):
/// the per-item duration of the simultaneous-ending schedule.
///
/// # Panics
/// Panics if some `α_i + β_i` is zero (degenerate processor).
pub fn d_value(slopes: &LinearSlopes) -> Rational {
    let mut inv_d = Rational::zero();
    for i in (0..slopes.len()).rev() {
        let ab = &slopes.alpha[i] + &slopes.beta[i];
        assert!(ab.is_positive(), "processor {i} has alpha + beta = 0");
        let inv_ab = ab.recip();
        inv_d = &inv_ab + &(&(&slopes.alpha[i] * &inv_ab) * &inv_d);
    }
    inv_d.recip()
}

/// Theorem 2's condition: does every processor receive a non-empty share in
/// the optimal simultaneous-ending solution, i.e. is
/// `β_i <= D(P_{i+1}..P_p)` for all `i < p`?
pub fn simultaneous_endings_hold(slopes: &LinearSlopes) -> bool {
    let p = slopes.len();
    let mut inv_d = Rational::zero(); // 1/D of the (full) suffix after i
    for i in (0..p).rev() {
        if i < p - 1 {
            // inv_d currently describes P_{i+1}..P_p.
            let cond = &slopes.beta[i] * &inv_d <= Rational::one();
            if !cond {
                return false;
            }
        }
        let ab = &slopes.alpha[i] + &slopes.beta[i];
        assert!(ab.is_positive(), "processor {i} has alpha + beta = 0");
        let inv_ab = ab.recip();
        inv_d = &inv_ab + &(&(&slopes.alpha[i] * &inv_ab) * &inv_d);
    }
    true
}

/// Rational solution for a linear platform.
#[derive(Debug, Clone)]
pub struct ClosedFormSolution {
    /// Exact rational shares, in scatter order (`0` for pruned processors).
    pub shares: Vec<Rational>,
    /// Which processors participate (Theorem 2 pruning).
    pub participants: Vec<bool>,
    /// The exact common finish date `t = n·D` of the participants.
    pub duration: Rational,
    /// Integer counts after the §3.3 rounding scheme, in scatter order.
    pub counts: Vec<usize>,
}

/// Solves the scatter problem in rationals for linear costs, prunes
/// non-profitable processors (Theorem 2), and rounds to integers (§3.3).
///
/// `procs` must be in scatter order (root last) with linear cost functions.
pub fn closed_form_distribution(
    procs: &[&Processor],
    n: usize,
) -> Result<ClosedFormSolution, PlanError> {
    let slopes = LinearSlopes::from_procs(procs)?;
    closed_form_from_slopes(&slopes, n)
}

/// [`closed_form_distribution`] on pre-extracted exact slopes.
pub fn closed_form_from_slopes(
    slopes: &LinearSlopes,
    n: usize,
) -> Result<ClosedFormSolution, PlanError> {
    let p = slopes.len();
    if p == 0 {
        return Err(PlanError::InvalidPlatform("no processors".into()));
    }

    // Degenerate free processor: everything goes to the first α+β = 0
    // processor reachable at zero cumulative cost (all earlier shares are 0
    // so their comm contributes nothing), for a makespan of exactly 0.
    if let Some(i) = (0..p).find(|&i| (&slopes.alpha[i] + &slopes.beta[i]).is_zero()) {
        let mut shares = vec![Rational::zero(); p];
        shares[i] = Rational::from(n);
        let mut participants = vec![false; p];
        participants[i] = true;
        let mut counts = vec![0usize; p];
        counts[i] = n;
        return Ok(ClosedFormSolution {
            shares,
            participants,
            duration: Rational::zero(),
            counts,
        });
    }

    // Backward sweep with Theorem 2 pruning over the *participating* suffix.
    let mut participants = vec![true; p];
    let mut inv_d = Rational::zero();
    for i in (0..p).rev() {
        let is_last = inv_d.is_zero();
        if !is_last {
            // β_i > D(participating suffix)  <=>  β_i · (1/D) > 1.
            if &slopes.beta[i] * &inv_d > Rational::one() {
                participants[i] = false;
                continue;
            }
        }
        let inv_ab = (&slopes.alpha[i] + &slopes.beta[i]).recip();
        inv_d = &inv_ab + &(&(&slopes.alpha[i] * &inv_ab) * &inv_d);
    }

    // Theorem 1: t = n·D, n_i = t/(α_i+β_i) · Π_{j<i} α_j/(α_j+β_j) over
    // participants.
    let t = &Rational::from(n) / &inv_d; // n · D
    let mut shares = vec![Rational::zero(); p];
    let mut prefix = Rational::one();
    for i in 0..p {
        if !participants[i] {
            continue;
        }
        let inv_ab = (&slopes.alpha[i] + &slopes.beta[i]).recip();
        shares[i] = &(&t * &inv_ab) * &prefix;
        prefix = &prefix * &(&slopes.alpha[i] * &inv_ab);
    }
    debug_assert_eq!(
        shares.iter().fold(Rational::zero(), |a, s| a + s),
        Rational::from(n),
        "Theorem 1 shares must sum to n exactly"
    );

    let counts = round_shares(&shares, n);
    Ok(ClosedFormSolution { shares, participants, duration: t, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;
    use crate::distribution::makespan;

    fn lin(name: &str, beta: f64, alpha: f64) -> Processor {
        Processor::linear(name, beta, alpha)
    }

    fn view(ps: &[Processor]) -> Vec<&Processor> {
        ps.iter().collect()
    }

    #[test]
    fn two_identical_procs_free_comm() {
        // β = 0, α = 1 each: D = 1/(1 + 1) = 1/2, equal halves.
        let ps = vec![lin("a", 0.0, 1.0), lin("root", 0.0, 1.0)];
        let sol = closed_form_distribution(&view(&ps), 10).unwrap();
        assert_eq!(sol.shares[0], Rational::from(5));
        assert_eq!(sol.shares[1], Rational::from(5));
        assert_eq!(sol.duration, Rational::from(5));
        assert_eq!(sol.counts, vec![5, 5]);
    }

    #[test]
    fn hand_checked_three_procs() {
        // P1: β=1, α=1; P2 (root): β=0, α=1.
        // 1/D = 1/2 + (1/2)·(1/1) = 1  =>  D = 1, t = n.
        // n1 = t/2, n2 = t/2·(1/2)·... recompute: n1 = t·1/(α1+β1) = t/2.
        // prefix = α1/(α1+β1) = 1/2; n2 = t·1/(1+0)·1/2 = t/2. Sum = t = n. OK.
        let ps = vec![lin("p1", 1.0, 1.0), lin("root", 0.0, 1.0)];
        let sol = closed_form_distribution(&view(&ps), 8).unwrap();
        assert_eq!(sol.duration, Rational::from(8));
        assert_eq!(sol.shares[0], Rational::from(4));
        assert_eq!(sol.shares[1], Rational::from(4));
        // Check simultaneous endings with Eq. (1):
        let v = view(&ps);
        let ft = crate::distribution::finish_times(&v, &sol.counts);
        assert!((ft[0] - ft[1]).abs() < 1e-9);
        assert!((ft[0] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn shares_end_simultaneously_by_construction() {
        let ps = vec![
            lin("a", 0.2, 2.0),
            lin("b", 0.5, 1.0),
            lin("c", 0.1, 3.0),
            lin("root", 0.0, 1.5),
        ];
        let v = view(&ps);
        let n = 1000;
        let sol = closed_form_distribution(&v, n).unwrap();
        assert!(sol.participants.iter().all(|&x| x));
        // Evaluate Eq. (1) with exact shares: every T_i equals t.
        let slopes = LinearSlopes::from_procs(&v).unwrap();
        let mut comm_acc = Rational::zero();
        for i in 0..v.len() {
            comm_acc += &(&slopes.beta[i] * &sol.shares[i]);
            let ti = &comm_acc + &(&slopes.alpha[i] * &sol.shares[i]);
            assert_eq!(ti, sol.duration, "processor {i} ends at t");
        }
    }

    #[test]
    fn pruning_drops_prohibitive_link() {
        // P1's β is enormous: sending it anything delays everyone beyond
        // what the suffix alone needs (Theorem 2: β1 > D(P2..)).
        let ps = vec![lin("hopeless", 100.0, 0.001), lin("root", 0.0, 1.0)];
        let sol = closed_form_distribution(&view(&ps), 10).unwrap();
        assert!(!sol.participants[0]);
        assert_eq!(sol.shares[0], Rational::zero());
        assert_eq!(sol.counts, vec![0, 10]);
        assert_eq!(sol.duration, Rational::from(10));
    }

    #[test]
    fn d_value_two_procs() {
        // α = [1, 1], β = [1, 0]: 1/D = 1/2 + 1/2 · 1 = 1.
        let slopes = LinearSlopes {
            beta: vec![Rational::one(), Rational::zero()],
            alpha: vec![Rational::one(), Rational::one()],
        };
        assert_eq!(d_value(&slopes), Rational::one());
    }

    #[test]
    fn simultaneous_endings_condition() {
        // Fine platform: betas small.
        let ok = LinearSlopes {
            beta: vec![Rational::from_ratio(1, 10), Rational::zero()],
            alpha: vec![Rational::one(), Rational::one()],
        };
        assert!(simultaneous_endings_hold(&ok));
        // β1 = 100 > D(P2) = 1: P1 should not participate.
        let bad = LinearSlopes {
            beta: vec![Rational::from(100), Rational::zero()],
            alpha: vec![Rational::from_ratio(1, 1000), Rational::one()],
        };
        assert!(!simultaneous_endings_hold(&bad));
    }

    #[test]
    fn degenerate_free_processor() {
        let ps = vec![lin("free", 0.0, 0.0), lin("root", 0.0, 1.0)];
        let sol = closed_form_distribution(&view(&ps), 42).unwrap();
        assert_eq!(sol.counts, vec![42, 0]);
        assert_eq!(sol.duration, Rational::zero());
    }

    #[test]
    fn rounded_counts_are_near_optimal() {
        // The rounded integer solution's makespan is close to t (within the
        // §4.4 bound: + Σ Tcomm(j,1) + max Tcomp(i,1)).
        let ps = vec![
            lin("a", 0.01, 0.7),
            lin("b", 0.02, 0.3),
            lin("root", 0.0, 0.5),
        ];
        let v = view(&ps);
        let n = 997;
        let sol = closed_form_distribution(&v, n).unwrap();
        let t = sol.duration.to_f64();
        let actual = makespan(&v, &sol.counts);
        let bound: f64 = t + 0.01 + 0.02 + 0.7;
        assert!(actual <= bound + 1e-9, "{actual} <= {bound}");
        assert!(actual >= t - 1e-9, "integer can't beat rational optimum");
    }

    #[test]
    fn rejects_non_linear() {
        let ps = vec![
            Processor::affine("aff", 1.0, 0.1, 0.0, 1.0),
            lin("root", 0.0, 1.0),
        ];
        assert!(matches!(
            closed_form_distribution(&view(&ps), 5),
            Err(PlanError::NotLinear { proc: 0 })
        ));
    }

    #[test]
    fn faster_cpu_gets_more_work() {
        let ps = vec![
            lin("fast", 0.001, 0.1),
            lin("slow", 0.001, 0.4),
            lin("root", 0.0, 0.2),
        ];
        let sol = closed_form_distribution(&view(&ps), 10_000).unwrap();
        assert!(sol.counts[0] > sol.counts[1]);
    }
}
