//! Cost functions and platform descriptions.
//!
//! A processor `P_i` is characterized (RR-4770 §3.1) by
//! * `Tcomm(i, x)` — time for the root to send it `x` data items, and
//! * `Tcomp(i, x)` — time for it to compute on `x` items.
//!
//! The algorithms put increasingly strong requirements on these functions:
//! Algorithm 1 needs them non-negative, Algorithm 2 non-decreasing, the LP
//! heuristic affine, and the closed form linear. [`CostFn`] models all four
//! regimes plus measured (tabulated) functions.

use std::fmt;
use std::sync::Arc;

use crate::error::PlanError;

/// Time, in seconds, for a given number of items.
///
/// All variants must return non-negative finite values for any item count.
#[derive(Clone)]
pub enum CostFn {
    /// Identically zero (e.g. the root "sending" to itself).
    Zero,
    /// `slope * x` — the model of the paper's §4 case study and Table 1.
    Linear {
        /// Seconds per item.
        slope: f64,
    },
    /// `intercept + slope * x` — the model of the guaranteed heuristic
    /// (§3.3). Note `Affine.eval(0) == intercept`: the model charges the
    /// fixed part even for empty blocks, exactly as Eq. (1) is written.
    Affine {
        /// Fixed seconds (latency / startup).
        intercept: f64,
        /// Seconds per item.
        slope: f64,
    },
    /// Piecewise-linear interpolation of measured `(items, seconds)`
    /// samples, extrapolating the last segment. Samples must be sorted by
    /// item count. This is the "benchmark-driven" general case usable with
    /// the dynamic programs.
    Table {
        /// Measured samples, sorted by item count, at least one.
        points: Arc<[(usize, f64)]>,
    },
    /// Arbitrary user function. Usable with Algorithm 1 (and Algorithm 2
    /// if non-decreasing).
    Custom(Arc<dyn Fn(usize) -> f64 + Send + Sync>),
}

impl CostFn {
    /// Builds a tabulated cost function from measured samples.
    ///
    /// # Panics
    /// Panics if `points` is empty or not sorted by item count.
    pub fn table(points: Vec<(usize, f64)>) -> Self {
        assert!(!points.is_empty(), "tabulated cost needs at least one sample");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "tabulated cost samples must be strictly sorted by item count"
        );
        CostFn::Table { points: points.into() }
    }

    /// Evaluates the cost of `x` items, in seconds.
    pub fn eval(&self, x: usize) -> f64 {
        match self {
            CostFn::Zero => 0.0,
            CostFn::Linear { slope } => slope * x as f64,
            CostFn::Affine { intercept, slope } => intercept + slope * x as f64,
            CostFn::Table { points } => eval_table(points, x),
            CostFn::Custom(f) => f(x),
        }
    }

    /// Returns `(intercept, slope)` if the function is affine
    /// (`Zero` and `Linear` are affine with zero intercept).
    pub fn affine_params(&self) -> Option<(f64, f64)> {
        match self {
            CostFn::Zero => Some((0.0, 0.0)),
            CostFn::Linear { slope } => Some((0.0, *slope)),
            CostFn::Affine { intercept, slope } => Some((*intercept, *slope)),
            _ => None,
        }
    }

    /// Returns the slope if the function is linear (zero intercept).
    pub fn linear_slope(&self) -> Option<f64> {
        match self.affine_params() {
            Some((intercept, s)) => (intercept == 0.0).then_some(s),
            None => None,
        }
    }

    /// Effective marginal per-item cost, used to rank processors by
    /// bandwidth when the function is not linear: the secant slope over
    /// `[1, ref_items]`.
    pub fn effective_slope(&self, ref_items: usize) -> f64 {
        match self.affine_params() {
            Some((_, s)) => s,
            None => {
                let hi = ref_items.max(2);
                (self.eval(hi) - self.eval(1)) / (hi - 1) as f64
            }
        }
    }

    /// Cheap sanity check that the function is non-decreasing over a probe
    /// grid up to `n`. A `false` result is definitive; `true` is only
    /// evidence (the probe is sampled).
    pub fn probably_increasing(&self, n: usize) -> bool {
        match self {
            CostFn::Zero => true,
            CostFn::Linear { slope } => *slope >= 0.0,
            CostFn::Affine { slope, .. } => *slope >= 0.0,
            CostFn::Table { points } => points.windows(2).all(|w| w[0].1 <= w[1].1),
            CostFn::Custom(_) => {
                let mut prev = self.eval(0);
                let step = (n / 64).max(1);
                let mut x = 0;
                while x <= n {
                    let v = self.eval(x);
                    if v < prev {
                        return false;
                    }
                    prev = v;
                    x += step;
                }
                true
            }
        }
    }
}

fn eval_table(points: &[(usize, f64)], x: usize) -> f64 {
    let interp = |(x0, y0): (usize, f64), (x1, y1): (usize, f64), x: usize| -> f64 {
        let t = (x as f64 - x0 as f64) / (x1 as f64 - x0 as f64);
        y0 + t * (y1 - y0)
    };
    match points {
        [] => unreachable!("constructor enforces non-empty"),
        [only] => {
            // Single sample: scale proportionally through the origin.
            if only.0 == 0 {
                only.1
            } else {
                only.1 * x as f64 / only.0 as f64
            }
        }
        _ => {
            if x <= points[0].0 {
                // Interpolate between the origin and the first sample
                // (costs are null at 0 unless a sample says otherwise).
                if points[0].0 == 0 {
                    return points[0].1;
                }
                return interp((0, 0.0), points[0], x);
            }
            for w in points.windows(2) {
                if x <= w[1].0 {
                    return interp(w[0], w[1], x);
                }
            }
            // Extrapolate the last segment.
            let n = points.len();
            interp(points[n - 2], points[n - 1], x)
        }
    }
}

impl fmt::Debug for CostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostFn::Zero => f.write_str("Zero"),
            CostFn::Linear { slope } => write!(f, "Linear({slope}/item)"),
            CostFn::Affine { intercept, slope } => {
                write!(f, "Affine({intercept} + {slope}/item)")
            }
            CostFn::Table { points } => write!(f, "Table({} samples)", points.len()),
            CostFn::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// One processor of the grid: a name plus its two cost functions.
#[derive(Debug, Clone)]
pub struct Processor {
    /// Human-readable machine name (Table-1 style).
    pub name: String,
    /// `Tcomm(i, x)`: root → this processor transfer time.
    pub comm: CostFn,
    /// `Tcomp(i, x)`: compute time on this processor.
    pub comp: CostFn,
}

impl Processor {
    /// A processor with linear costs: `Tcomm = beta·x`, `Tcomp = alpha·x`
    /// (β = s/item over the link, α = s/item of compute — the columns of
    /// the paper's Table 1).
    pub fn linear(name: impl Into<String>, beta: f64, alpha: f64) -> Self {
        let comm = if beta == 0.0 {
            CostFn::Zero
        } else {
            CostFn::Linear { slope: beta }
        };
        Processor {
            name: name.into(),
            comm,
            comp: CostFn::Linear { slope: alpha },
        }
    }

    /// A processor with affine costs
    /// (`Tcomm = b + beta·x`, `Tcomp = a + alpha·x`).
    pub fn affine(
        name: impl Into<String>,
        comm_intercept: f64,
        beta: f64,
        comp_intercept: f64,
        alpha: f64,
    ) -> Self {
        Processor {
            name: name.into(),
            comm: CostFn::Affine { intercept: comm_intercept, slope: beta },
            comp: CostFn::Affine { intercept: comp_intercept, slope: alpha },
        }
    }

    /// A processor with arbitrary cost closures.
    pub fn custom(
        name: impl Into<String>,
        comm: impl Fn(usize) -> f64 + Send + Sync + 'static,
        comp: impl Fn(usize) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Processor {
            name: name.into(),
            comm: CostFn::Custom(Arc::new(comm)),
            comp: CostFn::Custom(Arc::new(comp)),
        }
    }

    /// Validates that both cost functions return sane values at a few probe
    /// sizes.
    pub fn validate(&self, index: usize, n: usize) -> Result<(), PlanError> {
        for x in [0usize, 1, n / 2, n] {
            for f in [&self.comm, &self.comp] {
                let v = f.eval(x);
                if !v.is_finite() || v < 0.0 {
                    return Err(PlanError::InvalidCost { proc: index, items: x, value: v });
                }
            }
        }
        Ok(())
    }
}

/// A set of processors with a designated root.
///
/// Processors are stored in an arbitrary, stable *index* order; the order in
/// which the root serves them (the *scatter order*) is a separate
/// permutation produced by [`crate::ordering::scatter_order`]. The root's
/// `comm` cost should normally be [`CostFn::Zero`] (it already holds the
/// data); the paper's model places the root last so it computes after all
/// sends complete.
#[derive(Debug, Clone)]
pub struct Platform {
    procs: Vec<Processor>,
    root: usize,
}

impl Platform {
    /// Builds a platform; `root` is an index into `procs`.
    pub fn new(procs: Vec<Processor>, root: usize) -> Result<Self, PlanError> {
        if procs.is_empty() {
            return Err(PlanError::InvalidPlatform("no processors".into()));
        }
        if root >= procs.len() {
            return Err(PlanError::InvalidPlatform(format!(
                "root index {root} out of range (p = {})",
                procs.len()
            )));
        }
        Ok(Platform { procs, root })
    }

    /// Number of processors (including the root).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` iff the platform has no processors (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// The processors, in index order.
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// Index of the root processor.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Re-designates the root (used by root selection, §3.4).
    pub fn with_root(&self, root: usize) -> Result<Self, PlanError> {
        Platform::new(self.procs.clone(), root)
    }

    /// Processors rearranged according to a scatter order (a permutation of
    /// indices, root last); panics if `order` is not such a permutation.
    pub fn ordered(&self, order: &[usize]) -> Vec<&Processor> {
        assert_eq!(order.len(), self.len(), "order must cover all processors");
        assert_eq!(*order.last().unwrap(), self.root, "root must be last in scatter order");
        let mut seen = vec![false; self.len()];
        for &i in order {
            assert!(!seen[i], "order must be a permutation");
            seen[i] = true;
        }
        order.iter().map(|&i| &self.procs[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_eval() {
        let f = CostFn::Linear { slope: 0.5 };
        assert_eq!(f.eval(0), 0.0);
        assert_eq!(f.eval(10), 5.0);
        assert_eq!(f.linear_slope(), Some(0.5));
        assert_eq!(f.affine_params(), Some((0.0, 0.5)));
    }

    #[test]
    fn affine_eval_charges_intercept_at_zero() {
        let f = CostFn::Affine { intercept: 2.0, slope: 0.5 };
        assert_eq!(f.eval(0), 2.0);
        assert_eq!(f.eval(10), 7.0);
        assert_eq!(f.linear_slope(), None);
        assert_eq!(f.affine_params(), Some((2.0, 0.5)));
    }

    #[test]
    fn zero_is_linear_and_affine() {
        assert_eq!(CostFn::Zero.eval(100), 0.0);
        assert_eq!(CostFn::Zero.linear_slope(), Some(0.0));
        assert_eq!(CostFn::Zero.affine_params(), Some((0.0, 0.0)));
    }

    #[test]
    fn table_interpolates_and_extrapolates() {
        let f = CostFn::table(vec![(10, 1.0), (20, 3.0)]);
        assert_eq!(f.eval(10), 1.0);
        assert_eq!(f.eval(20), 3.0);
        assert_eq!(f.eval(15), 2.0);
        assert_eq!(f.eval(30), 5.0); // extrapolated
        assert_eq!(f.eval(5), 0.5); // origin..first sample
        assert_eq!(f.eval(0), 0.0);
        assert_eq!(f.affine_params(), None);
    }

    #[test]
    fn table_single_point_scales() {
        let f = CostFn::table(vec![(100, 2.0)]);
        assert_eq!(f.eval(50), 1.0);
        assert_eq!(f.eval(200), 4.0);
        assert_eq!(f.eval(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn table_rejects_unsorted() {
        let _ = CostFn::table(vec![(20, 1.0), (10, 2.0)]);
    }

    #[test]
    fn custom_eval() {
        let f = CostFn::Custom(Arc::new(|x| (x as f64).sqrt()));
        assert_eq!(f.eval(16), 4.0);
        assert!(f.probably_increasing(1000));
        assert_eq!(f.affine_params(), None);
    }

    #[test]
    fn probably_increasing_detects_decrease() {
        let f = CostFn::Custom(Arc::new(|x| -(x as f64)));
        assert!(!f.probably_increasing(100));
        assert!(!CostFn::Linear { slope: -1.0 }.probably_increasing(10));
    }

    #[test]
    fn effective_slope() {
        assert_eq!(CostFn::Linear { slope: 0.25 }.effective_slope(1000), 0.25);
        let t = CostFn::table(vec![(1, 1.0), (1001, 101.0)]);
        assert!((t.effective_slope(1001) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn platform_validation() {
        assert!(Platform::new(vec![], 0).is_err());
        let p = Processor::linear("a", 0.0, 1.0);
        assert!(Platform::new(vec![p.clone()], 1).is_err());
        let plat = Platform::new(vec![p.clone(), p], 1).unwrap();
        assert_eq!(plat.len(), 2);
        assert_eq!(plat.root(), 1);
    }

    #[test]
    fn ordered_view() {
        let plat = Platform::new(
            vec![
                Processor::linear("r", 0.0, 1.0),
                Processor::linear("a", 1.0, 1.0),
                Processor::linear("b", 2.0, 1.0),
            ],
            0,
        )
        .unwrap();
        let view = plat.ordered(&[2, 1, 0]);
        assert_eq!(view[0].name, "b");
        assert_eq!(view[2].name, "r");
    }

    #[test]
    #[should_panic(expected = "root must be last")]
    fn ordered_requires_root_last() {
        let plat = Platform::new(
            vec![Processor::linear("r", 0.0, 1.0), Processor::linear("a", 1.0, 1.0)],
            0,
        )
        .unwrap();
        let _ = plat.ordered(&[0, 1]);
    }

    #[test]
    fn validate_rejects_nan() {
        let p = Processor::custom("bad", |_| f64::NAN, |x| x as f64);
        assert!(matches!(
            p.validate(3, 100),
            Err(PlanError::InvalidCost { proc: 3, .. })
        ));
        let good = Processor::linear("ok", 1e-5, 1e-3);
        assert!(good.validate(0, 100).is_ok());
    }
}
