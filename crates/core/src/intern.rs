//! Processor-name interning: `String` names ↔ dense `u32` ids.
//!
//! At million-rank scale the simulator must not carry one heap `String`
//! per rank through every event. An interner assigns each distinct name
//! a dense `u32` once; the hot paths then deal in bare ids, and only the
//! boundaries (trace emission, `gs report`) resolve back.
//!
//! Ids that escape a process without their interner — e.g. a trace
//! emitted from a big-sim run that never materialised names — render as
//! the **placeholder** form `#<id>` (`#42`). Consumers that hold richer
//! context (like `gs report` with sibling traces of the same platform)
//! can re-resolve placeholders by rank position; see
//! [`NameInterner::parse_placeholder`].

use std::collections::HashMap;

/// An interned-name table. Ids are dense, starting at 0, in first-intern
/// order.
#[derive(Debug, Clone, Default)]
pub struct NameInterner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl NameInterner {
    /// An empty interner.
    pub fn new() -> Self {
        NameInterner::default()
    }

    /// Interns `name`, returning its id (existing id if already known).
    ///
    /// # Panics
    /// Panics after `u32::MAX` distinct names.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner full: more than u32::MAX names");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The name behind `id`, if interned here.
    pub fn get(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// The id of `name`, if interned here.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name behind `id`, or its placeholder form `#<id>` when the id
    /// is unknown.
    pub fn resolve(&self, id: u32) -> String {
        match self.get(id) {
            Some(s) => s.to_string(),
            None => Self::placeholder(id),
        }
    }

    /// The placeholder rendering of an id: `#<id>`.
    pub fn placeholder(id: u32) -> String {
        format!("#{id}")
    }

    /// Parses a placeholder (`#<id>`) back into its id. Returns `None`
    /// for anything else — including real names that merely start with
    /// `#` followed by non-digits.
    pub fn parse_placeholder(name: &str) -> Option<u32> {
        let digits = name.strip_prefix('#')?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = NameInterner::new();
        assert_eq!(it.intern("a"), 0);
        assert_eq!(it.intern("b"), 1);
        assert_eq!(it.intern("a"), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.get(0), Some("a"));
        assert_eq!(it.lookup("b"), Some(1));
        assert_eq!(it.get(7), None);
    }

    #[test]
    fn resolve_falls_back_to_placeholder() {
        let mut it = NameInterner::new();
        it.intern("w0");
        assert_eq!(it.resolve(0), "w0");
        assert_eq!(it.resolve(3), "#3");
    }

    #[test]
    fn placeholder_round_trip() {
        assert_eq!(NameInterner::parse_placeholder("#0"), Some(0));
        assert_eq!(NameInterner::parse_placeholder("#4294967295"), Some(u32::MAX));
        assert_eq!(NameInterner::parse_placeholder("#12x"), None);
        assert_eq!(NameInterner::parse_placeholder("#"), None);
        assert_eq!(NameInterner::parse_placeholder("w1"), None);
        assert_eq!(NameInterner::parse_placeholder("#-1"), None);
    }
}
