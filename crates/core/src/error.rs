//! Error types for planning.

use std::fmt;

/// Why a scatter plan could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A platform needs at least one processor, and the root index must be
    /// in range.
    InvalidPlatform(String),
    /// The chosen strategy requires linear cost functions
    /// (`Tcomm(i,x) = β·x`, `Tcomp(i,x) = α·x`) but a processor's cost
    /// function is not linear.
    NotLinear {
        /// Index of the offending processor.
        proc: usize,
    },
    /// The chosen strategy requires affine cost functions
    /// (`a + b·x`) but a processor's cost function is not affine.
    NotAffine {
        /// Index of the offending processor.
        proc: usize,
    },
    /// A cost function must be non-decreasing for the optimized DP
    /// (Algorithm 2) but a decreasing step was detected.
    NotIncreasing {
        /// Index of the offending processor.
        proc: usize,
    },
    /// The underlying linear program was infeasible or unbounded — this
    /// indicates an invalid cost model (e.g. negative coefficients).
    LpFailed(String),
    /// A cost function returned a negative or non-finite value.
    InvalidCost {
        /// Index of the offending processor.
        proc: usize,
        /// Item count at which the invalid value was observed.
        items: usize,
        /// The offending value.
        value: f64,
    },
    /// The item count exceeds what the solvers can represent (counts are
    /// reconstructed through a `u32` choice table).
    TooLarge {
        /// The requested item count.
        n: usize,
        /// The largest supported item count.
        max: usize,
    },
    /// A fault-injection spec (`--faults`) or [`crate::fault::FaultPlan`]
    /// could not be parsed or is inconsistent with the platform.
    FaultSpec(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidPlatform(msg) => write!(f, "invalid platform: {msg}"),
            PlanError::NotLinear { proc } => {
                write!(f, "processor {proc} does not have linear cost functions")
            }
            PlanError::NotAffine { proc } => {
                write!(f, "processor {proc} does not have affine cost functions")
            }
            PlanError::NotIncreasing { proc } => {
                write!(f, "processor {proc} has a decreasing cost function")
            }
            PlanError::LpFailed(msg) => write!(f, "linear program failed: {msg}"),
            PlanError::InvalidCost { proc, items, value } => write!(
                f,
                "processor {proc} returned invalid cost {value} for {items} items"
            ),
            PlanError::TooLarge { n, max } => {
                write!(f, "item count {n} exceeds the supported maximum {max}")
            }
            PlanError::FaultSpec(msg) => write!(f, "bad fault spec: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}
