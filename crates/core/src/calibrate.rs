//! Cost-model calibration: recover per-rank affine parameters from
//! executed traces, report drift against an assumed platform, re-plan.
//!
//! The paper's planners assume the affine costs `Tcomm(i,n) = β_i·n + b_i`
//! and `Tcomp(i,n) = α_i·n + a_i` are known — the authors *measure* them
//! (§5) before planning. This module is that measurement step for our own
//! pipeline: given one or more [`Trace`]s of runs that actually happened
//! (simulated or executed), it
//!
//! 1. extracts per-rank `(n, seconds)` samples from the send and compute
//!    intervals ([`Calibration::from_traces`]),
//! 2. least-squares-fits the four affine parameters per rank
//!    ([`AffineFit`]),
//! 3. rebuilds a [`Platform`] from the fits ([`Calibration::platform`])
//!    that feeds straight back into the existing solvers
//!    ([`Calibration::replan`]), and
//! 4. quantifies *drift* — how far a run deviated from what an assumed
//!    platform predicts ([`DriftReport`]), with a configurable tolerance
//!    suitable for CI gating (`gs report --drift-threshold`).
//!
//! Two traces of the *same* platform at *different* problem sizes pin an
//! affine function exactly; with a single trace the intercepts are
//! under-determined and the fit degrades gracefully to a proportional
//! model (slope = t/n, intercept 0).
//!
//! ## Example
//!
//! ```
//! use gs_scatter::prelude::*;
//! use gs_scatter::calibrate::Calibration;
//!
//! let platform = Platform::new(vec![
//!     Processor::affine("w1", 0.5, 1.0e-4, 0.1, 4.0e-3),
//!     Processor::affine("root", 0.0, 0.0, 0.2, 9.0e-3),
//! ], 1).unwrap();
//! let mk_trace = |items: usize| {
//!     let plan = Planner::new(platform.clone()).plan(items).unwrap();
//!     plan.predicted_trace(&platform, 8)
//! };
//! let cal = Calibration::from_traces(&[mk_trace(10_000), mk_trace(40_000)]).unwrap();
//! let fit = cal.fits.iter().find(|f| f.name == "w1").unwrap();
//! assert!((fit.comm.slope - 1.0e-4).abs() < 1e-9);
//! assert!((fit.comm.intercept - 0.5).abs() < 1e-6);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cost::{CostFn, Platform, Processor};
use crate::distribution::timeline;
use crate::error::PlanError;
use crate::obs::{EventKind, Trace, TraceError};
use crate::ordering::OrderPolicy;
use crate::planner::{Plan, Planner, Strategy};

/// A least-squares affine fit `t(n) = slope·n + intercept` over one
/// rank's samples of one phase (comm or comp).
#[derive(Debug, Clone, PartialEq)]
pub struct AffineFit {
    /// Fitted per-item cost (β or α), clamped to be non-negative.
    pub slope: f64,
    /// Fitted fixed cost (b or a), clamped to be non-negative.
    pub intercept: f64,
    /// Number of `(n, t)` samples behind the fit.
    pub samples: usize,
    /// Number of *distinct* `n` values among the samples; the intercept
    /// is only trustworthy when this is ≥ 2.
    pub distinct_sizes: usize,
    /// Largest relative residual `|fit(n) − t| / max(t, ε)` over the
    /// samples — near zero when the underlying costs really are affine.
    pub max_rel_residual: f64,
}

impl AffineFit {
    /// Fit with no samples at all: the zero function.
    fn empty() -> AffineFit {
        AffineFit {
            slope: 0.0,
            intercept: 0.0,
            samples: 0,
            distinct_sizes: 0,
            max_rel_residual: 0.0,
        }
    }

    /// Least-squares fit of `(n, t)` pairs (see module docs for the
    /// under-determined fallbacks).
    fn fit(samples: &[(u64, f64)]) -> AffineFit {
        if samples.is_empty() {
            return AffineFit::empty();
        }
        let m = samples.len() as f64;
        let xs: Vec<f64> = samples.iter().map(|&(n, _)| n as f64).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
        let xbar = xs.iter().sum::<f64>() / m;
        let ybar = ys.iter().sum::<f64>() / m;
        let sxx: f64 = xs.iter().map(|x| (x - xbar) * (x - xbar)).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - xbar) * (y - ybar)).sum();
        let mut distinct: Vec<u64> = samples.iter().map(|&(n, _)| n).collect();
        distinct.sort_unstable();
        distinct.dedup();

        let (mut slope, mut intercept) = if distinct.len() >= 2 && sxx > 0.0 {
            let s = sxy / sxx;
            (s, ybar - s * xbar)
        } else if xbar > 0.0 {
            // One size only: proportional model.
            (ybar / xbar, 0.0)
        } else {
            // Only n = 0 samples: pure intercept.
            (0.0, ybar)
        };
        // The platform grammar (and physics) rejects negative costs;
        // float noise or degenerate data can produce them. Re-anchor
        // rather than silently keeping a nonsense parameter.
        if slope < 0.0 {
            slope = 0.0;
            intercept = ybar;
        }
        if intercept < 0.0 {
            intercept = 0.0;
            let sx2: f64 = xs.iter().map(|x| x * x).sum();
            slope = if sx2 > 0.0 {
                xs.iter().zip(&ys).map(|(x, y)| x * y).sum::<f64>() / sx2
            } else {
                0.0
            };
        }
        slope = slope.max(0.0);
        intercept = intercept.max(0.0);

        let max_rel_residual = samples
            .iter()
            .map(|&(n, t)| {
                let pred = slope * n as f64 + intercept;
                (pred - t).abs() / t.abs().max(1e-12)
            })
            .fold(0.0f64, f64::max);
        AffineFit {
            slope,
            intercept,
            samples: samples.len(),
            distinct_sizes: distinct.len(),
            max_rel_residual,
        }
    }

    /// The fit as a [`CostFn`] (`Zero`, `Linear` or `Affine`, whichever
    /// is the simplest exact representation).
    pub fn cost_fn(&self) -> CostFn {
        if self.slope == 0.0 && self.intercept == 0.0 {
            CostFn::Zero
        } else if self.intercept == 0.0 {
            CostFn::Linear { slope: self.slope }
        } else {
            CostFn::Affine { intercept: self.intercept, slope: self.slope }
        }
    }
}

/// The four fitted parameters of one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankFit {
    /// Rank display name (calibration joins traces by name, so traces
    /// with different scatter orders combine correctly).
    pub name: String,
    /// Fit of the communication cost `Tcomm(n) = β·n + b`.
    pub comm: AffineFit,
    /// Fit of the computation cost `Tcomp(n) = α·n + a`.
    pub comp: AffineFit,
}

/// A calibration error (empty input, malformed trace, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationError(pub String);

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "calibration error: {}", self.0)
    }
}

impl std::error::Error for CalibrationError {}

impl From<TraceError> for CalibrationError {
    fn from(e: TraceError) -> CalibrationError {
        CalibrationError(e.to_string())
    }
}

/// A fitted cost model: one [`RankFit`] per rank seen in the input
/// traces, plus the root's identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Per-rank fits, in the rank order of the first input trace.
    pub fits: Vec<RankFit>,
    /// Name of the root (the rank that sent every block).
    pub root: String,
    /// Item size shared by the input traces.
    pub item_bytes: u64,
}

impl Calibration {
    /// Fits a cost model to one or more traces of runs on the *same*
    /// platform (same rank names, same `item_bytes`; problem sizes may —
    /// and for exact intercept recovery should — differ).
    ///
    /// Traces are validated first. Samples are joined across traces by
    /// rank *name*. The root is identified by its self-send (the kept
    /// block); send samples are taken on the receiving side (`Tcomm` of
    /// Eq. 1 is receiver-indexed) and the root's zero-duration self-send
    /// is excluded.
    pub fn from_traces(traces: &[Trace]) -> Result<Calibration, CalibrationError> {
        let first = traces
            .first()
            .ok_or_else(|| CalibrationError("no traces given".into()))?;
        if first.names.is_empty() {
            return Err(CalibrationError("trace has no ranks".into()));
        }
        let item_bytes = first.item_bytes;
        if item_bytes == 0 {
            return Err(CalibrationError(
                "trace has item_bytes = 0; cannot convert bytes to items".into(),
            ));
        }
        let mut comm: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        let mut comp: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        let mut root: Option<String> = None;

        for trace in traces {
            trace.validate()?;
            if trace.item_bytes != item_bytes {
                return Err(CalibrationError(format!(
                    "traces disagree on item_bytes ({} vs {item_bytes})",
                    trace.item_bytes
                )));
            }
            let p = trace.num_ranks();
            // Per-rank open interval state, in trace-local rank indices.
            let mut open_send: Vec<Option<(f64, u64)>> = vec![None; p];
            let mut open_compute: Vec<Option<f64>> = vec![None; p];
            // Items of the last completed receive, used to size compute
            // phases that carry no item range (executed traces).
            let mut last_recv_n: Vec<u64> = vec![0; p];
            for e in &trace.events {
                let n_of = |e: &crate::obs::Event| -> u64 {
                    match e.items {
                        Some((lo, hi)) => hi - lo,
                        None => e.bytes / item_bytes,
                    }
                };
                match e.kind {
                    EventKind::SendStart => open_send[e.rank] = Some((e.t, n_of(e))),
                    EventKind::SendEnd => {
                        if let Some((start, n)) = open_send[e.rank].take() {
                            last_recv_n[e.rank] = n;
                            if e.peer == Some(e.rank) {
                                // The root keeping its block: no wire
                                // time, but it names the root for us.
                                root = Some(trace.names[e.rank].clone());
                            } else {
                                comm.entry(trace.names[e.rank].clone())
                                    .or_default()
                                    .push((n, e.t - start));
                            }
                        }
                    }
                    EventKind::ComputeStart => open_compute[e.rank] = Some(e.t),
                    EventKind::ComputeEnd => {
                        if let Some(start) = open_compute[e.rank].take() {
                            let n = match e.items {
                                Some((lo, hi)) => hi - lo,
                                None => last_recv_n[e.rank],
                            };
                            comp.entry(trace.names[e.rank].clone())
                                .or_default()
                                .push((n, e.t - start));
                        }
                    }
                    EventKind::Idle => {}
                }
            }
        }

        // Fall back to the scatter-order convention (root last) when no
        // self-send names the root explicitly.
        let root = root.unwrap_or_else(|| first.names.last().expect("non-empty").clone());
        let fits = first
            .names
            .iter()
            .map(|name| RankFit {
                name: name.clone(),
                comm: AffineFit::fit(comm.get(name).map_or(&[][..], Vec::as_slice)),
                comp: AffineFit::fit(comp.get(name).map_or(&[][..], Vec::as_slice)),
            })
            .collect();
        Ok(Calibration { fits, root, item_bytes })
    }

    /// Largest `max_rel_residual` over every per-rank fit — a cheap
    /// "was the platform really affine?" indicator.
    pub fn max_rel_residual(&self) -> f64 {
        self.fits
            .iter()
            .flat_map(|f| [f.comm.max_rel_residual, f.comp.max_rel_residual])
            .fold(0.0, f64::max)
    }

    /// Builds a [`Platform`] from the fits, ready for any solver. The
    /// rank order of the first input trace is preserved.
    pub fn platform(&self) -> Result<Platform, PlanError> {
        let procs: Vec<Processor> = self
            .fits
            .iter()
            .map(|f| Processor {
                name: f.name.clone(),
                comm: f.comm.cost_fn(),
                comp: f.comp.cost_fn(),
            })
            .collect();
        let root = self
            .fits
            .iter()
            .position(|f| f.name == self.root)
            .expect("root is one of the fitted ranks");
        Platform::new(procs, root)
    }

    /// The observe→calibrate→re-plan loop closed: plans `items` on the
    /// calibrated platform with the given strategy (descending-bandwidth
    /// ordering, as in the paper's Theorem 3).
    pub fn replan(&self, items: usize, strategy: Strategy) -> Result<Plan, PlanError> {
        Planner::new(self.platform()?)
            .strategy(strategy)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(items)
    }

    /// Renders the calibration as a platform file (the `gs` CLI's
    /// on-disk grammar), one `proc` line per rank plus the `root` line —
    /// so `gs calibrate`'s output pipes straight back into `gs plan`.
    pub fn render_notes(&self) -> String {
        let mut out = String::new();
        for f in &self.fits {
            let _ = writeln!(
                out,
                "# {}: comm {} sample(s)/{} size(s) resid {:.2e}; \
                 comp {} sample(s)/{} size(s) resid {:.2e}",
                f.name,
                f.comm.samples,
                f.comm.distinct_sizes,
                f.comm.max_rel_residual,
                f.comp.samples,
                f.comp.distinct_sizes,
                f.comp.max_rel_residual,
            );
        }
        out
    }
}

/// One rank's row of a [`DriftReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Rank display name.
    pub name: String,
    /// Items this rank received in the trace.
    pub items: u64,
    /// `Tcomm(n)` the assumed platform predicts (0 for the root's kept
    /// block).
    pub predicted_comm: f64,
    /// Receive seconds actually observed.
    pub executed_comm: f64,
    /// `Tcomp(n)` the assumed platform predicts.
    pub predicted_comp: f64,
    /// Compute seconds actually observed.
    pub executed_comp: f64,
    /// Largest of the comm/comp relative deviations.
    pub max_rel: f64,
    /// True when `max_rel` exceeds the report's tolerance.
    pub flagged: bool,
}

/// Executed-vs-predicted deviation of one trace against an assumed
/// [`Platform`], with a tolerance for CI gating.
///
/// Relative deviation of an observed duration `t` against a prediction
/// `t̂` is `|t − t̂| / max(t̂, ε)`; a rank whose comm *or* comp deviation
/// exceeds the tolerance is flagged, as is the report when the makespans
/// deviate. Built for fault-free single-scatter traces — recovered
/// fault traces aggregate several phases per rank and will over-report.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-rank rows, in trace rank order.
    pub rows: Vec<DriftRow>,
    /// The tolerance the rows were flagged against.
    pub tolerance: f64,
    /// Makespan the platform predicts for the trace's distribution.
    pub predicted_makespan: f64,
    /// The trace's actual makespan.
    pub executed_makespan: f64,
    /// Relative deviation of the makespans.
    pub makespan_rel: f64,
}

/// Guard against division by (near-)zero predictions.
fn rel_dev(executed: f64, predicted: f64) -> f64 {
    (executed - predicted).abs() / predicted.abs().max(1e-12)
}

impl DriftReport {
    /// Measures `trace` against the predictions of `platform`
    /// (processors matched by rank name), flagging deviations beyond
    /// `tolerance`.
    pub fn from_trace(
        platform: &Platform,
        trace: &Trace,
        tolerance: f64,
    ) -> Result<DriftReport, CalibrationError> {
        if trace.item_bytes == 0 {
            return Err(CalibrationError(
                "trace has item_bytes = 0; cannot convert bytes to items".into(),
            ));
        }
        let summary = trace.summarize()?;
        let procs: Vec<&Processor> = trace
            .names
            .iter()
            .map(|name| {
                platform
                    .procs()
                    .iter()
                    .find(|p| &p.name == name)
                    .ok_or_else(|| {
                        CalibrationError(format!("platform has no processor named `{name}`"))
                    })
            })
            .collect::<Result<_, _>>()?;
        let self_fed: Vec<bool> = (0..trace.num_ranks())
            .map(|r| summary.links.iter().any(|l| l.src == r && l.dst == r))
            .collect();
        let mut counts = Vec::with_capacity(trace.num_ranks());
        let rows: Vec<DriftRow> = summary
            .ranks
            .iter()
            .enumerate()
            .map(|(r, rank)| {
                let n = rank.bytes_in / trace.item_bytes;
                counts.push(n as usize);
                // The kept block never crosses a wire: no comm to check.
                let predicted_comm =
                    if self_fed[r] { 0.0 } else { procs[r].comm.eval(n as usize) };
                let predicted_comp = procs[r].comp.eval(n as usize);
                let comm_rel = rel_dev(rank.recv, predicted_comm);
                let comp_rel = rel_dev(rank.compute, predicted_comp);
                let max_rel = comm_rel.max(comp_rel);
                DriftRow {
                    name: rank.name.clone(),
                    items: n,
                    predicted_comm,
                    executed_comm: rank.recv,
                    predicted_comp,
                    executed_comp: rank.compute,
                    max_rel,
                    flagged: max_rel > tolerance,
                }
            })
            .collect();
        let predicted_makespan = timeline(&procs, &counts).makespan();
        let executed_makespan = summary.makespan;
        Ok(DriftReport {
            rows,
            tolerance,
            predicted_makespan,
            executed_makespan,
            makespan_rel: rel_dev(executed_makespan, predicted_makespan),
        })
    }

    /// True when no rank is flagged and the makespans agree within the
    /// tolerance — the pass/fail bit behind `gs report
    /// --drift-threshold`.
    pub fn ok(&self) -> bool {
        self.makespan_rel <= self.tolerance && self.rows.iter().all(|r| !r.flagged)
    }

    /// Largest relative deviation anywhere in the report.
    pub fn max_rel(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.max_rel)
            .fold(self.makespan_rel, f64::max)
    }

    /// Renders the report as a fixed-width table with a verdict line.
    pub fn render(&self) -> String {
        let name_w = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
        let mut out = format!(
            "drift vs predicted (tolerance {:.2}%):\n",
            self.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "{:<name_w$} {:>10} {:>11} {:>11} {:>11} {:>11} {:>9}",
            "rank", "items", "comm pred", "comm exec", "comp pred", "comp exec", "dev %"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10} {:>11.4} {:>11.4} {:>11.4} {:>11.4} {:>8.2}{}",
                r.name,
                r.items,
                r.predicted_comm,
                r.executed_comm,
                r.predicted_comp,
                r.executed_comp,
                r.max_rel * 100.0,
                if r.flagged { " ⚠" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "makespan: predicted {:.4} s, executed {:.4} s ({:.2}% deviation)",
            self.predicted_makespan,
            self.executed_makespan,
            self.makespan_rel * 100.0
        );
        let _ = writeln!(
            out,
            "drift check: {}",
            if self.ok() { "OK" } else { "FAIL (deviation beyond tolerance)" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceSource;

    fn demo_platform() -> Platform {
        Platform::new(
            vec![
                Processor::affine("w1", 0.5, 1.0e-4, 0.1, 4.0e-3),
                Processor::affine("w2", 0.25, 2.0e-4, 0.0, 1.6e-2),
                Processor::affine("root", 0.0, 0.0, 0.2, 9.0e-3),
            ],
            2,
        )
        .unwrap()
    }

    fn predicted(platform: &Platform, items: usize) -> Trace {
        Planner::new(platform.clone())
            .strategy(Strategy::Heuristic)
            .order_policy(OrderPolicy::AsIs)
            .plan(items)
            .unwrap()
            .predicted_trace(platform, 8)
    }

    #[test]
    fn two_sizes_recover_affine_parameters_exactly() {
        let platform = demo_platform();
        let traces = [predicted(&platform, 10_000), predicted(&platform, 40_000)];
        let cal = Calibration::from_traces(&traces).unwrap();
        assert_eq!(cal.root, "root");
        for (fit, proc_) in cal.fits.iter().zip(platform.procs()) {
            assert_eq!(fit.name, proc_.name);
            let (b, beta) = proc_.comm.affine_params().unwrap();
            let (a, alpha) = proc_.comp.affine_params().unwrap();
            if fit.name != "root" {
                assert!((fit.comm.slope - beta).abs() <= beta.abs() * 1e-6 + 1e-12, "{fit:?}");
                assert!((fit.comm.intercept - b).abs() <= 1e-6, "{fit:?}");
            }
            assert!((fit.comp.slope - alpha).abs() <= alpha.abs() * 1e-6 + 1e-12, "{fit:?}");
            assert!((fit.comp.intercept - a).abs() <= 1e-6, "{fit:?}");
        }
        assert!(cal.max_rel_residual() < 1e-6);
    }

    #[test]
    fn single_size_degrades_to_proportional_model() {
        let platform = demo_platform();
        let cal = Calibration::from_traces(&[predicted(&platform, 10_000)]).unwrap();
        let w1 = &cal.fits[0];
        assert_eq!(w1.comm.distinct_sizes, 1);
        assert_eq!(w1.comm.intercept, 0.0);
        assert!(w1.comm.slope > 0.0);
    }

    #[test]
    fn calibrated_platform_predicts_like_the_original() {
        let platform = demo_platform();
        let traces = [predicted(&platform, 10_000), predicted(&platform, 40_000)];
        let cal = Calibration::from_traces(&traces).unwrap();
        let plan_orig = Planner::new(platform).plan(20_000).unwrap();
        let plan_cal = cal.replan(20_000, Strategy::Heuristic).unwrap();
        let rel = (plan_cal.predicted_makespan - plan_orig.predicted_makespan).abs()
            / plan_orig.predicted_makespan;
        assert!(rel < 1e-6, "{rel}");
    }

    #[test]
    fn empty_and_bad_inputs_error() {
        assert!(Calibration::from_traces(&[]).is_err());
        let t = Trace::new(TraceSource::Executed, 0, vec!["a".into()]);
        assert!(Calibration::from_traces(&[t]).is_err());
    }

    #[test]
    fn affine_fit_clamps_negative_parameters() {
        // Decreasing data would fit a negative slope.
        let fit = AffineFit::fit(&[(10, 5.0), (20, 1.0)]);
        assert!(fit.slope >= 0.0 && fit.intercept >= 0.0);
        // Steep proportional data fits a negative intercept.
        let fit = AffineFit::fit(&[(1, 0.1), (100, 100.0)]);
        assert!(fit.intercept >= 0.0);
    }

    #[test]
    fn drift_report_passes_faithful_and_flags_perturbed() {
        let platform = demo_platform();
        let trace = predicted(&platform, 10_000);
        let report = DriftReport::from_trace(&platform, &trace, 0.05).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.max_rel() < 1e-9);

        // The same trace against a platform whose w2 CPU is assumed 2×
        // faster than what ran: comp drifts by ~100%.
        let mut procs = platform.procs().to_vec();
        procs[1].comp = CostFn::Affine { intercept: 0.0, slope: 8.0e-3 };
        let wrong = Platform::new(procs, 2).unwrap();
        let report = DriftReport::from_trace(&wrong, &trace, 0.05).unwrap();
        assert!(!report.ok(), "{}", report.render());
        assert!(report.rows[1].flagged);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn drift_report_rejects_unknown_rank_names() {
        let platform = demo_platform();
        let mut trace = predicted(&platform, 1_000);
        trace.names[0] = "stranger".into();
        assert!(DriftReport::from_trace(&platform, &trace, 0.1).is_err());
    }
}
