//! Algorithm 2 of the paper: the optimized exact dynamic program, valid
//! when all cost functions are **non-decreasing**.
//!
//! Two observations shrink the inner loop of Algorithm 1:
//!
//! 1. `Tcomp(i, e)` is non-decreasing in `e` while `cost[d-e, i+1]` is
//!    non-increasing, so there is a threshold `emax` (found by binary
//!    search) above which `max(Tcomp, cost) = Tcomp`; at and beyond `emax`
//!    the candidate `Tcomm + Tcomp` is non-decreasing, so only `emax`
//!    itself needs to be evaluated there.
//! 2. Scanning `e` downward from `emax - 1`, the candidate is
//!    `Tcomm(i,e) + cost[d-e, i+1]`; once `cost[d-e, i+1]` alone reaches
//!    the current minimum the scan can stop (`Tcomm >= 0`).
//!
//! Worst case `O(p·n²)` like Algorithm 1, best case `O(p·n)`; in practice
//! the paper measured 6 minutes vs more than 2 days at `n = 817,101`.
//!
//! The per-cell work lives in `dp_kernel`, the column sweep in
//! [`crate::parallel`]; this module is the serial single-call facade.
//! Multi-threaded and bound-pruned solves
//! ([`crate::parallel::optimal_distribution_parallel`]) are bit-identical
//! to this entry point — see `docs/performance.md`.

use crate::cost::Processor;
use crate::cost_table::CostTable;
use crate::dp_basic::DpSolution;
use crate::error::PlanError;
use crate::parallel::{self, Algo, ParallelOpts};

/// Computes an optimal distribution of `n` items over `procs` (in scatter
/// order, root last) — Algorithm 2.
///
/// ```
/// use gs_scatter::cost::Processor;
/// use gs_scatter::dp_optimized::optimal_distribution;
///
/// let procs = vec![
///     Processor::linear("worker", 0.1, 1.0),
///     Processor::linear("root", 0.0, 2.0),
/// ];
/// let view: Vec<&Processor> = procs.iter().collect();
/// let sol = optimal_distribution(&view, 30).unwrap();
/// assert_eq!(sol.counts.iter().sum::<usize>(), 30);
/// // The faster worker carries more than the root.
/// assert!(sol.counts[0] > sol.counts[1]);
/// ```
///
/// Requires non-decreasing cost functions; this is checked (cheaply by
/// sampling first, then exactly on the tabulated values) and
/// [`PlanError::NotIncreasing`] is returned on violation. The result is
/// identical to [`crate::dp_basic::optimal_distribution_basic`] on valid
/// inputs — a property the test-suite enforces.
pub fn optimal_distribution(procs: &[&Processor], n: usize) -> Result<DpSolution, PlanError> {
    optimal_distribution_with(&CostTable::new(), procs, n)
}

/// [`optimal_distribution`] with cost tabulations served from (and stored
/// into) a shared [`CostTable`] — use for repeated solves on the same
/// platform (bench sweeps, root selection).
pub fn optimal_distribution_with(
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
) -> Result<DpSolution, PlanError> {
    parallel::solve(Algo::Optimized, table, procs, n, &ParallelOpts::serial())
        .map(|(sol, _)| sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostFn, Processor};
    use crate::dp_basic::optimal_distribution_basic;

    fn view(ps: &[Processor]) -> Vec<&Processor> {
        ps.iter().collect()
    }

    #[test]
    fn agrees_with_basic_on_linear_platform() {
        let ps = vec![
            Processor::linear("a", 0.5, 2.0),
            Processor::linear("b", 1.0, 1.0),
            Processor::linear("c", 0.25, 4.0),
            Processor::linear("root", 0.0, 3.0),
        ];
        let v = view(&ps);
        for n in 0..=40 {
            let fast = optimal_distribution(&v, n).unwrap();
            let slow = optimal_distribution_basic(&v, n).unwrap();
            assert!(
                (fast.makespan - slow.makespan).abs() < 1e-9,
                "n={n}: {} vs {}",
                fast.makespan,
                slow.makespan
            );
            assert_eq!(fast.counts.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn agrees_with_basic_on_affine_platform() {
        let ps = vec![
            Processor::affine("a", 0.4, 0.5, 0.9, 2.0),
            Processor::affine("b", 0.2, 1.0, 0.1, 1.0),
            Processor::affine("root", 0.0, 0.0, 0.0, 3.0),
        ];
        let v = view(&ps);
        for n in 0..=25 {
            let fast = optimal_distribution(&v, n).unwrap();
            let slow = optimal_distribution_basic(&v, n).unwrap();
            assert!((fast.makespan - slow.makespan).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn agrees_with_basic_on_tabulated_costs() {
        let ps = vec![
            Processor {
                name: "measured".into(),
                comm: CostFn::table(vec![(10, 1.0), (100, 8.0)]),
                comp: CostFn::table(vec![(10, 5.0), (50, 20.0), (100, 60.0)]),
            },
            Processor::linear("root", 0.0, 1.0),
        ];
        let v = view(&ps);
        for n in [0usize, 1, 7, 20, 55, 120] {
            let fast = optimal_distribution(&v, n).unwrap();
            let slow = optimal_distribution_basic(&v, n).unwrap();
            assert!((fast.makespan - slow.makespan).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn rejects_decreasing_costs() {
        let ps = vec![
            Processor::custom("dec", |x| 10.0 - x as f64 * 0.01, |x| x as f64),
            Processor::linear("root", 0.0, 1.0),
        ];
        assert!(matches!(
            optimal_distribution(&view(&ps), 10),
            Err(PlanError::NotIncreasing { proc: 0 })
        ));
    }

    #[test]
    fn exact_check_catches_sneaky_decrease() {
        // Decreasing only between sample points of the cheap probe:
        // the exact tabulated check must still catch it.
        let ps = vec![
            Processor::custom(
                "sneaky",
                |x| if x == 37 { 0.0 } else { x as f64 },
                |x| x as f64,
            ),
            Processor::linear("root", 0.0, 1.0),
        ];
        assert!(matches!(
            optimal_distribution(&view(&ps), 100),
            Err(PlanError::NotIncreasing { .. })
        ));
    }

    #[test]
    fn single_processor() {
        let ps = vec![Processor::linear("root", 0.0, 1.5)];
        let sol = optimal_distribution(&view(&ps), 4).unwrap();
        assert_eq!(sol.counts, vec![4]);
        assert_eq!(sol.makespan, 6.0);
    }

    #[test]
    fn too_large_is_an_error_not_a_panic() {
        let ps = vec![Processor::linear("root", 0.0, 1.0)];
        let n = u32::MAX as usize + 1;
        assert!(matches!(
            optimal_distribution(&view(&ps), n),
            Err(PlanError::TooLarge { max, .. }) if max == u32::MAX as usize
        ));
    }

    #[test]
    fn larger_n_smoke() {
        // p = 4, n = 2000: must complete fast and match Eq. (2) evaluation.
        let ps = vec![
            Processor::linear("a", 1e-4, 2e-3),
            Processor::linear("b", 2e-4, 1e-3),
            Processor::linear("c", 5e-5, 4e-3),
            Processor::linear("root", 0.0, 3e-3),
        ];
        let v = view(&ps);
        let sol = optimal_distribution(&v, 2000).unwrap();
        assert_eq!(sol.counts.iter().sum::<usize>(), 2000);
        let ms = crate::distribution::makespan(&v, &sol.counts);
        assert!((ms - sol.makespan).abs() < 1e-9);
    }
}
