//! Shared per-cell kernels and the flat DP plane of the three dynamic
//! programs.
//!
//! Algorithm 1 ([`crate::dp_basic`]), Algorithm 2
//! ([`crate::dp_optimized`]) and the divide-and-conquer kernel
//! ([`crate::dp_dc`]) all fill a table column by column:
//! `cost[d, i] = min_e Tcomm(i,e) + max(Tcomp(i,e), cost[d-e, i+1])`,
//! where column `i` depends only on column `i+1`. The per-cell work is
//! factored out here so the serial solvers, the multi-threaded engine
//! ([`crate::parallel`]) and the pruned variant all execute the *same
//! floating-point operations in the same order* — which is what makes
//! their results bit-identical, a property the test-suite enforces.
//!
//! [`optimized_cell`] generalizes Algorithm 2's cell to a candidate
//! window `lo..=lim`: with `(lo, lim) = (0, d)` it reduces exactly to the
//! paper's Algorithm 2, and the upper-bound pruning path narrows the
//! window without disturbing the operations performed inside it.
//!
//! The divide-and-conquer kernel exploits a sharper structural fact.
//! Define the **crossing point** `c(d)` = the smallest `e ∈ 0..=d` with
//! `Tcomp(i,e) >= cost[d-e, i+1]` (`d + 1` when no such `e` exists).
//! When `Tcomp` is non-decreasing and the previous column is
//! non-decreasing — which every column of the DP is, by induction, for
//! non-decreasing cost functions — the crossing is monotone and moves by
//! at most one step per cell: `c(d) <= c(d+1) <= c(d) + 1`. Algorithm
//! 2's per-cell binary search re-derives `c(d)` from scratch
//! (`O(log n)` cache-hostile probes per cell); [`dc_chunk`] instead
//! recovers all crossings of a cell range by divide and conquer over
//! ever-narrowing windows, `O(n + log n)` probes per chunk in total, and
//! then evaluates each cell with [`dc_cell`] — which performs *exactly*
//! the candidate comparisons Algorithm 2's cell performs after its
//! binary search, so values, choices and tie-breaks stay bit-identical.
//!
//! All three kernels write into one [`DpPlane`]: a single flat,
//! column-major `Vec<f64>` cost buffer plus a `Vec<u32>` backtrack
//! plane, replacing the per-column allocations the engine used to make.
//! Keeping the whole plane alive is what lets fault recovery warm-start
//! a re-plan from the surviving suffix columns (see
//! [`crate::planner::PlanCache`]).

/// The largest supported item count: counts are reconstructed through a
/// `u32` choice table.
pub(crate) const MAX_ITEMS: usize = u32::MAX as usize;

/// One-slot recycling pool for dropped [`DpPlane`] buffers.
///
/// A `p = 64`, `n = 10^5` plane is ~115 MB; allocating it fresh per
/// solve costs tens of thousands of first-touch page faults, which
/// dwarfs the D&C kernel's own work on re-plan-heavy workloads. Dropped
/// planes park their buffers here and the next [`DpPlane::new`] of an
/// equal-or-smaller size reuses them (contents stale — see the plane
/// docs for the write-before-read discipline that makes this sound).
/// Keeping a single slot bounds the held memory to one plane.
static PLANE_POOL: std::sync::Mutex<Option<(Vec<f64>, Vec<u32>)>> = std::sync::Mutex::new(None);

/// Flat, cache-friendly storage of one DP solve: `p` columns of
/// `n + 1` cells each, column-major (column `i` occupies
/// `i*(n+1) .. (i+1)*(n+1)`), a `u32` backtrack (choice) plane of the
/// same shape, and the contiguous computed prefix length of each column.
///
/// Cells outside the computed prefix hold `+inf`, which the pruning
/// logic treats as out-of-bound; a reconstruction step that lands on one
/// signals an inconsistent pruning bound (the engine then retries
/// unpruned).
///
/// A fresh plane's cells are **unspecified**: buffers come zero-allocated
/// from the OS (lazily mapped pages, no up-front `+inf` fill — tens of
/// milliseconds at `p = 64`, `n = 10^5`) or recycled from a small
/// process-wide pool fed by dropped planes (skipping ~30k page faults
/// per solve on re-plan-heavy workloads). The engine upholds a strict
/// write-before-read discipline: every cell a solve can read is either
/// computed or explicitly written `+inf` by the pruning skip paths, so
/// stale contents are never observable.
#[derive(Debug, Clone)]
pub(crate) struct DpPlane {
    /// Problem size: columns hold `n + 1` cells (`d ∈ 0..=n`).
    pub n: usize,
    /// Number of processors = number of columns.
    pub p: usize,
    /// Cost plane, `p * (n + 1)` values (skipped cells hold `+inf`).
    pub cost: Vec<f64>,
    /// Choice (backtrack) plane, same shape.
    pub choice: Vec<u32>,
    /// Per-column contiguous computed prefix: cells `0..col_len[i]` of
    /// column `i` were evaluated (the top column, which only ever needs
    /// cell `n`, keeps `col_len[0] = 0`).
    pub col_len: Vec<usize>,
}

impl DpPlane {
    /// A fresh plane for `p` processors and `n` items. Cell contents are
    /// unspecified (see the type docs); `col_len` is all zeros.
    pub fn new(p: usize, n: usize) -> DpPlane {
        let cells = p * (n + 1);
        let (cost, choice) = match PLANE_POOL.lock() {
            Ok(mut slot) => match slot.take() {
                Some((mut c, mut ch)) if c.len() >= cells && ch.len() >= cells => {
                    c.truncate(cells);
                    ch.truncate(cells);
                    (c, ch)
                }
                _ => (vec![0.0; cells], vec![0; cells]),
            },
            Err(_) => (vec![0.0; cells], vec![0; cells]),
        };
        DpPlane { n, p, cost, choice, col_len: vec![0; p] }
    }

    /// Cells per column.
    #[inline]
    pub fn stride(&self) -> usize {
        self.n + 1
    }

    /// Cost column `i` (all `n + 1` cells, computed or not).
    #[inline]
    pub fn col(&self, i: usize) -> &[f64] {
        let s = self.stride();
        &self.cost[i * s..(i + 1) * s]
    }

    /// Choice column `i`.
    #[inline]
    pub fn choice_col(&self, i: usize) -> &[u32] {
        let s = self.stride();
        &self.choice[i * s..(i + 1) * s]
    }
}

impl Drop for DpPlane {
    /// Parks the buffers in [`PLANE_POOL`] for the next solve. The slot
    /// keeps whichever pair is larger, so a burst of small solves cannot
    /// evict a big reusable buffer.
    fn drop(&mut self) {
        let cost = std::mem::take(&mut self.cost);
        let choice = std::mem::take(&mut self.choice);
        if let Ok(mut slot) = PLANE_POOL.lock() {
            let incumbent = slot.as_ref().map_or(0, |(c, _)| c.len());
            if cost.len() > incumbent {
                *slot = Some((cost, choice));
            }
        }
    }
}

/// One Algorithm-1 cell: scan every candidate `e ∈ 0..=d`.
///
/// Returns `(cost[d, i], choice[d, i])`.
#[inline]
pub(crate) fn basic_cell(comm: &[f64], comp: &[f64], prev: &[f64], d: usize) -> (f64, u32) {
    let mut best_e = 0usize;
    let mut best = f64::INFINITY;
    for e in 0..=d {
        let m = comm[e] + f64::max(comp[e], prev[d - e]);
        if m < best {
            best = m;
            best_e = e;
        }
    }
    (best, best_e as u32)
}

/// One Algorithm-2 cell over the candidate window `lo..=lim`
/// (`lo <= lim <= d`); requires `comm`/`comp` non-decreasing.
///
/// Structure (identical to the paper's Algorithm 2 when `lo = 0`,
/// `lim = d`):
///
/// 1. if `Tcomp` dominates the suffix even at the smallest candidate, the
///    candidate value is non-decreasing over the whole window and `lo`
///    wins outright;
/// 2. if the suffix dominates even at the largest candidate, start the
///    downward scan from `lim`;
/// 3. otherwise binary-search the smallest `e` with
///    `Tcomp(i,e) >= cost[d-e, i+1]` and scan downward from there, with
///    the early exit `suffix >= min` (adding `Tcomm >= 0` cannot help).
#[inline]
pub(crate) fn optimized_cell(
    comm: &[f64],
    comp: &[f64],
    prev: &[f64],
    d: usize,
    lo: usize,
    lim: usize,
) -> (f64, u32) {
    debug_assert!(lo <= lim && lim <= d);
    let (mut sol, mut min);
    if comp[lo] >= prev[d - lo] {
        // Even the smallest candidate computes no sooner than the suffix:
        // the max is always Tcomp, so the best move is e = lo.
        return (comm[lo] + comp[lo], lo as u32);
    } else if comp[lim] < prev[d - lim] {
        // Even the largest candidate computes faster than the smallest
        // suffix: the max is always the suffix cost.
        sol = lim;
        min = comm[lim] + prev[d - lim];
    } else {
        // Binary search for the smallest e with
        // Tcomp(i,e) >= cost[d-e, i+1]; the invariant holds at the
        // bounds by the two branches above.
        let (mut emin, mut emax) = (lo, lim);
        let mut e = (lo + lim) / 2;
        while e != emin {
            if comp[e] < prev[d - e] {
                emin = e;
            } else {
                emax = e;
            }
            e = (emin + emax) / 2;
        }
        sol = emax;
        min = comm[emax] + comp[emax];
    }
    // Downward scan over the region where the suffix dominates.
    let mut e = sol;
    while e > lo {
        e -= 1;
        let suffix = prev[d - e];
        let m = comm[e] + suffix;
        if m < min {
            sol = e;
            min = m;
        } else if suffix >= min {
            break;
        }
    }
    (min, sol as u32)
}

/// Smallest `e ∈ lo..=hi` with `Tcomp(i,e) >= cost[d-e, i+1]`, or
/// `hi + 1` when none. Requires `hi <= d` and the predicate monotone
/// over the range (false… then true…), which holds whenever `comp` and
/// `prev` are non-decreasing.
#[inline]
pub(crate) fn crossing(comp: &[f64], prev: &[f64], d: usize, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi + 1 && hi <= d);
    let (mut a, mut b) = (lo, hi + 1);
    while a < b {
        let m = (a + b) / 2;
        if comp[m] >= prev[d - m] {
            b = m;
        } else {
            a = m + 1;
        }
    }
    a
}

/// One divide-and-conquer cell, given its crossing point `c`
/// (`c > d` encodes "no crossing"). Performs exactly the comparisons
/// [`optimized_cell`] performs over the full window `0..=d` once its
/// binary search has located `c`, so the result — value, choice and
/// tie-break — is bit-identical to Algorithm 2's cell.
#[inline]
pub(crate) fn dc_cell(comm: &[f64], comp: &[f64], prev: &[f64], d: usize, c: usize) -> (f64, u32) {
    let (mut sol, mut min);
    if c > d {
        // The suffix dominates even at the largest candidate.
        sol = d;
        min = comm[d] + prev[0];
    } else {
        sol = c;
        min = comm[c] + comp[c];
    }
    // Downward scan over the region where the suffix dominates, with
    // Algorithm 2's early exit (adding `Tcomm >= 0` cannot help).
    let mut e = sol;
    while e > 0 {
        e -= 1;
        let suffix = prev[d - e];
        let m = comm[e] + suffix;
        if m < min {
            sol = e;
            min = m;
        } else if suffix >= min {
            break;
        }
    }
    (min, sol as u32)
}

/// Fills the cells `start .. start + cost.len()` of one column by
/// divide and conquer over the monotone crossing point.
///
/// Two boundary binary searches pin down `c(start)` and `c(end)`; the
/// recursion then computes the middle cell's crossing inside
/// `[c(lo-end), c(hi-end)]` and halves both the cell range and the
/// crossing window, so the whole chunk spends `O(len + log n)`
/// comparator probes on crossings instead of Algorithm 2's
/// `O(len · log n)`. Requires `comm`, `comp` and `prev` non-decreasing
/// (the engine checks and falls back otherwise).
pub(crate) fn dc_chunk(
    comm: &[f64],
    comp: &[f64],
    prev: &[f64],
    start: usize,
    cost: &mut [f64],
    choice: &mut [u32],
) {
    let len = cost.len();
    debug_assert_eq!(len, choice.len());
    if len == 0 {
        return;
    }
    let end = start + len - 1;
    let clo = crossing(comp, prev, start, 0, start);
    let chi = if clo > end { clo } else { crossing(comp, prev, end, clo, end) };
    dc_range(comm, comp, prev, start, end, clo, chi, start, cost, choice);
}

/// Cell ranges at most this long are solved by [`dc_leaf`]'s sequential
/// sweep instead of recursing further. The recursion exists to narrow
/// crossing windows cheaply; below this size the sweep's
/// one-probe-per-cell sequential pass (cache-friendly, no call
/// overhead) beats further halving.
const DC_LEAF: usize = 4096;

/// Recursive core of [`dc_chunk`]: computes cells `s..=t` knowing
/// `clo <= c(s)` and (`c(t) <= chi` or `c(t) = t + 1`). `base` is the
/// cell index of `cost[0]`/`choice[0]`.
#[allow(clippy::too_many_arguments)]
fn dc_range(
    comm: &[f64],
    comp: &[f64],
    prev: &[f64],
    s: usize,
    t: usize,
    clo: usize,
    chi: usize,
    base: usize,
    cost: &mut [f64],
    choice: &mut [u32],
) {
    if s > t {
        return;
    }
    if t - s < DC_LEAF {
        return dc_leaf(comm, comp, prev, s, t, clo, chi, base, cost, choice);
    }
    let mid = (s + t) / 2;
    let hi = chi.min(mid);
    // `c(mid) >= clo` (monotone) and `c(mid) <= chi` unless there is no
    // crossing at `mid` at all — so a miss in `[clo, hi]` means none.
    let mut c = if clo > hi { hi + 1 } else { crossing(comp, prev, mid, clo, hi) };
    if c > hi {
        c = mid + 1;
    }
    let (v, e) = dc_cell(comm, comp, prev, mid, c);
    cost[mid - base] = v;
    choice[mid - base] = e;
    if mid > s {
        dc_range(comm, comp, prev, s, mid - 1, clo, c, base, cost, choice);
    }
    if mid < t {
        dc_range(comm, comp, prev, mid + 1, t, c, chi, base, cost, choice);
    }
}

/// Sequential leaf of the divide-and-conquer recursion: solves cells
/// `s..=t` in increasing order, advancing the crossing point by the
/// stronger stepwise bound `c(d) <= c(d+1) <= c(d) + 1` (both
/// inequalities follow from `comp` and `prev` being non-decreasing, the
/// same premise as the recursion's monotonicity). One boundary binary
/// search pins `c(s)` inside the inherited window `[clo, chi]`; every
/// later cell then needs exactly **one** comparator probe, in
/// near-sequential memory order — this sweep is where the kernel's
/// speed over Algorithm 2's per-cell `O(log n)` random-access binary
/// searches actually comes from.
#[allow(clippy::too_many_arguments)]
fn dc_leaf(
    comm: &[f64],
    comp: &[f64],
    prev: &[f64],
    s: usize,
    t: usize,
    clo: usize,
    chi: usize,
    base: usize,
    cost: &mut [f64],
    choice: &mut [u32],
) {
    // Slice hints: every index below is `<= t`, which lets the
    // optimizer hoist the bounds checks out of the hot loop.
    let comm = &comm[..=t];
    let comp = &comp[..=t];
    let prev = &prev[..=t];
    let hi = chi.min(s);
    let mut c = if clo > hi { hi + 1 } else { crossing(comp, prev, s, clo, hi) };
    if c > hi {
        c = s + 1;
    }
    let (v, e) = dc_cell(comm, comp, prev, s, c);
    cost[s - base] = v;
    choice[s - base] = e;
    for d in s + 1..=t {
        // `c` is `c(d − 1) ∈ [0, d]`; step it to `c(d) ∈ {c, c + 1}`.
        if c >= d {
            // No crossing at `d − 1` (`c == d`): test the one new
            // candidate `e = d`.
            c = if comp[d] >= prev[0] { d } else { d + 1 };
        } else {
            // The suffix grew past `Tcomp` at the old crossing iff the
            // predicate below holds; the stepwise bound guarantees
            // `c + 1 <= d` crosses then. Branchless: the predicate flips
            // in a data-dependent pattern, so a compare-and-add beats a
            // mispredicting branch.
            c += usize::from(comp[c] < prev[d - c]);
        }
        // The cell, fused inline (same comparisons in the same order as
        // [`dc_cell`], so values/choices/tie-breaks stay bit-identical).
        let (mut sol, mut min);
        if c > d {
            sol = d;
            min = comm[d] + prev[0];
        } else {
            sol = c;
            min = comm[c] + comp[c];
        }
        let mut e = sol;
        while e > 0 {
            e -= 1;
            let suffix = prev[d - e];
            let m = comm[e] + suffix;
            if m < min {
                sol = e;
                min = m;
            } else if suffix >= min {
                break;
            }
        }
        cost[d - base] = min;
        choice[d - base] = sol as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation of one cell restricted to `lo..=lim`.
    fn exhaustive_cell(
        comm: &[f64],
        comp: &[f64],
        prev: &[f64],
        d: usize,
        lo: usize,
        lim: usize,
    ) -> f64 {
        (lo..=lim)
            .map(|e| comm[e] + f64::max(comp[e], prev[d - e]))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn optimized_matches_exhaustive_on_windows() {
        // Non-decreasing comm/comp, non-decreasing prev (as the DP
        // guarantees); every window must agree with the brute scan.
        let comm: Vec<f64> = (0..=20).map(|x| 0.3 * x as f64).collect();
        let comp: Vec<f64> = (0..=20).map(|x| 0.7 * x as f64 + 0.1).collect();
        let prev: Vec<f64> = (0..=20).map(|x| 0.5 * x as f64 + 2.0).collect();
        for d in 0..=20usize {
            for lo in 0..=d {
                for lim in lo..=d {
                    let (v, e) = optimized_cell(&comm, &comp, &prev, d, lo, lim);
                    let want = exhaustive_cell(&comm, &comp, &prev, d, lo, lim);
                    assert_eq!(v, want, "d={d} lo={lo} lim={lim}");
                    assert!((lo..=lim).contains(&(e as usize)));
                }
            }
        }
    }

    #[test]
    fn basic_cell_scans_everything() {
        let comm = [0.0, 1.0, 2.0, 3.0];
        let comp = [5.0, 1.0, 0.5, 7.0]; // non-monotone is fine for Alg. 1
        let prev = [0.0, 2.0, 4.0, 6.0];
        let (v, e) = basic_cell(&comm, &comp, &prev, 3);
        let want = (0..=3)
            .map(|e| comm[e] + f64::max(comp[e], prev[3 - e]))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(v, want);
        assert_eq!(e, 2);
    }

    #[test]
    fn crossing_matches_linear_scan() {
        let comp: Vec<f64> = (0..=30).map(|x| 0.4 * x as f64).collect();
        let prev: Vec<f64> = (0..=30).map(|x| 0.25 * x as f64 + 1.0).collect();
        for d in 0..=30usize {
            let want = (0..=d).find(|&e| comp[e] >= prev[d - e]).unwrap_or(d + 1);
            assert_eq!(crossing(&comp, &prev, d, 0, d), want, "d={d}");
        }
    }

    #[test]
    fn dc_chunk_is_bit_identical_to_algorithm_2() {
        // Deterministic pseudo-random non-decreasing inputs (xorshift so
        // the test needs no RNG dependency), chunked at several offsets.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 257usize;
        let mut acc = |scale: f64| {
            let mut v = 0.0;
            (0..=n)
                .map(|_| {
                    v += next() * scale;
                    v
                })
                .collect::<Vec<f64>>()
        };
        let comm = acc(0.01);
        let comp = acc(1.0);
        let prev = acc(0.7);
        for chunk in [1usize, 7, 64, n + 1] {
            let mut cost = vec![f64::INFINITY; n + 1];
            let mut choice = vec![0u32; n + 1];
            for start in (0..=n).step_by(chunk) {
                let len = chunk.min(n + 1 - start);
                dc_chunk(
                    &comm,
                    &comp,
                    &prev,
                    start,
                    &mut cost[start..start + len],
                    &mut choice[start..start + len],
                );
            }
            for d in 0..=n {
                let (v, e) = optimized_cell(&comm, &comp, &prev, d, 0, d);
                assert_eq!(cost[d].to_bits(), v.to_bits(), "chunk={chunk} d={d}");
                assert_eq!(choice[d], e, "chunk={chunk} d={d}");
            }
        }
    }

    #[test]
    fn dc_plane_layout_is_column_major() {
        let mut plane = DpPlane::new(3, 4);
        assert_eq!(plane.stride(), 5);
        assert_eq!(plane.cost.len(), 15);
        plane.cost[2 * 5 + 3] = 42.0;
        plane.choice[2 * 5 + 3] = 7;
        assert_eq!(plane.col(2)[3], 42.0);
        assert_eq!(plane.choice_col(2)[3], 7);
    }

    #[test]
    fn full_window_ties_resolve_like_algorithm_2() {
        // With equal candidate values the downward scan keeps the first
        // strictly-smaller candidate; full-window calls must behave like
        // the original Algorithm 2 cell (lowest index among ties found on
        // the way down only if strictly better).
        let comm = [0.0, 0.0, 0.0];
        let comp = [1.0, 1.0, 1.0];
        let prev = [1.0, 1.0, 1.0];
        let (v, e) = optimized_cell(&comm, &comp, &prev, 2, 0, 2);
        assert_eq!(v, 1.0);
        // comp[0] >= prev[2] holds, so the first branch fires with e = 0.
        assert_eq!(e, 0);
    }
}
