//! Shared per-cell kernels of the two dynamic programs.
//!
//! Both Algorithm 1 ([`crate::dp_basic`]) and Algorithm 2
//! ([`crate::dp_optimized`]) fill a table column by column:
//! `cost[d, i] = min_e Tcomm(i,e) + max(Tcomp(i,e), cost[d-e, i+1])`,
//! where column `i` depends only on column `i+1`. The per-cell work is
//! factored out here so the serial solvers, the multi-threaded engine
//! ([`crate::parallel`]) and the pruned variant all execute the *same
//! floating-point operations in the same order* — which is what makes
//! their results bit-identical, a property the test-suite enforces.
//!
//! [`optimized_cell`] generalizes Algorithm 2's cell to a candidate
//! window `lo..=lim`: with `(lo, lim) = (0, d)` it reduces exactly to the
//! paper's Algorithm 2, and the upper-bound pruning path narrows the
//! window without disturbing the operations performed inside it.

/// The largest supported item count: counts are reconstructed through a
/// `u32` choice table.
pub(crate) const MAX_ITEMS: usize = u32::MAX as usize;

/// One Algorithm-1 cell: scan every candidate `e ∈ 0..=d`.
///
/// Returns `(cost[d, i], choice[d, i])`.
#[inline]
pub(crate) fn basic_cell(comm: &[f64], comp: &[f64], prev: &[f64], d: usize) -> (f64, u32) {
    let mut best_e = 0usize;
    let mut best = f64::INFINITY;
    for e in 0..=d {
        let m = comm[e] + f64::max(comp[e], prev[d - e]);
        if m < best {
            best = m;
            best_e = e;
        }
    }
    (best, best_e as u32)
}

/// One Algorithm-2 cell over the candidate window `lo..=lim`
/// (`lo <= lim <= d`); requires `comm`/`comp` non-decreasing.
///
/// Structure (identical to the paper's Algorithm 2 when `lo = 0`,
/// `lim = d`):
///
/// 1. if `Tcomp` dominates the suffix even at the smallest candidate, the
///    candidate value is non-decreasing over the whole window and `lo`
///    wins outright;
/// 2. if the suffix dominates even at the largest candidate, start the
///    downward scan from `lim`;
/// 3. otherwise binary-search the smallest `e` with
///    `Tcomp(i,e) >= cost[d-e, i+1]` and scan downward from there, with
///    the early exit `suffix >= min` (adding `Tcomm >= 0` cannot help).
#[inline]
pub(crate) fn optimized_cell(
    comm: &[f64],
    comp: &[f64],
    prev: &[f64],
    d: usize,
    lo: usize,
    lim: usize,
) -> (f64, u32) {
    debug_assert!(lo <= lim && lim <= d);
    let (mut sol, mut min);
    if comp[lo] >= prev[d - lo] {
        // Even the smallest candidate computes no sooner than the suffix:
        // the max is always Tcomp, so the best move is e = lo.
        return (comm[lo] + comp[lo], lo as u32);
    } else if comp[lim] < prev[d - lim] {
        // Even the largest candidate computes faster than the smallest
        // suffix: the max is always the suffix cost.
        sol = lim;
        min = comm[lim] + prev[d - lim];
    } else {
        // Binary search for the smallest e with
        // Tcomp(i,e) >= cost[d-e, i+1]; the invariant holds at the
        // bounds by the two branches above.
        let (mut emin, mut emax) = (lo, lim);
        let mut e = (lo + lim) / 2;
        while e != emin {
            if comp[e] < prev[d - e] {
                emin = e;
            } else {
                emax = e;
            }
            e = (emin + emax) / 2;
        }
        sol = emax;
        min = comm[emax] + comp[emax];
    }
    // Downward scan over the region where the suffix dominates.
    let mut e = sol;
    while e > lo {
        e -= 1;
        let suffix = prev[d - e];
        let m = comm[e] + suffix;
        if m < min {
            sol = e;
            min = m;
        } else if suffix >= min {
            break;
        }
    }
    (min, sol as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation of one cell restricted to `lo..=lim`.
    fn exhaustive_cell(
        comm: &[f64],
        comp: &[f64],
        prev: &[f64],
        d: usize,
        lo: usize,
        lim: usize,
    ) -> f64 {
        (lo..=lim)
            .map(|e| comm[e] + f64::max(comp[e], prev[d - e]))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn optimized_matches_exhaustive_on_windows() {
        // Non-decreasing comm/comp, non-decreasing prev (as the DP
        // guarantees); every window must agree with the brute scan.
        let comm: Vec<f64> = (0..=20).map(|x| 0.3 * x as f64).collect();
        let comp: Vec<f64> = (0..=20).map(|x| 0.7 * x as f64 + 0.1).collect();
        let prev: Vec<f64> = (0..=20).map(|x| 0.5 * x as f64 + 2.0).collect();
        for d in 0..=20usize {
            for lo in 0..=d {
                for lim in lo..=d {
                    let (v, e) = optimized_cell(&comm, &comp, &prev, d, lo, lim);
                    let want = exhaustive_cell(&comm, &comp, &prev, d, lo, lim);
                    assert_eq!(v, want, "d={d} lo={lo} lim={lim}");
                    assert!((lo..=lim).contains(&(e as usize)));
                }
            }
        }
    }

    #[test]
    fn basic_cell_scans_everything() {
        let comm = [0.0, 1.0, 2.0, 3.0];
        let comp = [5.0, 1.0, 0.5, 7.0]; // non-monotone is fine for Alg. 1
        let prev = [0.0, 2.0, 4.0, 6.0];
        let (v, e) = basic_cell(&comm, &comp, &prev, 3);
        let want = (0..=3)
            .map(|e| comm[e] + f64::max(comp[e], prev[3 - e]))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(v, want);
        assert_eq!(e, 2);
    }

    #[test]
    fn full_window_ties_resolve_like_algorithm_2() {
        // With equal candidate values the downward scan keeps the first
        // strictly-smaller candidate; full-window calls must behave like
        // the original Algorithm 2 cell (lowest index among ties found on
        // the way down only if strictly better).
        let comm = [0.0, 0.0, 0.0];
        let comp = [1.0, 1.0, 1.0];
        let prev = [1.0, 1.0, 1.0];
        let (v, e) = optimized_cell(&comm, &comp, &prev, 2, 0, 2);
        assert_eq!(v, 1.0);
        // comp[0] >= prev[2] holds, so the first branch fires with e = 0.
        assert_eq!(e, 0);
    }
}
