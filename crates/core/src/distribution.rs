//! Evaluation of a data distribution under the single-port model
//! (Eq. 1 and Eq. 2 of the paper) and the uniform baseline.
//!
//! All functions here take processors **in scatter order** (the order the
//! root serves them, root last) and counts aligned with that order. The
//! [`crate::planner`] module handles the mapping between index order and
//! scatter order.

use crate::cost::Processor;

/// Per-processor schedule of one scatter + compute phase, in scatter order.
///
/// For processor `i` (0-based, in scatter order):
/// * its block transfer occupies `[comm_start[i], comm_end[i]]` on the
///   root's single output port,
/// * it computes during `[comm_end[i], finish[i]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// When the root starts sending to each processor.
    pub comm_start: Vec<f64>,
    /// When each processor has fully received its block (= compute start).
    pub comm_end: Vec<f64>,
    /// When each processor finishes computing (Eq. 1).
    pub finish: Vec<f64>,
}

impl Timeline {
    /// The overall makespan (Eq. 2).
    pub fn makespan(&self) -> f64 {
        self.finish.iter().copied().fold(0.0, f64::max)
    }

    /// Earliest per-processor finish time.
    pub fn min_finish(&self) -> f64 {
        self.finish.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Total idle time: for each processor, the time between the start of
    /// the operation and the moment its data starts flowing — the area of
    /// the "stair effect" of Fig. 1 — plus any wait after finishing until
    /// the global makespan.
    pub fn total_idle(&self) -> f64 {
        let t = self.makespan();
        self.comm_start
            .iter()
            .zip(&self.finish)
            .map(|(s, f)| s + (t - f))
            .sum()
    }

    /// Load-imbalance ratio: `(max finish − min finish) / max finish`,
    /// the "maximum difference in finish times" metric quoted in §5.2
    /// (6% for Fig. 3, about 10% for Fig. 4).
    pub fn imbalance(&self) -> f64 {
        let max = self.makespan();
        if max == 0.0 {
            0.0
        } else {
            (max - self.min_finish()) / max
        }
    }
}

/// Computes the full [`Timeline`] of a distribution (Eq. 1).
///
/// `procs` and `counts` are in scatter order, root last.
///
/// # Panics
/// Panics if `procs` and `counts` have different lengths.
pub fn timeline(procs: &[&Processor], counts: &[usize]) -> Timeline {
    assert_eq!(procs.len(), counts.len(), "one count per processor");
    let p = procs.len();
    let mut comm_start = Vec::with_capacity(p);
    let mut comm_end = Vec::with_capacity(p);
    let mut finish = Vec::with_capacity(p);
    let mut clock = 0.0f64; // root's outgoing-port availability
    for i in 0..p {
        comm_start.push(clock);
        clock += procs[i].comm.eval(counts[i]);
        comm_end.push(clock);
        finish.push(clock + procs[i].comp.eval(counts[i]));
    }
    Timeline { comm_start, comm_end, finish }
}

/// Per-processor finish times `T_i` (Eq. 1), in scatter order.
pub fn finish_times(procs: &[&Processor], counts: &[usize]) -> Vec<f64> {
    timeline(procs, counts).finish
}

/// The makespan `T = max_i T_i` (Eq. 2) of a distribution.
pub fn makespan(procs: &[&Processor], counts: &[usize]) -> f64 {
    timeline(procs, counts).makespan()
}

/// The `MPI_Scatter` baseline: `floor(n/p)` items each, with the remainder
/// spread one item at a time over the first `n mod p` processors (in
/// scatter order), mirroring how the original application padded its
/// uniform distribution.
pub fn uniform_distribution(p: usize, n: usize) -> Vec<usize> {
    assert!(p > 0, "at least one processor");
    let base = n / p;
    let rem = n % p;
    (0..p).map(|i| base + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    fn procs3() -> Vec<Processor> {
        vec![
            Processor::linear("p1", 1.0, 2.0),
            Processor::linear("p2", 2.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ]
    }

    #[test]
    fn timeline_matches_hand_computation() {
        let ps = procs3();
        let view: Vec<&Processor> = ps.iter().collect();
        // counts: 3, 2, 1
        // P1: comm [0,3], comp ends 3 + 6 = 9
        // P2: comm [3,7], comp ends 7 + 2 = 9
        // root: comm [7,7], comp ends 7 + 1 = 8
        let tl = timeline(&view, &[3, 2, 1]);
        assert_eq!(tl.comm_start, vec![0.0, 3.0, 7.0]);
        assert_eq!(tl.comm_end, vec![3.0, 7.0, 7.0]);
        assert_eq!(tl.finish, vec![9.0, 9.0, 8.0]);
        assert_eq!(tl.makespan(), 9.0);
        assert_eq!(tl.min_finish(), 8.0);
    }

    #[test]
    fn finish_times_equal_eq1() {
        let ps = procs3();
        let view: Vec<&Processor> = ps.iter().collect();
        let counts = [5usize, 4, 3];
        let ft = finish_times(&view, &counts);
        // Direct Eq. (1) evaluation.
        for i in 0..3 {
            let comm_sum: f64 = (0..=i).map(|j| view[j].comm.eval(counts[j])).sum();
            let expect = comm_sum + view[i].comp.eval(counts[i]);
            assert!((ft[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_distribution_all_zero() {
        let ps = procs3();
        let view: Vec<&Processor> = ps.iter().collect();
        let tl = timeline(&view, &[0, 0, 0]);
        assert_eq!(tl.makespan(), 0.0);
        assert_eq!(tl.imbalance(), 0.0);
    }

    #[test]
    fn uniform_distribution_spreads_remainder() {
        assert_eq!(uniform_distribution(4, 8), vec![2, 2, 2, 2]);
        assert_eq!(uniform_distribution(4, 10), vec![3, 3, 2, 2]);
        assert_eq!(uniform_distribution(3, 2), vec![1, 1, 0]);
        assert_eq!(uniform_distribution(1, 7), vec![7]);
        let d = uniform_distribution(16, 817_101);
        assert_eq!(d.iter().sum::<usize>(), 817_101);
        assert!(d.iter().all(|&c| c == 51068 || c == 51069));
    }

    #[test]
    fn idle_time_measures_stair() {
        let ps = [Processor::linear("a", 1.0, 0.0),
            Processor::linear("b", 1.0, 0.0),
            Processor::linear("root", 0.0, 0.0)];
        let view: Vec<&Processor> = ps.iter().collect();
        // a: comm [0,2] finish 2; b: comm [2,4] finish 4; root finish 4.
        let tl = timeline(&view, &[2, 2, 0]);
        // idle = (0 + 2) + (2 + 0) + (4 + 0) = 8
        assert_eq!(tl.total_idle(), 8.0);
    }

    #[test]
    fn imbalance_metric() {
        let ps = procs3();
        let view: Vec<&Processor> = ps.iter().collect();
        let tl = timeline(&view, &[3, 2, 1]);
        assert!((tl.imbalance() - (9.0 - 8.0) / 9.0).abs() < 1e-12);
    }
}
