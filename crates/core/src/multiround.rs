//! Multi-round planning for iterative SPMD codes.
//!
//! The paper plans one scatter. Real tomography codes iterate: trace,
//! update the model, re-scatter (§2.1's "new velocity model" step). This
//! module plans a *sequence* of scatter+compute rounds, optionally
//! re-querying the platform before each round — the monitoring-daemon
//! usage §3 sketches ("a monitor daemon process (like \[NWS\]) running aside
//! the application could be queried just before a scatter operation to
//! retrieve the instantaneous grid characteristics").

use crate::cost::Platform;
use crate::error::PlanError;
use crate::planner::{Plan, Planner};

/// A planned sequence of rounds.
#[derive(Debug, Clone)]
pub struct MultiRoundPlan {
    /// One plan per round.
    pub rounds: Vec<Plan>,
    /// Predicted completion time of each round (cumulative): round `k`
    /// starts when round `k-1` is fully finished — the paper's
    /// no-overlap communication structure.
    pub round_ends: Vec<f64>,
}

impl MultiRoundPlan {
    /// Predicted total duration of all rounds.
    pub fn predicted_total(&self) -> f64 {
        self.round_ends.last().copied().unwrap_or(0.0)
    }
}

/// Plans `round_sizes.len()` rounds on a fixed platform, reusing the same
/// planner configuration for each.
///
/// ```
/// use gs_scatter::cost::{Platform, Processor};
/// use gs_scatter::multiround::plan_rounds;
/// use gs_scatter::planner::Planner;
///
/// let platform = Platform::new(vec![
///     Processor::linear("root", 0.0, 0.01),
///     Processor::linear("w", 1e-4, 0.004),
/// ], 0).unwrap();
/// let mp = plan_rounds(&Planner::new(platform), &[1000, 2000]).unwrap();
/// assert_eq!(mp.rounds.len(), 2);
/// assert!(mp.predicted_total() > 0.0);
/// ```
pub fn plan_rounds(planner: &Planner, round_sizes: &[usize]) -> Result<MultiRoundPlan, PlanError> {
    plan_rounds_with(round_sizes, |_round, _start| Ok(planner.clone()))
}

/// Plans rounds with a fresh planner per round: `make_planner(round,
/// predicted_start_time)` may rebuild the platform from a monitor's
/// instantaneous rates (adaptive re-balancing).
pub fn plan_rounds_with(
    round_sizes: &[usize],
    mut make_planner: impl FnMut(usize, f64) -> Result<Planner, PlanError>,
) -> Result<MultiRoundPlan, PlanError> {
    let mut rounds = Vec::with_capacity(round_sizes.len());
    let mut round_ends = Vec::with_capacity(round_sizes.len());
    let mut clock = 0.0f64;
    for (k, &n) in round_sizes.iter().enumerate() {
        let planner = make_planner(k, clock)?;
        let plan = planner.plan(n)?;
        clock += plan.predicted_makespan;
        round_ends.push(clock);
        rounds.push(plan);
    }
    Ok(MultiRoundPlan { rounds, round_ends })
}

/// Convenience: plans `rounds` identical rounds of `n` items and reuses
/// the first plan (static platforms make re-solving pointless). Returns
/// the single plan plus the predicted total.
pub fn plan_identical_rounds(
    planner: &Planner,
    n: usize,
    rounds: usize,
) -> Result<(Plan, f64), PlanError> {
    let plan = planner.plan(n)?;
    let total = plan.predicted_makespan * rounds as f64;
    Ok((plan, total))
}

/// Re-plans a platform whose processor compute rates are scaled by
/// instantaneous load factors (`>= 1` = slowed down), as reported by a
/// monitor. Returns a platform with adjusted compute costs.
pub fn platform_under_load(platform: &Platform, load_factors: &[f64]) -> Result<Platform, PlanError> {
    if load_factors.len() != platform.len() {
        return Err(PlanError::InvalidPlatform(format!(
            "need one load factor per processor ({} != {})",
            load_factors.len(),
            platform.len()
        )));
    }
    let procs = platform
        .procs()
        .iter()
        .zip(load_factors)
        .map(|(p, &f)| {
            assert!(f.is_finite() && f > 0.0, "invalid load factor {f}");
            let mut p = p.clone();
            p.comp = scale_cost(&p.comp, f);
            p
        })
        .collect();
    Platform::new(procs, platform.root())
}

fn scale_cost(cost: &crate::cost::CostFn, factor: f64) -> crate::cost::CostFn {
    use crate::cost::CostFn;
    match cost {
        // Zero stays zero under any scaling.
        CostFn::Zero => CostFn::Zero,
        CostFn::Linear { slope } => CostFn::Linear { slope: slope * factor },
        CostFn::Affine { intercept, slope } => CostFn::Affine {
            intercept: intercept * factor,
            slope: slope * factor,
        },
        CostFn::Table { points } => CostFn::table(
            points.iter().map(|&(x, y)| (x, y * factor)).collect(),
        ),
        CostFn::Custom(f) => {
            let f = f.clone();
            CostFn::Custom(std::sync::Arc::new(move |x| f(x) * factor))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;
    use crate::planner::Strategy;

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("root", 0.0, 0.01),
                Processor::linear("w1", 1e-4, 0.004),
                Processor::linear("w2", 2e-4, 0.016),
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn rounds_accumulate() {
        let planner = Planner::new(platform()).strategy(Strategy::Heuristic);
        let mp = plan_rounds(&planner, &[1000, 2000, 500]).unwrap();
        assert_eq!(mp.rounds.len(), 3);
        assert!(mp.round_ends.windows(2).all(|w| w[1] > w[0]));
        let sum: f64 = mp.rounds.iter().map(|p| p.predicted_makespan).sum();
        assert!((mp.predicted_total() - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_rounds() {
        let planner = Planner::new(platform());
        let mp = plan_rounds(&planner, &[]).unwrap();
        assert_eq!(mp.predicted_total(), 0.0);
    }

    #[test]
    fn identical_rounds_shortcut() {
        let planner = Planner::new(platform()).strategy(Strategy::ClosedForm);
        let (plan, total) = plan_identical_rounds(&planner, 1000, 4).unwrap();
        assert!((total - 4.0 * plan.predicted_makespan).abs() < 1e-12);
    }

    #[test]
    fn adaptive_replanning_shifts_work() {
        // Round 1: w1 unloaded. Round 2: w1 slowed 4x; the adaptive plan
        // must give it less work.
        let base = platform();
        let mp = plan_rounds_with(&[10_000, 10_000], |round, _start| {
            let factors = if round == 0 {
                vec![1.0, 1.0, 1.0]
            } else {
                vec![1.0, 4.0, 1.0]
            };
            Ok(Planner::new(platform_under_load(&base, &factors)?)
                .strategy(Strategy::Heuristic))
        })
        .unwrap();
        assert!(
            mp.rounds[1].counts[1] < mp.rounds[0].counts[1],
            "loaded machine must receive less: {:?} vs {:?}",
            mp.rounds[1].counts,
            mp.rounds[0].counts
        );
    }

    #[test]
    fn adaptive_beats_static_under_load() {
        // Predicted totals: re-planning under load beats keeping the
        // unloaded plan (evaluated on the loaded platform).
        let base = platform();
        let loaded = platform_under_load(&base, &[1.0, 3.0, 1.0]).unwrap();
        let static_plan = Planner::new(base).strategy(Strategy::Heuristic).plan(10_000).unwrap();
        // Evaluate the static counts on the loaded platform.
        let view = loaded.ordered(&static_plan.order);
        let static_on_loaded =
            crate::distribution::makespan(&view, &static_plan.counts_in_order());
        let adaptive = Planner::new(loaded).strategy(Strategy::Heuristic).plan(10_000).unwrap();
        assert!(adaptive.predicted_makespan < static_on_loaded);
    }

    #[test]
    fn load_scaling_applies_to_all_cost_shapes() {
        use crate::cost::CostFn;
        let lin = scale_cost(&CostFn::Linear { slope: 2.0 }, 3.0);
        assert_eq!(lin.eval(10), 60.0);
        let aff = scale_cost(&CostFn::Affine { intercept: 1.0, slope: 2.0 }, 2.0);
        assert_eq!(aff.eval(10), 42.0);
        let tab = scale_cost(&CostFn::table(vec![(10, 5.0)]), 2.0);
        assert_eq!(tab.eval(10), 10.0);
        let cus = scale_cost(&CostFn::Custom(std::sync::Arc::new(|x| x as f64)), 5.0);
        assert_eq!(cus.eval(3), 15.0);
        assert_eq!(scale_cost(&CostFn::Zero, 9.0).eval(100), 0.0);
    }

    #[test]
    fn rejects_bad_factors() {
        assert!(platform_under_load(&platform(), &[1.0]).is_err());
    }
}
