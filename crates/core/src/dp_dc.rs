//! The divide-and-conquer exact dynamic program: Algorithm 2's answer in
//! `O(p·n log n)` for **non-decreasing** cost functions, with an
//! automatic fallback that keeps arbitrary costs correct.
//!
//! Algorithm 2 speeds up each cell of the recurrence
//! `cost[d,i] = min_e Tcomm(i,e) + max(Tcomp(i,e), cost[d-e, i+1])` by
//! binary-searching the *crossing point* `c(d)` — the smallest `e` with
//! `Tcomp(i,e) >= cost[d-e, i+1]` — and scanning downward from it. That
//! is `O(log n)` cache-hostile probes per cell, `O(n log n)` per column
//! just to re-derive information the column already contains: because
//! `Tcomp` is non-decreasing in `e` and the previous column is
//! non-decreasing in `d`, the crossing moves by at most one step per
//! cell (`c(d) <= c(d+1) <= c(d) + 1`). This kernel exploits that
//! monotonicity with divide and conquer: compute the crossing of the
//! middle cell inside the window bounded by its neighbours' crossings,
//! then recurse on both halves with halved windows — `O(n + log n)`
//! probes for a whole range of cells. Every cell is then evaluated with
//! exactly the comparisons Algorithm 2 performs after its binary search,
//! so counts, makespans and tie-breaks are **bit-identical** to
//! [`crate::dp_optimized`] (and therefore to [`crate::dp_basic`]) — a
//! property the test-suite enforces.
//!
//! The monotonicity this rests on is checked at run time, twice:
//!
//! * at solve entry, exactly, on the tabulated costs — cost functions
//!   that are not non-decreasing demote the whole solve to the
//!   assumption-free Algorithm-1 kernel (counted by
//!   `dp_dc_fallbacks_total`), so arbitrary costs return the same
//!   correct answer [`crate::dp_basic`] would;
//! * per column, defensively, on the previous column's values — by
//!   induction these are always non-decreasing for non-decreasing
//!   costs, but a violation (which would indicate a floating-point
//!   surprise, not an expected input) demotes just that column to the
//!   full-scan kernel (counted by `dp_dc_column_fallbacks_total`).
//!
//! The per-cell work lives in `dp_kernel`, the column sweep in
//! [`crate::parallel`] (each crossbeam chunk runs its own D&C
//! recursion); this module is the serial single-call facade.
//! Multi-threaded solves
//! ([`crate::parallel::optimal_distribution_dc_parallel`]) are
//! bit-identical to this entry point — see `docs/performance.md` for the
//! kernel hierarchy and measured speedups.

use crate::cost::Processor;
use crate::cost_table::CostTable;
use crate::dp_basic::DpSolution;
use crate::error::PlanError;
use crate::parallel::{self, Algo, ParallelOpts};

/// Computes an optimal distribution of `n` items over `procs` (in scatter
/// order, root last) — divide-and-conquer kernel.
///
/// ```
/// use gs_scatter::cost::Processor;
/// use gs_scatter::dp_dc::optimal_distribution_dc;
///
/// let procs = vec![
///     Processor::linear("worker", 0.1, 1.0),
///     Processor::linear("root", 0.0, 2.0),
/// ];
/// let view: Vec<&Processor> = procs.iter().collect();
/// let sol = optimal_distribution_dc(&view, 30).unwrap();
/// assert_eq!(sol.counts.iter().sum::<usize>(), 30);
/// // The faster worker carries more than the root.
/// assert!(sol.counts[0] > sol.counts[1]);
/// ```
///
/// Unlike [`crate::dp_optimized::optimal_distribution`], cost functions
/// that are not non-decreasing are *not* an error here: the solve
/// silently falls back to the Algorithm-1 kernel and still returns the
/// exact optimum.
pub fn optimal_distribution_dc(procs: &[&Processor], n: usize) -> Result<DpSolution, PlanError> {
    optimal_distribution_dc_with(&CostTable::new(), procs, n)
}

/// [`optimal_distribution_dc`] with cost tabulations served from (and
/// stored into) a shared [`CostTable`] — use for repeated solves on the
/// same platform (bench sweeps, root selection).
pub fn optimal_distribution_dc_with(
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
) -> Result<DpSolution, PlanError> {
    parallel::solve(Algo::Dc, table, procs, n, &ParallelOpts::serial()).map(|(sol, _)| sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostFn, Processor};
    use crate::dp_basic::optimal_distribution_basic;
    use crate::dp_optimized::optimal_distribution;

    fn view(ps: &[Processor]) -> Vec<&Processor> {
        ps.iter().collect()
    }

    fn assert_matches_optimized(ps: &[Processor], ns: &[usize]) {
        let v = view(ps);
        for &n in ns {
            let dc = optimal_distribution_dc(&v, n).unwrap();
            let opt = optimal_distribution(&v, n).unwrap();
            assert_eq!(dc.counts, opt.counts, "n={n}: counts differ");
            assert_eq!(
                dc.makespan.to_bits(),
                opt.makespan.to_bits(),
                "n={n}: makespans differ ({} vs {})",
                dc.makespan,
                opt.makespan
            );
        }
    }

    #[test]
    fn bit_identical_to_algorithm_2_on_linear_platform() {
        let ps = vec![
            Processor::linear("a", 0.5, 2.0),
            Processor::linear("b", 1.0, 1.0),
            Processor::linear("c", 0.25, 4.0),
            Processor::linear("root", 0.0, 3.0),
        ];
        assert_matches_optimized(&ps, &(0..=40).collect::<Vec<_>>());
    }

    #[test]
    fn bit_identical_to_algorithm_2_on_affine_platform() {
        let ps = vec![
            Processor::affine("a", 0.4, 0.5, 0.9, 2.0),
            Processor::affine("b", 0.2, 1.0, 0.1, 1.0),
            Processor::affine("root", 0.0, 0.0, 0.0, 3.0),
        ];
        assert_matches_optimized(&ps, &(0..=25).collect::<Vec<_>>());
    }

    #[test]
    fn bit_identical_to_algorithm_2_on_tabulated_costs() {
        let ps = vec![
            Processor {
                name: "measured".into(),
                comm: CostFn::table(vec![(10, 1.0), (100, 8.0)]),
                comp: CostFn::table(vec![(10, 5.0), (50, 20.0), (100, 60.0)]),
            },
            Processor::linear("root", 0.0, 1.0),
        ];
        assert_matches_optimized(&ps, &[0, 1, 7, 20, 55, 120]);
    }

    #[test]
    fn non_monotone_costs_fall_back_to_algorithm_1() {
        // Algorithm 2 rejects these outright; the D&C kernel must
        // instead demote itself and match Algorithm 1 bit for bit.
        let ps = vec![
            Processor::custom("dec", |x| 10.0 - x as f64 * 0.01, |x| x as f64),
            Processor::linear("root", 0.0, 1.0),
        ];
        let v = view(&ps);
        assert!(matches!(
            optimal_distribution(&v, 10),
            Err(PlanError::NotIncreasing { proc: 0 })
        ));
        for n in [0usize, 1, 10, 64] {
            let dc = optimal_distribution_dc(&v, n).unwrap();
            let basic = optimal_distribution_basic(&v, n).unwrap();
            assert_eq!(dc.counts, basic.counts, "n={n}");
            assert_eq!(dc.makespan.to_bits(), basic.makespan.to_bits(), "n={n}");
        }
    }

    #[test]
    fn fallback_is_counted() {
        use crate::metrics::Registry;
        let count = || {
            Registry::global()
                .snapshot()
                .counters
                .iter()
                .find(|c| c.name == "dp_dc_fallbacks_total")
                .map_or(0, |c| c.value)
        };
        let ps = vec![
            Processor::custom("dec", |x| 10.0 - x as f64 * 0.01, |x| x as f64),
            Processor::linear("root", 0.0, 1.0),
        ];
        let before = count();
        optimal_distribution_dc(&view(&ps), 10).unwrap();
        assert!(count() > before, "demotion must tick dp_dc_fallbacks_total");
    }

    #[test]
    fn single_processor() {
        let ps = vec![Processor::linear("root", 0.0, 1.5)];
        let sol = optimal_distribution_dc(&view(&ps), 4).unwrap();
        assert_eq!(sol.counts, vec![4]);
        assert_eq!(sol.makespan, 6.0);
    }

    #[test]
    fn too_large_is_an_error_not_a_panic() {
        let ps = vec![Processor::linear("root", 0.0, 1.0)];
        let n = u32::MAX as usize + 1;
        assert!(matches!(
            optimal_distribution_dc(&view(&ps), n),
            Err(PlanError::TooLarge { max, .. }) if max == u32::MAX as usize
        ));
    }

    #[test]
    fn larger_n_smoke_is_bit_identical() {
        let ps = vec![
            Processor::linear("a", 1e-4, 2e-3),
            Processor::linear("b", 2e-4, 1e-3),
            Processor::linear("c", 5e-5, 4e-3),
            Processor::linear("root", 0.0, 3e-3),
        ];
        assert_matches_optimized(&ps, &[2000]);
    }
}
