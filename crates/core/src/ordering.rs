//! Processor ordering policies (RR-4770 §4.3–4.4, Theorem 3).
//!
//! The single-port root serves processors in rank order, so the order
//! matters: the time spent sending to `P_i` is paid by every processor
//! after it. Theorem 3 proves that, for linear costs and a rational
//! relaxation, the optimal order is **by decreasing bandwidth to the root**
//! (increasing comm slope `β`), root last; §4.4 extends this as a
//! guaranteed heuristic to the general case. §5.2's control experiment
//! uses the opposite (ascending-bandwidth) order, which is what
//! [`OrderPolicy::AscendingBandwidth`] reproduces.

use crate::cost::Platform;

/// Reference block size used to estimate the marginal per-item
/// communication cost of non-affine cost functions.
pub const EFFECTIVE_SLOPE_REF_ITEMS: usize = 10_000;

/// How to order the processors in the scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// The paper's policy (Theorem 3): decreasing bandwidth to the root
    /// (increasing per-item comm cost), root last.
    DescendingBandwidth,
    /// The §5.2 control: increasing bandwidth (decreasing per-item comm
    /// cost first... i.e. slowest links first), root last.
    AscendingBandwidth,
    /// Keep the platform's index order, with the root moved last.
    AsIs,
    /// Fastest CPU (smallest per-item compute cost) first — an ablation
    /// showing that CPU speed is the *wrong* sort key.
    FastestCpuFirst,
    /// A deterministic pseudo-random shuffle (xorshift with the given
    /// seed) — baseline for ordering studies.
    Random(u64),
}

/// Produces a scatter order — a permutation of processor indices with the
/// root last — according to `policy`.
pub fn scatter_order(platform: &Platform, policy: OrderPolicy) -> Vec<usize> {
    let root = platform.root();
    let mut others: Vec<usize> = (0..platform.len()).filter(|&i| i != root).collect();
    match policy {
        OrderPolicy::DescendingBandwidth => {
            sort_by_key_f64(&mut others, |i| {
                platform.procs()[i].comm.effective_slope(EFFECTIVE_SLOPE_REF_ITEMS)
            });
        }
        OrderPolicy::AscendingBandwidth => {
            sort_by_key_f64(&mut others, |i| {
                -platform.procs()[i].comm.effective_slope(EFFECTIVE_SLOPE_REF_ITEMS)
            });
        }
        OrderPolicy::AsIs => {}
        OrderPolicy::FastestCpuFirst => {
            sort_by_key_f64(&mut others, |i| {
                platform.procs()[i].comp.effective_slope(EFFECTIVE_SLOPE_REF_ITEMS)
            });
        }
        OrderPolicy::Random(seed) => shuffle(&mut others, seed),
    }
    others.push(root);
    others
}

/// Stable sort by an `f64` key (NaN-free by cost-function validation).
fn sort_by_key_f64(items: &mut [usize], key: impl Fn(usize) -> f64) {
    items.sort_by(|&a, &b| {
        key(a)
            .partial_cmp(&key(b))
            .expect("cost slopes must not be NaN")
    });
}

/// Deterministic Fisher–Yates with an xorshift64* generator, so the core
/// crate stays dependency-free.
fn shuffle(items: &mut [usize], seed: u64) {
    let mut state = seed.wrapping_mul(2685821657736338717).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(2685821657736338717);
        state
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Platform, Processor};

    fn platform() -> Platform {
        Platform::new(
            vec![
                Processor::linear("root", 0.0, 1.0),   // 0 (root)
                Processor::linear("slow-link", 3.0, 0.5), // 1
                Processor::linear("fast-link", 1.0, 2.0), // 2
                Processor::linear("mid-link", 2.0, 0.1),  // 3
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn descending_bandwidth_sorts_by_beta() {
        let order = scatter_order(&platform(), OrderPolicy::DescendingBandwidth);
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn ascending_bandwidth_is_reverse() {
        let order = scatter_order(&platform(), OrderPolicy::AscendingBandwidth);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn as_is_moves_root_last() {
        let order = scatter_order(&platform(), OrderPolicy::AsIs);
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn fastest_cpu_first() {
        let order = scatter_order(&platform(), OrderPolicy::FastestCpuFirst);
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn random_is_permutation_and_deterministic() {
        let a = scatter_order(&platform(), OrderPolicy::Random(42));
        let b = scatter_order(&platform(), OrderPolicy::Random(42));
        assert_eq!(a, b);
        assert_eq!(*a.last().unwrap(), 0, "root last even when shuffled");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Different seeds eventually differ.
        let c = scatter_order(&platform(), OrderPolicy::Random(7));
        let d = scatter_order(&platform(), OrderPolicy::Random(8));
        assert!(a != c || a != d || c != d);
    }

    #[test]
    fn ties_are_stable() {
        let plat = Platform::new(
            vec![
                Processor::linear("root", 0.0, 1.0),
                Processor::linear("a", 1.0, 1.0),
                Processor::linear("b", 1.0, 1.0),
                Processor::linear("c", 1.0, 1.0),
            ],
            0,
        )
        .unwrap();
        let order = scatter_order(&plat, OrderPolicy::DescendingBandwidth);
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn root_in_middle_of_indices() {
        let plat = Platform::new(
            vec![
                Processor::linear("a", 2.0, 1.0),
                Processor::linear("root", 0.0, 1.0),
                Processor::linear("b", 1.0, 1.0),
            ],
            1,
        )
        .unwrap();
        let order = scatter_order(&plat, OrderPolicy::DescendingBandwidth);
        assert_eq!(order, vec![2, 0, 1]);
    }
}
