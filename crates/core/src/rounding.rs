//! The rounding scheme of RR-4770 §3.3.
//!
//! Given a rational distribution `n_1..n_p` with `Σ n_i = n` (an integer),
//! produce an integer distribution `n'_1..n'_p` with `Σ n'_i = n` and
//! `|n'_i − n_i| < 1` for every `i`. That last property is exactly what the
//! guarantee proof (Eq. 4 and §4.4) needs.
//!
//! Scheme, as in the paper: repeatedly round the not-yet-fixed share that is
//! nearest to an integer *in the direction that cancels the accumulated
//! error* — to the nearest integer while the error is zero, to the floor
//! while the error is positive (we have over-allocated), to the ceiling
//! while it is negative. The final share absorbs the residual error, which
//! the loop keeps in `(-1, 1)`, so it also moves by less than one.

use gs_numeric::{BigInt, Rational};

/// Rounds rational shares (summing exactly to `n`) to integer counts.
///
/// ```
/// use gs_numeric::Rational;
/// use gs_scatter::rounding::round_shares;
///
/// let shares = vec![Rational::from_ratio(10, 3); 3]; // 3 × 10/3 = 10
/// let counts = round_shares(&shares, 10);
/// assert_eq!(counts.iter().sum::<usize>(), 10);
/// assert!(counts.iter().all(|&c| c == 3 || c == 4));
/// ```
///
/// # Panics
/// Panics if a share is negative or the shares do not sum to `n` — both
/// indicate a bug in the caller (the LP and the closed form always hand
/// over exact-sum, non-negative shares).
pub fn round_shares(shares: &[Rational], n: usize) -> Vec<usize> {
    assert!(!shares.is_empty(), "at least one share");
    let sum = shares.iter().fold(Rational::zero(), |acc, s| acc + s);
    assert_eq!(sum, Rational::from(n), "shares must sum exactly to n");
    assert!(shares.iter().all(|s| !s.is_negative()), "shares must be non-negative");

    let p = shares.len();
    let mut out: Vec<Option<BigInt>> = vec![None; p];
    let mut remaining: Vec<usize> = (0..p).collect();
    // Accumulated rounding error Σ (n'_i − n_i) over the fixed shares.
    let mut err = Rational::zero();

    while remaining.len() > 1 {
        // Pick the remaining share nearest to its rounding target.
        let (pos, rounded) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let x = &shares[i];
                let target: BigInt = if err.is_positive() {
                    x.floor()
                } else if err.is_negative() {
                    x.ceil()
                } else {
                    x.round()
                };
                let dist = (x - &Rational::from(target.clone())).abs();
                (pos, target, dist)
            })
            .min_by(|a, b| a.2.cmp(&b.2))
            .map(|(pos, target, _)| (pos, target))
            .expect("remaining is non-empty");
        let i = remaining.swap_remove(pos);
        err += &(&Rational::from(rounded.clone()) - &shares[i]);
        debug_assert!(err.abs() < Rational::one(), "error stays in (-1, 1)");
        out[i] = Some(rounded);
    }

    // Last share absorbs the residual error exactly.
    let k = remaining[0];
    let last = &shares[k] - &err;
    debug_assert!(last.is_integer(), "residual must be integral");
    debug_assert!((&last - &shares[k]).abs() < Rational::one());
    out[k] = Some(last.floor());

    out.into_iter()
        .map(|v| {
            let v = v.expect("all shares fixed");
            assert!(!v.is_negative(), "rounded share must be non-negative");
            v.to_i64().expect("share fits i64") as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn check(shares: &[Rational], n: usize) -> Vec<usize> {
        let counts = round_shares(shares, n);
        assert_eq!(counts.iter().sum::<usize>(), n, "sum preserved");
        for (c, s) in counts.iter().zip(shares) {
            let diff = (&Rational::from(*c) - s).abs();
            assert!(diff < Rational::one(), "|n'_i - n_i| < 1: {c} vs {s}");
        }
        counts
    }

    #[test]
    fn already_integral() {
        assert_eq!(check(&[r(3, 1), r(4, 1), r(5, 1)], 12), vec![3, 4, 5]);
    }

    #[test]
    fn single_share() {
        assert_eq!(check(&[r(7, 1)], 7), vec![7]);
    }

    #[test]
    fn simple_halves() {
        // 3/2 + 3/2 = 3: one rounds up, the other down.
        let counts = check(&[r(3, 2), r(3, 2)], 3);
        let mut sorted = counts.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn thirds() {
        let counts = check(&[r(10, 3), r(10, 3), r(10, 3)], 10);
        let mut sorted = counts;
        sorted.sort();
        assert_eq!(sorted, vec![3, 3, 4]);
    }

    #[test]
    fn nearest_is_rounded_first() {
        // 2.9 is nearest to an integer; it is rounded (to 3) first, then the
        // error forces the others down/up appropriately.
        let shares = vec![r(29, 10), r(5, 2), r(23, 5)]; // 2.9 + 2.5 + 4.6 = 10
        let counts = check(&shares, 10);
        assert_eq!(counts[0], 3);
    }

    #[test]
    fn tiny_shares_never_go_negative() {
        // 0.2 + 0.3 + 0.5 = 1
        let counts = check(&[r(1, 5), r(3, 10), r(1, 2)], 1);
        assert!(counts.iter().all(|&c| c <= 1));
    }

    #[test]
    fn zeros_stay_zero() {
        let counts = check(&[r(0, 1), r(7, 2), r(7, 2)], 7);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn many_random_like_fractions() {
        // Shares n_i = n * w_i / W with awkward denominators.
        let w = [17i64, 23, 5, 41, 13, 1];
        let wsum: i64 = w.iter().sum();
        for n in [1usize, 10, 99, 1000] {
            let shares: Vec<Rational> = w
                .iter()
                .map(|&wi| &Rational::from(n) * &r(wi, wsum))
                .collect();
            check(&shares, n);
        }
    }

    #[test]
    #[should_panic(expected = "sum exactly")]
    fn rejects_bad_sum() {
        let _ = round_shares(&[r(1, 2), r(1, 2)], 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_share() {
        let _ = round_shares(&[r(-1, 2), r(5, 2)], 2);
    }
}
