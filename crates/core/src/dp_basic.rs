//! Algorithm 1 of the paper: exact optimal distribution by dynamic
//! programming, for arbitrary non-negative cost functions.
//!
//! Recurrence: the time to process `d` items on processors `i..p` is
//!
//! ```text
//! cost[d, i] = min_{0 <= e <= d}  Tcomm(i, e) + max(Tcomp(i, e), cost[d-e, i+1])
//! cost[d, p] = Tcomm(p, d) + Tcomp(p, d)
//! ```
//!
//! Complexity `O(p·n²)` time, `O(p·n)` space (one `f64` column is kept per
//! suffix, plus a `u32` choice column per processor for reconstruction).
//! The paper reports this takes **more than two days** for `n = 817,101`,
//! `p = 16` — use [`crate::dp_optimized`] (Algorithm 2) or the LP heuristic
//! for large `n`.
//!
//! The per-cell work lives in `dp_kernel`, the column sweep in
//! [`crate::parallel`]; this module is the serial single-call facade.
//! Multi-threaded solves ([`crate::parallel::optimal_distribution_basic_parallel`])
//! are bit-identical to this entry point.
//!
//! Note on the paper's pseudo-code: Algorithm 1 as printed updates
//! `solution[d, i]`/`cost[d, i]` *inside* the inner `e`-loop (lines 17–18);
//! the intended placement — used here — is after the loop.

use crate::cost::Processor;
use crate::cost_table::CostTable;
use crate::error::PlanError;
use crate::parallel::{self, Algo, ParallelOpts};

/// Result of an exact DP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Optimal counts, in scatter order (same order as the input slice).
    pub counts: Vec<usize>,
    /// The optimal makespan (Eq. 2) of `counts`.
    pub makespan: f64,
}

pub(crate) fn validate_procs(procs: &[&Processor], n: usize) -> Result<(), PlanError> {
    if procs.is_empty() {
        return Err(PlanError::InvalidPlatform("no processors".into()));
    }
    for (i, p) in procs.iter().enumerate() {
        p.validate(i, n)?;
    }
    Ok(())
}

/// Computes an optimal distribution of `n` items over `procs` (in scatter
/// order, root last) — Algorithm 1.
///
/// Only requires the cost functions to be non-negative. Runs in
/// `O(p·n²)`; prefer [`crate::dp_optimized::optimal_distribution`] when the
/// cost functions are non-decreasing.
pub fn optimal_distribution_basic(
    procs: &[&Processor],
    n: usize,
) -> Result<DpSolution, PlanError> {
    optimal_distribution_basic_with(&CostTable::new(), procs, n)
}

/// [`optimal_distribution_basic`] with cost tabulations served from (and
/// stored into) a shared [`CostTable`] — use for repeated solves on the
/// same platform (bench sweeps, root selection).
pub fn optimal_distribution_basic_with(
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
) -> Result<DpSolution, PlanError> {
    parallel::solve(Algo::Basic, table, procs, n, &ParallelOpts::serial()).map(|(sol, _)| sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_distribution;
    use crate::cost::Processor;
    use crate::distribution::makespan;

    fn view(ps: &[Processor]) -> Vec<&Processor> {
        ps.iter().collect()
    }

    #[test]
    fn single_processor_takes_all() {
        let ps = vec![Processor::linear("root", 0.0, 2.0)];
        let sol = optimal_distribution_basic(&view(&ps), 10).unwrap();
        assert_eq!(sol.counts, vec![10]);
        assert_eq!(sol.makespan, 20.0);
    }

    #[test]
    fn zero_items() {
        let ps = vec![
            Processor::linear("a", 1.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let sol = optimal_distribution_basic(&view(&ps), 0).unwrap();
        assert_eq!(sol.counts, vec![0, 0]);
        assert_eq!(sol.makespan, 0.0);
    }

    #[test]
    fn homogeneous_splits_evenly_without_comm() {
        // Free communication, equal CPUs: even split is optimal.
        let ps = vec![
            Processor::linear("a", 0.0, 1.0),
            Processor::linear("b", 0.0, 1.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let sol = optimal_distribution_basic(&view(&ps), 9).unwrap();
        assert_eq!(sol.counts.iter().sum::<usize>(), 9);
        assert_eq!(sol.makespan, 3.0);
        assert!(sol.counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn slow_link_gets_nothing_when_prohibitive() {
        // Sending one item to `far` costs more than computing everything
        // on the root.
        let ps = vec![
            Processor::linear("far", 1000.0, 0.001),
            Processor::linear("root", 0.0, 1.0),
        ];
        let sol = optimal_distribution_basic(&view(&ps), 5).unwrap();
        assert_eq!(sol.counts, vec![0, 5]);
        assert_eq!(sol.makespan, 5.0);
    }

    #[test]
    fn matches_brute_force_small() {
        let ps = vec![
            Processor::linear("a", 0.5, 2.0),
            Processor::linear("b", 1.0, 1.0),
            Processor::linear("root", 0.0, 3.0),
        ];
        let v = view(&ps);
        for n in 0..=12 {
            let sol = optimal_distribution_basic(&v, n).unwrap();
            let brute = brute_force_distribution(&v, n);
            assert!(
                (sol.makespan - brute.makespan).abs() < 1e-9,
                "n={n}: dp {} vs brute {}",
                sol.makespan,
                brute.makespan
            );
            assert!((makespan(&v, &sol.counts) - sol.makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_brute_force_affine() {
        let ps = vec![
            Processor::affine("a", 0.3, 0.5, 0.7, 2.0),
            Processor::affine("b", 0.1, 1.0, 0.2, 1.0),
            Processor::affine("root", 0.0, 0.0, 0.0, 3.0),
        ];
        let v = view(&ps);
        for n in [0usize, 1, 5, 10] {
            let sol = optimal_distribution_basic(&v, n).unwrap();
            let brute = brute_force_distribution(&v, n);
            assert!((sol.makespan - brute.makespan).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn handles_non_monotone_custom_costs() {
        // A "batched" compute cost: cheap in blocks of 4 (e.g. SIMD width).
        // Algorithm 1 makes no monotonicity assumption.
        let batched = |x: usize| x.div_ceil(4) as f64;
        let ps = vec![
            Processor::custom("batchy", |x| 0.1 * x as f64, batched),
            Processor::linear("root", 0.0, 1.0),
        ];
        let v = view(&ps);
        for n in 0..=10 {
            let sol = optimal_distribution_basic(&v, n).unwrap();
            let brute = brute_force_distribution(&v, n);
            assert!((sol.makespan - brute.makespan).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn rejects_invalid_costs() {
        let ps = vec![Processor::custom("bad", |_| -1.0, |x| x as f64)];
        assert!(matches!(
            optimal_distribution_basic(&view(&ps), 5),
            Err(PlanError::InvalidCost { .. })
        ));
    }

    #[test]
    fn too_large_is_an_error_not_a_panic() {
        let ps = vec![Processor::linear("root", 0.0, 1.0)];
        let n = u32::MAX as usize + 1;
        assert!(matches!(
            optimal_distribution_basic(&view(&ps), n),
            Err(PlanError::TooLarge { n: got, max }) if got == n && max == u32::MAX as usize
        ));
    }

    #[test]
    fn counts_sum_preserved() {
        let ps = vec![
            Processor::linear("a", 0.1, 0.5),
            Processor::linear("b", 0.2, 0.25),
            Processor::linear("c", 0.05, 1.0),
            Processor::linear("root", 0.0, 0.4),
        ];
        let sol = optimal_distribution_basic(&view(&ps), 57).unwrap();
        assert_eq!(sol.counts.iter().sum::<usize>(), 57);
    }

    #[test]
    fn shared_cost_table_gives_identical_results() {
        let ps = vec![
            Processor::linear("a", 0.5, 2.0),
            Processor::linear("root", 0.0, 3.0),
        ];
        let v = view(&ps);
        let table = CostTable::new();
        // Largest first: later, smaller solves reuse its tabulations.
        for n in [21usize, 8, 3] {
            let fresh = optimal_distribution_basic(&v, n).unwrap();
            let cached = optimal_distribution_basic_with(&table, &v, n).unwrap();
            assert_eq!(fresh.counts, cached.counts);
            assert_eq!(fresh.makespan.to_bits(), cached.makespan.to_bits());
        }
        assert!(table.hits() > 0, "repeat solves must reuse tabulations");
    }
}
