//! Extension: planning with the **result gather** included.
//!
//! The paper's model stops when every processor finishes computing; the
//! real application then gathers results back to the root. With a
//! single-port root on the inbound side too, the gather serializes in the
//! same processor order, so the true completion time is
//!
//! ```text
//! g_i = max(g_{i-1}, F_i) + Tback(i, n_i)       g_0 = 0
//! F_i = Σ_{j<=i} Tcomm(j, n_j) + Tcomp(i, n_i)  (Eq. 1)
//! T   = g_p
//! ```
//!
//! where `Tback(i, x)` is the time to return the results of `x` items.
//! The `max` makes this non-linear but still LP-representable when all
//! costs are affine: replace `g_i = max(a, b) + c` by `g_i >= a + c`,
//! `g_i >= b + c` and minimize `g_p` — the relaxation is tight at the
//! optimum because `g_p` presses down on every `g_i` through the chain.
//!
//! This module provides the evaluator, the LP solver, and tests that the
//! LP matches brute force on small instances.

use gs_lp::{LpProblem, Sense};
use gs_numeric::Rational;

use crate::cost::{CostFn, Processor};
use crate::error::PlanError;
use crate::rounding::round_shares;

/// A processor together with its result-return cost.
#[derive(Debug, Clone)]
pub struct GatherProcessor {
    /// The forward-path processor (scatter comm + compute).
    pub proc: Processor,
    /// `Tback(i, x)`: time to return the results of `x` items to the root.
    pub back: CostFn,
}

impl GatherProcessor {
    /// Wraps a processor with a linear return cost (`gamma` s/item).
    pub fn with_linear_back(proc: Processor, gamma: f64) -> Self {
        let back = if gamma == 0.0 {
            CostFn::Zero
        } else {
            CostFn::Linear { slope: gamma }
        };
        GatherProcessor { proc, back }
    }
}

/// Evaluates the scatter+compute+gather completion time of a distribution
/// (processors in scatter order, root last; the root's own `back` cost is
/// normally zero).
pub fn makespan_with_gather(procs: &[&GatherProcessor], counts: &[usize]) -> f64 {
    assert_eq!(procs.len(), counts.len());
    let mut comm_acc = 0.0f64;
    let mut g = 0.0f64;
    let mut finishes = Vec::with_capacity(procs.len());
    for (p, &c) in procs.iter().zip(counts) {
        comm_acc += p.proc.comm.eval(c);
        finishes.push(comm_acc + p.proc.comp.eval(c));
    }
    for (p, (&c, &f)) in procs.iter().zip(counts.iter().zip(&finishes)) {
        g = g.max(f) + p.back.eval(c);
    }
    g
}

/// Result of the gather-aware LP heuristic.
#[derive(Debug, Clone)]
pub struct GatherSolution {
    /// Integer counts, scatter order.
    pub counts: Vec<usize>,
    /// The LP's exact rational optimum (lower bound on the integer one).
    pub rational_makespan: Rational,
    /// Completion time of `counts` under the full model.
    pub makespan: f64,
}

/// Solves the gather-aware distribution problem for affine costs: an
/// exact rational LP plus the §3.3 rounding scheme.
///
/// ```
/// use gs_scatter::cost::Processor;
/// use gs_scatter::gather::{gather_aware_distribution, GatherProcessor};
///
/// let procs = vec![
///     GatherProcessor::with_linear_back(Processor::linear("w", 0.01, 0.5), 0.02),
///     GatherProcessor::with_linear_back(Processor::linear("root", 0.0, 1.0), 0.0),
/// ];
/// let view: Vec<&GatherProcessor> = procs.iter().collect();
/// let sol = gather_aware_distribution(&view, 100).unwrap();
/// assert_eq!(sol.counts.iter().sum::<usize>(), 100);
/// ```
pub fn gather_aware_distribution(
    procs: &[&GatherProcessor],
    n: usize,
) -> Result<GatherSolution, PlanError> {
    if procs.is_empty() {
        return Err(PlanError::InvalidPlatform("no processors".into()));
    }
    let p = procs.len();
    let mut params = Vec::with_capacity(p);
    for (i, gp) in procs.iter().enumerate() {
        let comm = gp.proc.comm.affine_params().ok_or(PlanError::NotAffine { proc: i })?;
        let comp = gp.proc.comp.affine_params().ok_or(PlanError::NotAffine { proc: i })?;
        let back = gp.back.affine_params().ok_or(PlanError::NotAffine { proc: i })?;
        for v in [comm.0, comm.1, comp.0, comp.1, back.0, back.1] {
            if !v.is_finite() || v < 0.0 {
                return Err(PlanError::InvalidCost { proc: i, items: 1, value: v });
            }
        }
        let r = |v: f64| Rational::from_f64(v).expect("finite");
        params.push(((r(comm.0), r(comm.1)), (r(comp.0), r(comp.1)), (r(back.0), r(back.1))));
    }

    let mut lp = LpProblem::new(Sense::Minimize);
    let vars: Vec<_> = (0..p).map(|i| lp.add_var(format!("n{i}"))).collect();
    let gs: Vec<_> = (0..p).map(|i| lp.add_var(format!("g{i}"))).collect();
    lp.set_objective([(gs[p - 1], Rational::one())]);
    lp.add_eq(vars.iter().map(|&v| (v, Rational::one())), Rational::from(n));

    // g_i >= F_i + back_i  and  g_i >= g_{i-1} + back_i.
    let mut comm_intercepts = Rational::zero();
    for i in 0..p {
        let ((ref b_i, _), (ref a_i, ref alpha_i), (ref c_i, ref gamma_i)) = params[i];
        comm_intercepts += b_i;
        // F_i + back_i <= g_i:
        //   Σ_{j<=i} β_j n_j + α_i n_i + γ_i n_i − g_i <= −(Σ b_j + a_i + c_i)
        let mut terms: Vec<(gs_lp::VarId, Rational)> = Vec::with_capacity(i + 2);
        for j in 0..=i {
            let beta_j = params[j].0 .1.clone();
            let mut coef = beta_j;
            if j == i {
                coef = &coef + alpha_i;
                coef = &coef + gamma_i;
            }
            terms.push((vars[j], coef));
        }
        terms.push((gs[i], -Rational::one()));
        lp.add_le(terms, -(&(&comm_intercepts + a_i) + c_i));
        // g_{i-1} + back_i <= g_i:  γ_i n_i + g_{i-1} − g_i <= −c_i
        if i > 0 {
            lp.add_le(
                [
                    (vars[i], gamma_i.clone()),
                    (gs[i - 1], Rational::one()),
                    (gs[i], -Rational::one()),
                ],
                -c_i.clone(),
            );
        }
    }

    let sol = lp.solve().map_err(|e| PlanError::LpFailed(e.to_string()))?;
    let shares: Vec<Rational> = vars.iter().map(|&v| sol[v].clone()).collect();
    let counts = round_shares(&shares, n);
    let makespan = makespan_with_gather(procs, &counts);
    Ok(GatherSolution {
        counts,
        rational_makespan: sol.objective.clone(),
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    fn gp(name: &str, beta: f64, alpha: f64, gamma: f64) -> GatherProcessor {
        GatherProcessor::with_linear_back(Processor::linear(name, beta, alpha), gamma)
    }

    fn brute_force(procs: &[&GatherProcessor], n: usize) -> (Vec<usize>, f64) {
        fn rec(
            procs: &[&GatherProcessor],
            rem: usize,
            i: usize,
            counts: &mut Vec<usize>,
            best: &mut (Vec<usize>, f64),
        ) {
            if i == procs.len() - 1 {
                counts[i] = rem;
                let m = makespan_with_gather(procs, counts);
                if m < best.1 {
                    *best = (counts.clone(), m);
                }
                return;
            }
            for e in 0..=rem {
                counts[i] = e;
                rec(procs, rem - e, i + 1, counts, best);
            }
        }
        let mut counts = vec![0; procs.len()];
        let mut best = (vec![], f64::INFINITY);
        rec(procs, n, 0, &mut counts, &mut best);
        best
    }

    #[test]
    fn evaluator_hand_checked() {
        // P1: comm 1/item, comp 1/item, back 1/item. Root free comp 1/item.
        let ps = [gp("p1", 1.0, 1.0, 1.0), gp("root", 0.0, 1.0, 0.0)];
        let view: Vec<&GatherProcessor> = ps.iter().collect();
        // counts [2, 2]: F1 = 2 + 2 = 4; F2 = 2 + 2 = 4.
        // g1 = max(0, 4) + 2 = 6; g2 = max(6, 4) + 0 = 6.
        assert_eq!(makespan_with_gather(&view, &[2, 2]), 6.0);
    }

    #[test]
    fn zero_back_cost_reduces_to_eq2() {
        let ps = [gp("a", 0.5, 2.0, 0.0), gp("b", 1.0, 1.0, 0.0), gp("root", 0.0, 3.0, 0.0)];
        let view: Vec<&GatherProcessor> = ps.iter().collect();
        let plain: Vec<&Processor> = ps.iter().map(|g| &g.proc).collect();
        for counts in [[3usize, 2, 1], [0, 0, 6], [2, 2, 2]] {
            assert_eq!(
                makespan_with_gather(&view, &counts),
                crate::distribution::makespan(&plain, &counts)
            );
        }
    }

    #[test]
    fn lp_matches_brute_force_small() {
        let ps = [gp("a", 0.3, 1.0, 0.4), gp("b", 0.7, 0.5, 0.2), gp("root", 0.0, 2.0, 0.0)];
        let view: Vec<&GatherProcessor> = ps.iter().collect();
        for n in [4usize, 8, 12] {
            let sol = gather_aware_distribution(&view, n).unwrap();
            let (_, brute) = brute_force(&view, n);
            // The LP bound can only be <= the integer optimum; the rounded
            // solution within one item of it.
            assert!(sol.rational_makespan.to_f64() <= brute + 1e-9, "n={n}");
            let slack: f64 = 0.3 + 0.7 + 1.0 + 0.4; // crude Σ one-item costs
            assert!(sol.makespan <= brute + slack, "n={n}: {} vs {brute}", sol.makespan);
        }
    }

    #[test]
    fn gather_cost_shifts_work_to_root() {
        // With an expensive return path, remote processors become less
        // attractive than the paper's forward-only model suggests.
        let forward_only = [gp("w", 0.01, 0.5, 0.0), gp("root", 0.0, 1.0, 0.0)];
        let with_back = [gp("w", 0.01, 0.5, 1.0), gp("root", 0.0, 1.0, 0.0)];
        let n = 100;
        let a = gather_aware_distribution(&forward_only.iter().collect::<Vec<_>>(), n).unwrap();
        let b = gather_aware_distribution(&with_back.iter().collect::<Vec<_>>(), n).unwrap();
        assert!(
            b.counts[0] < a.counts[0],
            "return cost must shrink the remote share: {:?} vs {:?}",
            b.counts,
            a.counts
        );
    }

    #[test]
    fn sum_preserved_and_bounded() {
        let ps = [
            gp("a", 1e-4, 5e-3, 2e-4),
            gp("b", 2e-4, 9e-3, 1e-4),
            gp("c", 5e-5, 2e-2, 3e-4),
            gp("root", 0.0, 8e-3, 0.0),
        ];
        let view: Vec<&GatherProcessor> = ps.iter().collect();
        let n = 50_000;
        let sol = gather_aware_distribution(&view, n).unwrap();
        assert_eq!(sol.counts.iter().sum::<usize>(), n);
        assert!(sol.makespan >= sol.rational_makespan.to_f64() - 1e-9);
    }

    #[test]
    fn rejects_non_affine_back() {
        let mut g = gp("a", 0.1, 0.1, 0.1);
        g.back = CostFn::Custom(std::sync::Arc::new(|x| (x as f64).sqrt()));
        let root = gp("root", 0.0, 1.0, 0.0);
        let ps = [g, root];
        assert!(matches!(
            gather_aware_distribution(&ps.iter().collect::<Vec<_>>(), 10),
            Err(PlanError::NotAffine { proc: 0 })
        ));
    }
}
