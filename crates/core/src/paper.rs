//! The paper's experimental setup (§5.1, Table 1), encoded as a reusable
//! platform: 16 processors at two sites, benchmarked coefficients
//! `α` (seconds per ray of compute) and `β` (seconds per ray of transfer
//! from the root `dinadan`).
//!
//! `merlin` is geographically close to the root but was behind a 10 Mbit/s
//! hub during the experiment, hence its large `β` — it is the machine the
//! ordering policy demotes to the end of the scatter.

use crate::cost::{Platform, Processor};

/// Number of rays in the paper's workload: the full set of seismic events
/// of year 1999.
pub const N_RAYS_1999: usize = 817_101;

/// One row of Table 1 (expanded to one entry per processor).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Machine name.
    pub machine: &'static str,
    /// Processor number(s) in the paper, 1-based.
    pub cpu_index: usize,
    /// CPU type.
    pub cpu_type: &'static str,
    /// Compute cost, seconds per ray (column α).
    pub alpha: f64,
    /// Rating relative to the PIII/933 (column "Rating").
    pub rating: f64,
    /// Communication cost from the root, seconds per ray (column β).
    pub beta: f64,
}

/// Table 1, one row per processor (16 rows; the paper groups identical
/// processors of the same machine).
pub fn table1_rows() -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(16);
    let mut push = |machine, cpu_type, alpha, rating, beta, count: usize| {
        for _ in 0..count {
            rows.push(Table1Row {
                machine,
                cpu_index: rows.len() + 1,
                cpu_type,
                alpha,
                rating,
                beta,
            });
        }
    };
    push("dinadan", "PIII/933", 0.009288, 1.0, 0.0, 1);
    push("pellinore", "PIII/800", 0.009365, 0.99, 1.12e-5, 1);
    push("caseb", "XP1800", 0.004629, 2.0, 1.00e-5, 1);
    push("sekhmet", "XP1800", 0.004885, 1.90, 1.70e-5, 1);
    push("merlin", "XP2000", 0.003976, 2.33, 8.15e-5, 2);
    push("seven", "R12K/300", 0.016156, 0.57, 2.10e-5, 2);
    push("leda", "R14K/500", 0.009677, 0.95, 3.53e-5, 8);
    rows
}

/// The 16-processor grid of §5.1 with linear costs, root `dinadan`
/// (platform index 0, where the input data set lives).
pub fn table1_platform() -> Platform {
    let procs = table1_rows()
        .into_iter()
        .map(|row| Processor::linear(row.machine, row.beta, row.alpha))
        .collect();
    Platform::new(procs, 0).expect("static platform is valid")
}

/// Reference results quoted in §5.2, used by the experiment harness to
/// annotate its output (we reproduce *shapes*, not testbed noise).
pub mod reported {
    /// Fig. 2 (uniform): earliest processor finish, seconds.
    pub const UNIFORM_MIN_FINISH: f64 = 259.0;
    /// Fig. 2 (uniform): latest processor finish, seconds.
    pub const UNIFORM_MAX_FINISH: f64 = 853.0;
    /// Fig. 3 (balanced, descending bandwidth): earliest finish, seconds.
    pub const BALANCED_DESC_MIN_FINISH: f64 = 405.0;
    /// Fig. 3 (balanced, descending bandwidth): latest finish, seconds.
    pub const BALANCED_DESC_MAX_FINISH: f64 = 430.0;
    /// Fig. 4 (balanced, ascending bandwidth): earliest finish, seconds.
    pub const BALANCED_ASC_MIN_FINISH: f64 = 437.0;
    /// Fig. 4 (balanced, ascending bandwidth): latest finish, seconds.
    pub const BALANCED_ASC_MAX_FINISH: f64 = 486.0;
    /// §5.2: heuristic relative error vs the optimal solution.
    pub const HEURISTIC_REL_ERROR: f64 = 6e-6;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{timeline, uniform_distribution};
    use crate::ordering::{scatter_order, OrderPolicy};
    use crate::planner::{Planner, Strategy};

    #[test]
    fn sixteen_processors_root_dinadan() {
        let plat = table1_platform();
        assert_eq!(plat.len(), 16);
        assert_eq!(plat.root(), 0);
        assert_eq!(plat.procs()[0].name, "dinadan");
        assert_eq!(table1_rows().len(), 16);
    }

    #[test]
    fn machine_counts_match_table() {
        let rows = table1_rows();
        let count = |m: &str| rows.iter().filter(|r| r.machine == m).count();
        assert_eq!(count("dinadan"), 1);
        assert_eq!(count("merlin"), 2);
        assert_eq!(count("seven"), 2);
        assert_eq!(count("leda"), 8);
    }

    #[test]
    fn ratings_are_inverse_alpha_normalized() {
        // rating ≈ alpha(dinadan) / alpha, as defined in §5.1.
        for row in table1_rows() {
            let implied = 0.009288 / row.alpha;
            assert!(
                (implied - row.rating).abs() < 0.05,
                "{}: implied {implied} vs reported {}",
                row.machine,
                row.rating
            );
        }
    }

    #[test]
    fn descending_bandwidth_order_matches_fig3_axis() {
        // Fig. 3's x axis: caseb, pellinore, sekhmet, seven, seven,
        // leda x8, merlin, merlin, dinadan.
        let plat = table1_platform();
        let order = scatter_order(&plat, OrderPolicy::DescendingBandwidth);
        let names: Vec<&str> =
            order.iter().map(|&i| plat.procs()[i].name.as_str()).collect();
        let expected = [
            "caseb", "pellinore", "sekhmet", "seven", "seven", "leda", "leda", "leda",
            "leda", "leda", "leda", "leda", "leda", "merlin", "merlin", "dinadan",
        ];
        assert_eq!(names, expected);
    }

    #[test]
    fn uniform_run_reproduces_fig2_shape() {
        // Uniform distribution on the Table-1 grid: huge imbalance, with
        // min/max finish times in the ballpark of the 259 s / 853 s the
        // paper measured (we have no background load, so only the shape —
        // ratio over 3x, max near 800+ s — is asserted).
        let plat = table1_platform();
        let order = scatter_order(&plat, OrderPolicy::DescendingBandwidth);
        let view = plat.ordered(&order);
        let counts = uniform_distribution(16, N_RAYS_1999);
        let tl = timeline(&view, &counts);
        let (min, max) = (tl.min_finish(), tl.makespan());
        assert!(max / min > 3.0, "imbalance ratio {} too small", max / min);
        assert!((700.0..1000.0).contains(&max), "max finish {max}");
        assert!((200.0..320.0).contains(&min), "min finish {min}");
    }

    #[test]
    fn balanced_run_reproduces_fig3_shape() {
        // Load-balanced: everyone finishes together, total ≈ half the
        // uniform makespan (the paper: 430 s vs 853 s).
        let plat = table1_platform();
        let plan = Planner::new(plat)
            .strategy(Strategy::Heuristic)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(N_RAYS_1999)
            .unwrap();
        let t = plan.predicted_makespan;
        assert!((380.0..460.0).contains(&t), "balanced makespan {t}");
        assert!(plan.predicted.imbalance() < 0.01, "near-perfect balance");
    }

    #[test]
    fn ascending_order_is_worse_as_in_fig4() {
        let plat = table1_platform();
        let desc = Planner::new(plat.clone())
            .strategy(Strategy::Heuristic)
            .order_policy(OrderPolicy::DescendingBandwidth)
            .plan(N_RAYS_1999)
            .unwrap();
        let asc = Planner::new(plat)
            .strategy(Strategy::Heuristic)
            .order_policy(OrderPolicy::AscendingBandwidth)
            .plan(N_RAYS_1999)
            .unwrap();
        assert!(
            asc.predicted_makespan > desc.predicted_makespan,
            "ascending {} must be slower than descending {}",
            asc.predicted_makespan,
            desc.predicted_makespan
        );
    }
}
