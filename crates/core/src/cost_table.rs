//! Memoized cost-function tabulation shared across DP solves.
//!
//! Both dynamic programs start by evaluating every `Tcomm`/`Tcomp` on
//! `0..=n`. Workflows that solve repeatedly on the same platform — bench
//! sweeps over `n`, root-selection scans that re-plan once per candidate
//! root, `gs report` diffs — used to pay that tabulation on every call.
//! A [`CostTable`] caches each distinct cost function's table and hands
//! out shared `Arc<[f64]>` slices instead, so each function is evaluated
//! at most once per size (and platforms with repeated processors, like
//! the eight `leda` nodes of Table 1, tabulate the shared function once).
//!
//! Cached values are *bit-identical* to a fresh tabulation:
//! `CostFn::eval(x)` does not depend on `n`, so a table grown for a
//! larger `n` has the exact same prefix as a smaller one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cost::CostFn;

/// Identity of a cost function for caching purposes.
///
/// Value-like variants (`Zero`, `Linear`, `Affine`) are keyed by their
/// coefficient bit patterns, so *clones* of the same function hit the
/// cache (root selection clones the platform per candidate). `Table` and
/// `Custom` are keyed by the address of their shared `Arc` payload; the
/// cache pins a clone of the function so the allocation can never be
/// freed and its address reused while the entry lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CostKey {
    Zero,
    Linear(u64),
    Affine(u64, u64),
    Table(usize, usize),
    Custom(usize),
}

pub(crate) fn key_of(f: &CostFn) -> CostKey {
    match f {
        CostFn::Zero => CostKey::Zero,
        CostFn::Linear { slope } => CostKey::Linear(slope.to_bits()),
        CostFn::Affine { intercept, slope } => {
            CostKey::Affine(intercept.to_bits(), slope.to_bits())
        }
        CostFn::Table { points } => CostKey::Table(points.as_ptr() as usize, points.len()),
        CostFn::Custom(f) => CostKey::Custom(Arc::as_ptr(f) as *const () as usize),
    }
}

#[derive(Debug)]
struct CacheEntry {
    /// Tabulated values on `0..=n` for the largest `n` seen so far.
    values: Arc<[f64]>,
    /// Length of the longest non-decreasing prefix of `values`, computed
    /// once at insertion so monotonicity queries are O(1) per solve
    /// instead of an O(n) rescan (see [`CostTable::tabulate_mono`]).
    mono: usize,
    /// Keeps `Arc`-backed cost functions alive so their pointer keys stay
    /// unique for the lifetime of the entry.
    _pin: CostFn,
}

/// Length of the longest non-decreasing prefix of `values` (equals
/// `values.len()` when the whole table is non-decreasing). Uses the same
/// comparison as the solvers' monotonicity gate: a strict decrease
/// `values[i + 1] < values[i]` ends the prefix.
fn mono_prefix(values: &[f64]) -> usize {
    match values.windows(2).position(|w| w[1] < w[0]) {
        Some(i) => i + 1,
        None => values.len(),
    }
}

/// A thread-safe cache of tabulated cost functions.
///
/// ```
/// use gs_scatter::cost::CostFn;
/// use gs_scatter::cost_table::CostTable;
///
/// let table = CostTable::new();
/// let f = CostFn::Linear { slope: 0.5 };
/// let a = table.tabulate(&f, 10);
/// let b = table.tabulate(&f.clone(), 5); // clone of the same function
/// assert_eq!(a[5], 2.5);
/// assert_eq!(a[..6], b[..6]);
/// assert_eq!((table.hits(), table.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct CostTable {
    entries: Mutex<HashMap<CostKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CostTable {
    /// An empty cache.
    pub fn new() -> CostTable {
        CostTable::default()
    }

    /// Returns the values of `f` on `0..=n` (the slice may be longer if a
    /// larger tabulation is already cached — always index, never assume
    /// the length).
    ///
    /// On a miss the function is evaluated outside the lock, so expensive
    /// `Custom` closures never block concurrent lookups of other
    /// functions; concurrent misses on the *same* function may duplicate
    /// work but agree on the result.
    pub fn tabulate(&self, f: &CostFn, n: usize) -> Arc<[f64]> {
        self.tabulate_mono(f, n).0
    }

    /// Like [`CostTable::tabulate`], but also returns the length of the
    /// longest non-decreasing prefix of the returned slice.
    ///
    /// The prefix length is computed once per tabulation and cached, so
    /// the solvers' exact monotonicity gate (`values[..=n]`
    /// non-decreasing ⟺ prefix `> n`) costs O(1) per solve instead of
    /// rescanning every tabulated function on every call.
    pub(crate) fn tabulate_mono(&self, f: &CostFn, n: usize) -> (Arc<[f64]>, usize) {
        let key = key_of(f);
        {
            let map = self.entries.lock().expect("cost table poisoned");
            if let Some(entry) = map.get(&key) {
                if entry.values.len() > n {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (entry.values.clone(), entry.mono);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let values: Arc<[f64]> = (0..=n).map(|x| f.eval(x)).collect();
        let mono = mono_prefix(&values);
        let mut map = self.entries.lock().expect("cost table poisoned");
        match map.get(&key) {
            // Someone raced us to an equal-or-larger table: keep theirs.
            Some(entry) if entry.values.len() >= values.len() => {
                (entry.values.clone(), entry.mono)
            }
            _ => {
                map.insert(key, CacheEntry { values: values.clone(), mono, _pin: f.clone() });
                (values, mono)
            }
        }
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to tabulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cost functions currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cost table poisoned").len()
    }

    /// `true` iff nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Processor;

    #[test]
    fn value_keyed_variants_dedupe_across_clones() {
        let table = CostTable::new();
        let a = Processor::linear("a", 0.5, 1.0);
        let b = a.clone();
        table.tabulate(&a.comm, 100);
        table.tabulate(&b.comm, 100);
        assert_eq!((table.hits(), table.misses()), (1, 1));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn growing_n_retabulates_with_identical_prefix() {
        let table = CostTable::new();
        let f = CostFn::Affine { intercept: 0.25, slope: 0.125 };
        let small = table.tabulate(&f, 10);
        let large = table.tabulate(&f, 100);
        assert_eq!(small.len(), 11);
        assert_eq!(large.len(), 101);
        for x in 0..=10 {
            assert_eq!(small[x].to_bits(), large[x].to_bits(), "x={x}");
        }
        // The shorter request after the longer one is a hit.
        let again = table.tabulate(&f, 10);
        assert_eq!(again.len(), 101);
        assert_eq!(table.hits(), 1);
    }

    #[test]
    fn arc_backed_functions_key_by_identity() {
        let table = CostTable::new();
        let t1 = CostFn::table(vec![(10, 1.0), (20, 3.0)]);
        let t1_clone = t1.clone(); // shares the Arc: same identity
        let t2 = CostFn::table(vec![(10, 1.0), (20, 3.0)]); // fresh Arc
        table.tabulate(&t1, 30);
        table.tabulate(&t1_clone, 30);
        table.tabulate(&t2, 30);
        assert_eq!((table.hits(), table.misses()), (1, 2));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn pinned_functions_survive_caller_drop() {
        // Dropping the caller's last visible handle must not allow the
        // allocation to be reused under a live pointer key: the cache
        // pins a clone.
        let table = CostTable::new();
        let values = {
            let f = CostFn::Custom(Arc::new(|x| x as f64 * 2.0));
            table.tabulate(&f, 5)
        };
        assert_eq!(values[5], 10.0);
        assert_eq!(table.len(), 1);
        // A different closure must never alias the cached entry.
        let g = CostFn::Custom(Arc::new(|x| x as f64 * 3.0));
        let other = table.tabulate(&g, 5);
        assert_eq!(other[5], 15.0);
    }

    #[test]
    fn matches_direct_eval_bit_for_bit() {
        let table = CostTable::new();
        let f = CostFn::table(vec![(7, 0.3), (19, 1.7), (64, 9.1)]);
        let tab = table.tabulate(&f, 80);
        for x in 0..=80 {
            assert_eq!(tab[x].to_bits(), f.eval(x).to_bits(), "x={x}");
        }
    }

    #[test]
    fn shared_across_threads() {
        let table = Arc::new(CostTable::new());
        let f = CostFn::Linear { slope: 0.25 };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let table = Arc::clone(&table);
                let f = f.clone();
                s.spawn(move || {
                    let t = table.tabulate(&f, 1000);
                    assert_eq!(t[1000], 250.0);
                });
            }
        });
        assert_eq!(table.len(), 1);
        assert_eq!(table.hits() + table.misses(), 4);
    }
}
