//! Multi-threaded, optionally pruned driver for the exact dynamic
//! programs (the "parallel planning engine").
//!
//! The paper's own measurements make planning the bottleneck: Algorithm 1
//! needed *more than two days* at `n = 817,101, p = 16`, Algorithm 2
//! about six minutes. Three independent levers bring that down, all
//! behind one engine so every combination stays **bit-identical** to the
//! serial solvers:
//!
//! * **Column parallelism.** Column `cost[·, i]` depends only on column
//!   `i + 1`, so its `n + 1` cells are embarrassingly parallel. The
//!   engine chunks each column and computes chunks on `crossbeam` scoped
//!   threads. Each cell runs the exact same operations in the exact same
//!   order as the serial solver (the shared `dp_kernel`), and chunks write
//!   disjoint slices, so the outputs are bit-for-bit identical for any
//!   thread count.
//! * **Upper-bound pruning** (Algorithm 2 only, opt-in). The solve is
//!   seeded with the makespan of a feasible distribution — the §4 closed
//!   form for linear costs, else the §3.3 guaranteed LP heuristic for
//!   affine costs. Any cell whose value exceeds this bound can never lie
//!   on the optimal reconstruction path (appending processors only adds
//!   non-negative `Tcomm` terms, so values along the path are
//!   non-increasing and the root cell's value is the optimum `<=` the
//!   bound). Since column values are non-decreasing in `d`, each column
//!   is computed only up to its first out-of-bound cell, and the
//!   candidate window of each cell shrinks to the `e` with
//!   `Tcomm(i, e) <= bound` *and* an in-bound suffix. The bound is
//!   inflated by one part in 10⁹ so floating-point summation-order noise
//!   can never exclude the optimal path; if the bound were ever
//!   inconsistent anyway, the engine falls back to an unpruned solve
//!   rather than return a wrong answer.
//! * **Tabulation caching.** Cost tables come from a [`CostTable`], so
//!   repeated solves (and repeated processors within one platform)
//!   evaluate each cost function once.
//!
//! The timed entry points also report a [`PlanTiming`] block —
//! tabulation vs solve split, thread count, cache statistics — which the
//! planner attaches to plans and traces (see `docs/performance.md`).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cost::Processor;
use crate::cost_table::CostTable;
use crate::dp_basic::{validate_procs, DpSolution};
use crate::dp_kernel::{self, DpPlane, MAX_ITEMS};
use crate::error::PlanError;
use crate::metrics::{Counter, Histogram, Registry};
use crate::obs::span;
use crate::obs::PlanTiming;

/// Handles on the engine's global metrics, resolved once per solve so
/// the per-cell hot path only touches atomics.
struct DpStats {
    cells: Arc<Counter>,
    prune_hits: Arc<Counter>,
    busy: Arc<Histogram>,
    dc_col_fallbacks: Arc<Counter>,
}

impl DpStats {
    fn new() -> DpStats {
        let reg = Registry::global();
        DpStats {
            cells: reg.counter("dp_cells_evaluated_total", "DP cells evaluated by the engine"),
            prune_hits: reg
                .counter("dp_prune_hits_total", "DP cells skipped by upper-bound pruning"),
            busy: reg.histogram(
                "dp_thread_busy_seconds",
                "per-thread busy time of one parallel column sweep",
            ),
            dc_col_fallbacks: reg.counter(
                "dp_dc_column_fallbacks_total",
                "D&C columns demoted to the full-scan kernel by the defensive \
                 monotonicity check",
            ),
        }
    }
}

/// Which dynamic program the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Algo {
    /// Algorithm 1: full candidate scan, arbitrary non-negative costs.
    Basic,
    /// Algorithm 2: binary search + early exit, non-decreasing costs.
    Optimized,
    /// Divide-and-conquer over the monotone crossing point,
    /// non-decreasing costs; bit-identical to Algorithm 2
    /// (see [`crate::dp_dc`]).
    Dc,
}

/// Trailing columns of a previous solve, reused to warm-start a new one.
///
/// Column `plane.p - 1 - k` of the source becomes column `p - 1 - k` of
/// the new solve for `k < reuse` — valid because DP column `i` depends
/// only on the cost functions of processors `i..p-1`, so identical
/// trailing processors produce bit-identical trailing columns. The
/// caller ([`crate::planner::PlanCache`]) guarantees the trailing cost
/// functions match, that each reused column has at least `n + 1`
/// computed cells, and that the source solve ran unpruned; warm solves
/// themselves always run unpruned.
pub(crate) struct WarmStart<'a> {
    /// Plane of the previous (unpruned) solve.
    pub plane: &'a DpPlane,
    /// Trailing columns to copy; `1 <= reuse <= p - 1` (the top column
    /// is always recomputed).
    pub reuse: usize,
}

/// Execution options for the parallel engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelOpts {
    /// Worker threads per column; `0` means one per available core.
    pub threads: usize,
    /// Enable upper-bound pruning (Algorithm 2 only; ignored by
    /// Algorithm 1 and the D&C kernel, and by warm-started solves).
    /// Requires linear or affine costs to seed the bound — otherwise the
    /// solve silently runs unpruned.
    pub prune: bool,
    /// Cells per work unit; `0` picks a size balancing scheduling
    /// overhead against load skew.
    pub chunk: usize,
}

impl ParallelOpts {
    /// Options reproducing the plain serial solvers (one thread, no
    /// pruning).
    pub fn serial() -> Self {
        ParallelOpts { threads: 1, prune: false, chunk: 0 }
    }
}

/// One processor's tabulated `(comm, comp)` costs, shared via the cache.
type TabPair = (Arc<[f64]>, Arc<[f64]>);

/// Resolves `threads: 0` to the number of available cores.
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

fn chunk_size(len: usize, threads: usize, requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        (len / (threads.max(1) * 8)).clamp(1024, 16384)
    }
}

/// Relative inflation applied to the pruning bound, absorbing the ~1e-14
/// relative noise between the DP's accumulation order and the Eq. (1)
/// evaluation of the seeding distribution.
const BOUND_MARGIN: f64 = 1e-9;

/// Algorithm 2 with explicit engine options.
///
/// Bit-identical to [`crate::dp_optimized::optimal_distribution`] for
/// every option combination (property-tested).
///
/// ```
/// use gs_scatter::cost::Processor;
/// use gs_scatter::parallel::{optimal_distribution_parallel, ParallelOpts};
///
/// let procs = vec![
///     Processor::linear("worker", 0.1, 1.0),
///     Processor::linear("root", 0.0, 2.0),
/// ];
/// let view: Vec<&Processor> = procs.iter().collect();
/// let opts = ParallelOpts { threads: 2, prune: true, chunk: 0 };
/// let sol = optimal_distribution_parallel(&view, 500, &opts).unwrap();
/// assert_eq!(sol.counts.iter().sum::<usize>(), 500);
/// ```
pub fn optimal_distribution_parallel(
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<DpSolution, PlanError> {
    let table = CostTable::new();
    solve(Algo::Optimized, &table, procs, n, opts).map(|(sol, _)| sol)
}

/// Algorithm 1 with explicit engine options (pruning is ignored — it
/// relies on monotonicity Algorithm 1 does not assume).
pub fn optimal_distribution_basic_parallel(
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<DpSolution, PlanError> {
    let table = CostTable::new();
    solve(Algo::Basic, &table, procs, n, opts).map(|(sol, _)| sol)
}

/// The divide-and-conquer kernel with explicit engine options.
///
/// Bit-identical to [`crate::dp_optimized::optimal_distribution`] for
/// non-decreasing costs; for costs that are *not* non-decreasing it
/// silently demotes to the Algorithm-1 kernel (counted by
/// `dp_dc_fallbacks_total`), so arbitrary non-negative costs stay
/// correct. Pruning is ignored.
///
/// ```
/// use gs_scatter::cost::Processor;
/// use gs_scatter::parallel::{optimal_distribution_dc_parallel, ParallelOpts};
///
/// let procs = vec![
///     Processor::linear("worker", 0.1, 1.0),
///     Processor::linear("root", 0.0, 2.0),
/// ];
/// let view: Vec<&Processor> = procs.iter().collect();
/// let sol = optimal_distribution_dc_parallel(&view, 500, &ParallelOpts::serial()).unwrap();
/// assert_eq!(sol.counts.iter().sum::<usize>(), 500);
/// ```
pub fn optimal_distribution_dc_parallel(
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<DpSolution, PlanError> {
    let table = CostTable::new();
    solve(Algo::Dc, &table, procs, n, opts).map(|(sol, _)| sol)
}

/// Algorithm 2 through a shared [`CostTable`], returning the solve's
/// [`PlanTiming`] alongside the solution.
pub fn optimal_distribution_parallel_timed(
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<(DpSolution, PlanTiming), PlanError> {
    solve(Algo::Optimized, table, procs, n, opts)
}

/// The D&C kernel through a shared [`CostTable`], with timing.
pub fn optimal_distribution_dc_parallel_timed(
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<(DpSolution, PlanTiming), PlanError> {
    solve(Algo::Dc, table, procs, n, opts)
}

/// Algorithm 1 through a shared [`CostTable`], with timing.
pub fn optimal_distribution_basic_parallel_timed(
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<(DpSolution, PlanTiming), PlanError> {
    solve(Algo::Basic, table, procs, n, opts)
}

/// Engine entry point shared by every public solver; discards the plane.
pub(crate) fn solve(
    algo: Algo,
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
) -> Result<(DpSolution, PlanTiming), PlanError> {
    solve_full(algo, table, procs, n, opts, None).map(|(sol, timing, _)| (sol, timing))
}

/// Full engine entry point: solves, and also returns the DP plane so
/// the planner's [`crate::planner::PlanCache`] can keep it for
/// warm-started re-plans. `warm` seeds the trailing columns from a
/// previous plane (and forces the solve unpruned).
pub(crate) fn solve_full(
    algo: Algo,
    table: &CostTable,
    procs: &[&Processor],
    n: usize,
    opts: &ParallelOpts,
    warm: Option<&WarmStart<'_>>,
) -> Result<(DpSolution, PlanTiming, DpPlane), PlanError> {
    let start = Instant::now();
    let mut solve_span = span::span("dp", "dp.solve");
    validate_procs(procs, n)?;
    if algo == Algo::Optimized {
        for (i, pr) in procs.iter().enumerate() {
            if !pr.comm.probably_increasing(n) || !pr.comp.probably_increasing(n) {
                return Err(PlanError::NotIncreasing { proc: i });
            }
        }
    }
    if n > MAX_ITEMS {
        return Err(PlanError::TooLarge { n, max: MAX_ITEMS });
    }
    let p = procs.len();
    let threads = resolve_threads(opts.threads);
    let hits0 = table.hits();
    let misses0 = table.misses();

    let t_tab = Instant::now();
    let tab_span = span::span("dp", "dp.tabulate");
    let mut monos = Vec::with_capacity(p);
    let tabs: Vec<TabPair> = procs
        .iter()
        .map(|pr| {
            let (comm, mono_comm) = table.tabulate_mono(&pr.comm, n);
            let (comp, mono_comp) = table.tabulate_mono(&pr.comp, n);
            monos.push(mono_comm.min(mono_comp));
            (comm, comp)
        })
        .collect();
    let mut run_algo = algo;
    if algo != Algo::Basic {
        // Exact monotonicity check on the tabulated values: Algorithm 2
        // and the D&C recurrence both depend on it, so sampling is not
        // enough here. The non-decreasing prefix length is cached with
        // the tabulation, making this O(p) per solve.
        for (i, &mono) in monos.iter().enumerate() {
            if mono <= n {
                if algo == Algo::Dc {
                    // The D&C kernel promises correctness for *arbitrary*
                    // costs: demote the whole solve to the full-scan
                    // Algorithm-1 kernel, which assumes nothing.
                    Registry::global()
                        .counter(
                            "dp_dc_fallbacks_total",
                            "D&C solves demoted to the Algorithm-1 kernel by \
                             non-monotone cost functions",
                        )
                        .inc();
                    run_algo = Algo::Basic;
                    break;
                }
                return Err(PlanError::NotIncreasing { proc: i });
            }
        }
    }
    drop(tab_span);
    let tabulate_secs = t_tab.elapsed().as_secs_f64();

    let t_solve = Instant::now();
    let ub = if opts.prune && run_algo == Algo::Optimized && warm.is_none() {
        upper_bound(procs, n)
    } else {
        None
    };
    let mut engine = Engine {
        algo: run_algo,
        tabs: &tabs,
        n,
        p,
        threads,
        chunk: chunk_size(n + 1, threads, opts.chunk),
        stats: DpStats::new(),
        span_parent: 0,
    };
    let reuse = warm.map_or(0, |w| w.reuse);
    debug_assert!(reuse < p, "the top column is never reused");
    let mut plane = DpPlane::new(p, n);
    if let Some(w) = warm {
        copy_warm(&mut plane, w);
    }
    let sweep_span = span::span("dp", "dp.sweep");
    engine.span_parent = sweep_span.id();
    let (counts, makespan) = match engine.run(&mut plane, ub.map(|u| u * (1.0 + BOUND_MARGIN)), reuse)
    {
        Some(result) => result,
        // The bound proved inconsistent (cannot happen for a correctly
        // seeded bound; kept as a correctness net): redo unpruned. Warm
        // solves are unpruned, so `reuse = 0` on this path.
        None => {
            plane = DpPlane::new(p, n);
            engine.run(&mut plane, None, 0).expect("unpruned solve is always consistent")
        }
    };
    drop(sweep_span);
    let solve_secs = t_solve.elapsed().as_secs_f64();

    let timing = PlanTiming {
        // The *requested* kernel: a demoted D&C solve still reports
        // `exact-dc` (the demotion is visible in `dp_dc_fallbacks_total`).
        strategy: match algo {
            Algo::Basic => "exact-basic".into(),
            Algo::Optimized => "exact".into(),
            Algo::Dc => "exact-dc".into(),
        },
        threads,
        pruned: ub.is_some(),
        tabulate_secs,
        solve_secs,
        total_secs: start.elapsed().as_secs_f64(),
        cache_hits: table.hits() - hits0,
        cache_misses: table.misses() - misses0,
    };
    let reg = Registry::global();
    reg.counter("dp_solves_total", "DP solves completed").inc();
    reg.counter("dp_cache_hits_total", "cost-table lookups answered from cache")
        .add(timing.cache_hits);
    reg.counter("dp_cache_misses_total", "cost-table lookups that tabulated")
        .add(timing.cache_misses);
    reg.histogram("dp_solve_seconds", "wall-clock of the DP solve proper")
        .observe(timing.solve_secs);
    if algo == Algo::Dc {
        reg.counter("dp_dc_solves_total", "divide-and-conquer DP solves completed").inc();
        reg.histogram("dp_dc_solve_seconds", "wall-clock of the D&C DP solve proper")
            .observe(timing.solve_secs);
    }
    if reuse > 0 {
        reg.counter("dp_warm_solves_total", "DP solves warm-started from a cached plane")
            .inc();
        reg.counter(
            "dp_warm_columns_reused_total",
            "DP columns copied from a cached plane instead of recomputed",
        )
        .add(reuse as u64);
    }
    solve_span.attr("kernel", &timing.strategy);
    solve_span.attr("n", n);
    solve_span.attr("p", p);
    solve_span.attr("threads", threads);
    solve_span.attr("pruned", ub.is_some());
    solve_span.attr("fallback", run_algo != algo);
    solve_span.attr("reuse", reuse);
    Ok((DpSolution { counts, makespan }, timing, plane))
}

/// Copies the reused trailing columns of a [`WarmStart`] into a fresh
/// plane (cells `0..=n` of each, plus their choice rows).
fn copy_warm(plane: &mut DpPlane, w: &WarmStart<'_>) {
    let (n, p) = (plane.n, plane.p);
    let (src, sp) = (w.plane, w.plane.p);
    let (ds, ss) = (plane.stride(), src.stride());
    for k in 0..w.reuse {
        let (di, si) = (p - 1 - k, sp - 1 - k);
        debug_assert!(src.col_len[si] > n, "cache guarantees >= n + 1 computed cells");
        plane.cost[di * ds..di * ds + n + 1]
            .copy_from_slice(&src.cost[si * ss..si * ss + n + 1]);
        plane.choice[di * ds..di * ds + n + 1]
            .copy_from_slice(&src.choice[si * ss..si * ss + n + 1]);
        plane.col_len[di] = n + 1;
    }
}

/// A feasible (hence upper-bounding) makespan for pruning: the closed
/// form's rounded distribution when every cost is linear or affine, else
/// `None` (no pruning).
///
/// Affine platforms are seeded from the *slopes-only* closed form: any
/// feasible distribution evaluated with the true affine costs
/// upper-bounds the optimum, and the closed form is O(p·log n) where the
/// exact rational LP heuristic grows without bound in `p` (minutes at
/// `p = 64` even with dyadic coefficients — far more than the pruning
/// it buys). The bound loosens by at most the sum of the intercepts,
/// which the pruning margin already absorbs on realistic platforms.
fn upper_bound(procs: &[&Processor], n: usize) -> Option<f64> {
    let linear =
        procs.iter().all(|p| p.comm.linear_slope().is_some() && p.comp.linear_slope().is_some());
    if linear {
        let sol = crate::closed_form::closed_form_distribution(procs, n).ok()?;
        return Some(crate::distribution::makespan(procs, &sol.counts));
    }
    let affine =
        procs.iter().all(|p| p.comm.affine_params().is_some() && p.comp.affine_params().is_some());
    if affine {
        let linearized: Vec<Processor> = procs
            .iter()
            .map(|pr| {
                let (_, beta) = pr.comm.affine_params().expect("checked affine");
                let (_, alpha) = pr.comp.affine_params().expect("checked affine");
                Processor::linear(pr.name.clone(), beta, alpha)
            })
            .collect();
        let views: Vec<&Processor> = linearized.iter().collect();
        let sol = crate::closed_form::closed_form_distribution(&views, n).ok()?;
        return Some(crate::distribution::makespan(procs, &sol.counts));
    }
    None
}

/// One configured solve over pre-tabulated costs.
struct Engine<'a> {
    algo: Algo,
    tabs: &'a [TabPair],
    n: usize,
    p: usize,
    threads: usize,
    chunk: usize,
    stats: DpStats,
    /// Span id of the enclosing `dp.sweep` span: `dp.chunk` spans
    /// recorded on worker threads attach here explicitly, because the
    /// tracer's thread-local parent stack does not cross threads.
    span_parent: u64,
}

impl Engine<'_> {
    fn tab(&self, i: usize) -> (&[f64], &[f64]) {
        (&self.tabs[i].0[..=self.n], &self.tabs[i].1[..=self.n])
    }

    /// The kernel one column actually runs: the D&C recurrence requires
    /// the previous column non-decreasing over its valid prefix — true
    /// by induction for non-decreasing costs (a rounded sum or max of
    /// non-decreasing sequences is non-decreasing), but verified per
    /// column (one O(n) sequential scan, negligible next to the column
    /// itself) so that a floating-point surprise degrades to the
    /// full-scan kernel for that column instead of a wrong plan.
    fn column_algo(&self, prev: &[f64], prev_valid: usize) -> Algo {
        if self.algo != Algo::Dc {
            return self.algo;
        }
        if prev[..=prev_valid].windows(2).any(|w| w[1] < w[0]) {
            self.stats.dc_col_fallbacks.inc();
            return Algo::Basic;
        }
        Algo::Dc
    }

    /// Runs the column sweep + reconstruction over `plane`. `bound` is
    /// the inflated pruning bound (`None` disables pruning); `reuse`
    /// trailing columns were pre-filled by a warm start. Returns `None`
    /// only when a bound turned out inconsistent with the table — the
    /// caller then retries unpruned.
    fn run(&self, plane: &mut DpPlane, bound: Option<f64>, reuse: usize) -> Option<(Vec<usize>, f64)> {
        let (n, p) = (self.n, self.p);
        let stride = n + 1;

        // Base column: the root takes everything that is left. A warm
        // start already copied it (and possibly more trailing columns).
        if reuse == 0 {
            let (comm, comp) = self.tab(p - 1);
            let col = &mut plane.cost[(p - 1) * stride..p * stride];
            let mut len = 0usize;
            for d in 0..=n {
                let v = comm[d] + comp[d];
                if bound.is_some_and(|b| v > b) {
                    break;
                }
                col[d] = v;
                len += 1;
            }
            // The plane is zero-allocated: mark the pruned tail
            // out-of-bound explicitly (no-op when unpruned, `len = n+1`).
            for v in &mut col[len..] {
                *v = f64::INFINITY;
            }
            plane.col_len[p - 1] = len;
            self.stats.cells.add(len as u64);
            self.stats.prune_hits.add((n + 1 - len) as u64);
        }
        if p == 1 {
            let v = plane.cost[n];
            if !v.is_finite() {
                return None;
            }
            return Some((vec![n], v));
        }

        // Middle columns, highest suffix first; the `known` trailing
        // columns (base, plus any warm-start copies) are already in
        // place. Chunks write disjoint slices of the current column.
        let known = reuse.max(1);
        let mut prev_valid = plane.col_len[p - known].checked_sub(1)?;
        for i in (1..p - known).rev() {
            let (comm, comp) = self.tab(i);
            let cap = match bound {
                Some(b) => comm.partition_point(|&c| c <= b).checked_sub(1)?,
                None => n,
            };
            // Cells past prev_valid + cap have no candidate with both an
            // in-bound Tcomm and an in-bound suffix — skip them outright.
            let len = if bound.is_some() { (prev_valid + cap).min(n) + 1 } else { n + 1 };
            let (head, tail) = plane.cost.split_at_mut((i + 1) * stride);
            let cur = &mut head[i * stride..];
            let prev = &tail[..stride];
            let choice = &mut plane.choice[i * stride..(i + 1) * stride];
            let ctx = ColumnCtx {
                algo: self.column_algo(prev, prev_valid),
                comm,
                comp,
                prev,
                prev_valid,
                cap,
                bound,
            };
            self.compute_column(&ctx, &mut cur[..len], &mut choice[..len]);
            // Zero-allocated plane: the cells this column skips outright
            // must read as out-of-bound (no-op when unpruned).
            for v in &mut cur[len..stride] {
                *v = f64::INFINITY;
            }
            plane.col_len[i] = len;
            prev_valid = match bound {
                Some(b) => match cur[..len].iter().position(|&v| v > b) {
                    Some(0) => return None,
                    Some(q) => q - 1,
                    None => len - 1,
                },
                None => n,
            };
        }

        // Top column: reconstruction starts at (d = n, i = 0), so only
        // that single cell is ever read — compute just it (its column
        // keeps `col_len[0] = 0`: never reusable by a warm start).
        let (comm, comp) = self.tab(0);
        let cap = match bound {
            Some(b) => comm.partition_point(|&c| c <= b).checked_sub(1)?,
            None => n,
        };
        let (head, tail) = plane.cost.split_at_mut(stride);
        let prev = &tail[..stride];
        let ctx = ColumnCtx {
            algo: self.column_algo(prev, prev_valid),
            comm,
            comp,
            prev,
            prev_valid,
            cap,
            bound,
        };
        let (makespan, top_e) = ctx.cell(n);
        head[n] = makespan;
        plane.choice[n] = top_e;
        if bound.is_some() && !makespan.is_finite() {
            return None;
        }

        // Reconstruction. Every cell on the path has value <= the bound,
        // so with pruning it was computed, not skipped; the finiteness
        // checks below are the safety net behind the fallback.
        let mut counts = vec![0usize; p];
        let mut d = n;
        counts[0] = top_e as usize;
        d -= counts[0];
        for (i, c) in counts.iter_mut().enumerate().take(p - 1).skip(1) {
            if !plane.col(i)[d].is_finite() {
                return None;
            }
            let e = plane.choice_col(i)[d] as usize;
            *c = e;
            d = d.checked_sub(e)?;
        }
        counts[p - 1] = d;
        Some((counts, makespan))
    }

    /// Computes one column slice (`cost`/`choice` are the first `len`
    /// cells of the column in the plane), chunked over the worker
    /// threads. Cells skipped by a pruning early-stop are written
    /// `+inf`, which downstream logic treats as out-of-bound.
    fn compute_column(&self, ctx: &ColumnCtx<'_>, cost: &mut [f64], choice: &mut [u32]) {
        let len = cost.len();
        if self.threads <= 1 || len <= self.chunk {
            let mut chunk_span = span::span_with_parent("dp", "dp.chunk", self.span_parent);
            let evaluated = ctx.run_chunk(0, cost, choice);
            chunk_span.attr("start", 0);
            chunk_span.attr("len", len);
            chunk_span.attr("evaluated", evaluated);
            self.stats.cells.add(evaluated as u64);
            self.stats.prune_hits.add((len - evaluated) as u64);
            return;
        }
        let jobs: Vec<(usize, &mut [f64], &mut [u32])> = cost
            .chunks_mut(self.chunk)
            .zip(choice.chunks_mut(self.chunk))
            .enumerate()
            .map(|(k, (c, ch))| (k * self.chunk, c, ch))
            .collect();
        let workers = self.threads.min(jobs.len());
        let queue = Mutex::new(jobs);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| {
                    let t0 = Instant::now();
                    let (mut evaluated, mut skipped) = (0u64, 0u64);
                    loop {
                        let job = queue.lock().expect("column queue poisoned").pop();
                        match job {
                            Some((start, c, ch)) => {
                                let chunk_len = c.len();
                                let mut chunk_span =
                                    span::span_with_parent("dp", "dp.chunk", self.span_parent);
                                let done = ctx.run_chunk(start, c, ch);
                                chunk_span.attr("start", start);
                                chunk_span.attr("len", chunk_len);
                                chunk_span.attr("evaluated", done);
                                evaluated += done as u64;
                                skipped += (chunk_len - done) as u64;
                            }
                            None => break,
                        }
                    }
                    self.stats.cells.add(evaluated);
                    self.stats.prune_hits.add(skipped);
                    self.stats.busy.observe(t0.elapsed().as_secs_f64());
                });
            }
        })
        .expect("column workers do not panic");
    }
}

/// Everything one column's cells need, shareable across worker threads.
struct ColumnCtx<'a> {
    algo: Algo,
    comm: &'a [f64],
    comp: &'a [f64],
    prev: &'a [f64],
    /// Largest `d` of the previous column with an in-bound value
    /// (`n` when unpruned).
    prev_valid: usize,
    /// Largest `e` with `Tcomm(i, e) <= bound` (`n` when unpruned).
    cap: usize,
    bound: Option<f64>,
}

impl ColumnCtx<'_> {
    #[inline]
    fn cell(&self, d: usize) -> (f64, u32) {
        match self.algo {
            Algo::Basic => dp_kernel::basic_cell(self.comm, self.comp, self.prev, d),
            // The D&C kernel computes whole chunks, not lone cells; a
            // single cell (the top column) goes through Algorithm 2's
            // cell, which is bit-identical.
            Algo::Optimized | Algo::Dc => {
                let lo = d.saturating_sub(self.prev_valid);
                let lim = d.min(self.cap);
                if lo > lim {
                    // No candidate has both Tcomm and suffix in bound:
                    // the true value exceeds the bound.
                    return (f64::INFINITY, 0);
                }
                dp_kernel::optimized_cell(self.comm, self.comp, self.prev, d, lo, lim)
            }
        }
    }

    /// Fills one chunk, returning how many cells it actually evaluated.
    ///
    /// The D&C kernel hands the whole chunk to [`dp_kernel::dc_chunk`]
    /// (it never runs pruned). The per-cell kernels fill ascending; with
    /// a pruning bound the chunk stops at its first out-of-bound cell
    /// (column values are non-decreasing in `d`, so everything after it
    /// is out of bound too), and the remaining cells are written `+inf`.
    fn run_chunk(&self, start: usize, cost: &mut [f64], choice: &mut [u32]) -> usize {
        if self.algo == Algo::Dc {
            debug_assert!(self.bound.is_none(), "the D&C kernel never runs pruned");
            dp_kernel::dc_chunk(self.comm, self.comp, self.prev, start, cost, choice);
            return cost.len();
        }
        for k in 0..cost.len() {
            let (v, e) = self.cell(start + k);
            cost[k] = v;
            choice[k] = e;
            if self.bound.is_some_and(|b| v > b) {
                // Zero-allocated plane: the early-stopped remainder of
                // the chunk must read as out-of-bound.
                for slot in &mut cost[k + 1..] {
                    *slot = f64::INFINITY;
                }
                return k + 1;
            }
        }
        cost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostFn, Processor};
    use crate::dp_basic::optimal_distribution_basic;
    use crate::dp_optimized::optimal_distribution;
    use crate::paper::table1_platform;

    fn view(ps: &[Processor]) -> Vec<&Processor> {
        ps.iter().collect()
    }

    fn assert_bit_identical(a: &DpSolution, b: &DpSolution, what: &str) {
        assert_eq!(a.counts, b.counts, "{what}: counts differ");
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "{what}: makespans differ ({} vs {})",
            a.makespan,
            b.makespan
        );
    }

    fn table1_view(p: usize) -> (crate::cost::Platform, Vec<usize>) {
        let full = table1_platform();
        let sub =
            crate::cost::Platform::new(full.procs()[..p].to_vec(), 0).expect("subset platform");
        let order =
            crate::ordering::scatter_order(&sub, crate::ordering::OrderPolicy::DescendingBandwidth);
        (sub, order)
    }

    #[test]
    fn parallel_matches_serial_on_table1() {
        let (sub, order) = table1_view(8);
        let v = sub.ordered(&order);
        for n in [0usize, 1, 17, 500, 3000] {
            let serial = optimal_distribution(&v, n).unwrap();
            for threads in [1usize, 2, 5] {
                let opts = ParallelOpts { threads, prune: false, chunk: 64 };
                let par = optimal_distribution_parallel(&v, n, &opts).unwrap();
                assert_bit_identical(&par, &serial, &format!("n={n} threads={threads}"));
            }
        }
    }

    #[test]
    fn pruned_matches_serial_on_table1() {
        let (sub, order) = table1_view(16);
        let v = sub.ordered(&order);
        for n in [0usize, 1, 100, 2500] {
            let serial = optimal_distribution(&v, n).unwrap();
            for threads in [1usize, 3] {
                let opts = ParallelOpts { threads, prune: true, chunk: 128 };
                let pruned = optimal_distribution_parallel(&v, n, &opts).unwrap();
                assert_bit_identical(&pruned, &serial, &format!("n={n} threads={threads}"));
            }
        }
    }

    #[test]
    fn pruned_matches_serial_on_affine_costs() {
        let ps = vec![
            Processor::affine("a", 0.4, 0.5, 0.9, 2.0),
            Processor::affine("b", 0.2, 1.0, 0.1, 1.0),
            Processor::affine("root", 0.0, 0.0, 0.0, 3.0),
        ];
        let v = view(&ps);
        for n in 0..=40 {
            let serial = optimal_distribution(&v, n).unwrap();
            let opts = ParallelOpts { threads: 2, prune: true, chunk: 4 };
            let pruned = optimal_distribution_parallel(&v, n, &opts).unwrap();
            assert_bit_identical(&pruned, &serial, &format!("n={n}"));
        }
    }

    #[test]
    fn prune_without_affine_costs_degrades_gracefully() {
        // Tabulated costs have no analytic bound seed: the solve must
        // silently run unpruned and still be exact.
        let ps = vec![
            Processor {
                name: "measured".into(),
                comm: CostFn::table(vec![(10, 1.0), (100, 8.0)]),
                comp: CostFn::table(vec![(10, 5.0), (50, 20.0), (100, 60.0)]),
            },
            Processor::linear("root", 0.0, 1.0),
        ];
        let v = view(&ps);
        let serial = optimal_distribution(&v, 120).unwrap();
        let table = CostTable::new();
        let opts = ParallelOpts { threads: 2, prune: true, chunk: 16 };
        let (sol, timing) =
            optimal_distribution_parallel_timed(&table, &v, 120, &opts).unwrap();
        assert_bit_identical(&sol, &serial, "tabulated");
        assert!(!timing.pruned, "no bound seed available");
    }

    #[test]
    fn basic_parallel_matches_serial() {
        let ps = vec![
            Processor::linear("a", 0.5, 2.0),
            Processor::linear("b", 1.0, 1.0),
            Processor::linear("root", 0.0, 3.0),
        ];
        let v = view(&ps);
        for n in [0usize, 1, 9, 64, 201] {
            let serial = optimal_distribution_basic(&v, n).unwrap();
            for threads in [2usize, 8] {
                let opts = ParallelOpts { threads, prune: false, chunk: 32 };
                let par = optimal_distribution_basic_parallel(&v, n, &opts).unwrap();
                assert_bit_identical(&par, &serial, &format!("basic n={n} threads={threads}"));
            }
        }
    }

    #[test]
    fn dc_parallel_matches_serial_optimized() {
        let (sub, order) = table1_view(8);
        let v = sub.ordered(&order);
        for n in [0usize, 1, 17, 500, 3000] {
            let serial = optimal_distribution(&v, n).unwrap();
            for threads in [1usize, 2, 5] {
                let opts = ParallelOpts { threads, prune: false, chunk: 64 };
                let dc = optimal_distribution_dc_parallel(&v, n, &opts).unwrap();
                assert_bit_identical(&dc, &serial, &format!("dc n={n} threads={threads}"));
            }
        }
    }

    #[test]
    fn dc_ignores_prune_and_stays_exact() {
        let (sub, order) = table1_view(16);
        let v = sub.ordered(&order);
        let n = 2500;
        let serial = optimal_distribution(&v, n).unwrap();
        let table = CostTable::new();
        let opts = ParallelOpts { threads: 3, prune: true, chunk: 128 };
        let (dc, timing) = solve(Algo::Dc, &table, &v, n, &opts).unwrap();
        assert_bit_identical(&dc, &serial, "dc pruned-requested");
        assert!(!timing.pruned, "the D&C kernel never prunes");
        assert_eq!(timing.strategy, "exact-dc");
    }

    #[test]
    fn dc_falls_back_on_non_monotone_costs() {
        let ps = vec![
            Processor::custom("dec", |x| 10.0 - x as f64 * 0.01, |x| x as f64),
            Processor::linear("mid", 0.5, 2.0),
            Processor::linear("root", 0.0, 1.0),
        ];
        let v = view(&ps);
        let basic = optimal_distribution_basic(&v, 64).unwrap();
        for threads in [1usize, 4] {
            let opts = ParallelOpts { threads, prune: false, chunk: 16 };
            let dc = optimal_distribution_dc_parallel(&v, 64, &opts).unwrap();
            assert_bit_identical(&dc, &basic, &format!("fallback threads={threads}"));
        }
    }

    #[test]
    fn warm_start_matches_cold_solve_bit_for_bit() {
        let (sub, order) = table1_view(8);
        let v = sub.ordered(&order);
        let table = CostTable::new();
        let opts = ParallelOpts::serial();
        // Cold solve over the full platform keeps its plane.
        let (_, _, plane) = solve_full(Algo::Optimized, &table, &v, 3000, &opts, None).unwrap();
        // "Fail" the first two processors: the survivors are exactly the
        // trailing 6, so their 5 trailing columns (all but the top) can
        // be reused for any residual <= 3000.
        let survivors: Vec<&Processor> = v[2..].to_vec();
        for residual in [0usize, 1, 700, 2999] {
            let cold = solve_full(Algo::Optimized, &table, &survivors, residual, &opts, None)
                .unwrap();
            let warm_src = WarmStart { plane: &plane, reuse: survivors.len() - 1 };
            let warm =
                solve_full(Algo::Optimized, &table, &survivors, residual, &opts, Some(&warm_src))
                    .unwrap();
            assert_bit_identical(&warm.0, &cold.0, &format!("warm residual={residual}"));
            // The warm plane must itself be a valid cache source.
            let again = WarmStart { plane: &warm.2, reuse: survivors.len() - 1 };
            let rewarm =
                solve_full(Algo::Optimized, &table, &survivors, residual, &opts, Some(&again))
                    .unwrap();
            assert_bit_identical(&rewarm.0, &cold.0, &format!("rewarm residual={residual}"));
        }
    }

    #[test]
    fn warm_start_skips_reused_columns() {
        use crate::metrics::{MetricsSnapshot, Registry};
        let get = |s: &MetricsSnapshot, name: &str| {
            s.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
        };
        let (sub, order) = table1_view(8);
        let v = sub.ordered(&order);
        let table = CostTable::new();
        let opts = ParallelOpts::serial();
        let (_, _, plane) = solve_full(Algo::Dc, &table, &v, 2000, &opts, None).unwrap();
        let survivors: Vec<&Processor> = v[3..].to_vec();
        let residual = 1500usize;
        let before = Registry::global().snapshot();
        let warm_src = WarmStart { plane: &plane, reuse: survivors.len() - 1 };
        solve_full(Algo::Dc, &table, &survivors, residual, &opts, Some(&warm_src)).unwrap();
        let after = Registry::global().snapshot();
        // Only the top cell is computed: every middle + base column was
        // copied. The cells counter may move from concurrent tests, but
        // the warm counters are ticked exactly once here.
        assert!(
            get(&after, "dp_warm_solves_total") > get(&before, "dp_warm_solves_total"),
            "warm solve must tick dp_warm_solves_total"
        );
        assert!(
            get(&after, "dp_warm_columns_reused_total")
                >= get(&before, "dp_warm_columns_reused_total") + (survivors.len() - 1) as u64,
            "reused columns must be counted"
        );
    }

    #[test]
    fn too_large_is_an_error_not_a_panic() {
        let ps = vec![Processor::linear("root", 0.0, 1.0)];
        let n = u32::MAX as usize + 1;
        assert!(matches!(
            optimal_distribution_parallel(&view(&ps), n, &ParallelOpts::serial()),
            Err(PlanError::TooLarge { max, .. }) if max == u32::MAX as usize
        ));
        assert!(matches!(
            optimal_distribution_basic_parallel(&view(&ps), n, &ParallelOpts::serial()),
            Err(PlanError::TooLarge { .. })
        ));
    }

    #[test]
    fn timing_block_is_coherent() {
        let (sub, order) = table1_view(4);
        let v = sub.ordered(&order);
        let table = CostTable::new();
        let opts = ParallelOpts { threads: 2, prune: true, chunk: 0 };
        let (_, timing) = optimal_distribution_parallel_timed(&table, &v, 800, &opts).unwrap();
        assert_eq!(timing.strategy, "exact");
        assert_eq!(timing.threads, 2);
        assert!(timing.pruned, "linear costs seed a closed-form bound");
        assert!(timing.total_secs >= timing.solve_secs);
        assert!(timing.tabulate_secs >= 0.0);
        assert!(timing.cache_misses > 0, "first solve must tabulate");
        // Re-solving through the same table is all hits.
        let (_, timing2) = optimal_distribution_parallel_timed(&table, &v, 800, &opts).unwrap();
        assert_eq!(timing2.cache_misses, 0);
        assert!(timing2.cache_hits > 0);
    }

    #[test]
    fn pruning_saves_work_but_not_accuracy_at_scale() {
        let (sub, order) = table1_view(16);
        let v = sub.ordered(&order);
        let n = 20_000;
        let serial = optimal_distribution(&v, n).unwrap();
        let opts = ParallelOpts { threads: 1, prune: true, chunk: 0 };
        let pruned = optimal_distribution_parallel(&v, n, &opts).unwrap();
        assert_bit_identical(&pruned, &serial, "n=20000 pruned");
    }

    #[test]
    fn solves_feed_the_global_metrics_registry() {
        // Deltas, not absolutes: the test harness shares the global
        // registry across concurrently running tests.
        use crate::metrics::{MetricsSnapshot, Registry};
        let get = |s: &MetricsSnapshot, name: &str| {
            s.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
        };
        let before = Registry::global().snapshot();
        let (sub, order) = table1_view(4);
        let v = sub.ordered(&order);
        let opts = ParallelOpts { threads: 2, prune: false, chunk: 64 };
        optimal_distribution_parallel(&v, 500, &opts).unwrap();
        let after = Registry::global().snapshot();
        assert!(get(&after, "dp_solves_total") > get(&before, "dp_solves_total"));
        // Unpruned 4-proc solve: ≥ (p−1 columns) · (n+1) cells minus the
        // single-cell top column; at least one full column plus the base.
        assert!(
            get(&after, "dp_cells_evaluated_total")
                >= get(&before, "dp_cells_evaluated_total") + 2 * 501
        );
        assert!(get(&after, "dp_cache_misses_total") > get(&before, "dp_cache_misses_total"));
    }

    #[test]
    fn thread_count_zero_resolves_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
