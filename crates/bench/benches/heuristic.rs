//! Criterion bench: the guaranteed LP heuristic and the closed form at
//! paper scale (n = 817,101, p = 16) — "instantaneous" in §5.2.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_scatter::closed_form::closed_form_distribution;
use gs_scatter::heuristic::heuristic_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::{table1_platform, N_RAYS_1999};

fn bench_heuristic(c: &mut Criterion) {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let mut group = c.benchmark_group("heuristic");
    group.sample_size(10);
    for n in [10_000usize, N_RAYS_1999] {
        group.bench_with_input(BenchmarkId::new("lp_heuristic", n), &n, |b, &n| {
            b.iter(|| heuristic_distribution(&view, n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("closed_form", n), &n, |b, &n| {
            b.iter(|| closed_form_distribution(&view, n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristic);
criterion_main!(benches);
