//! Criterion bench: the three exact DP kernels (Algorithm 1, Algorithm
//! 2, divide-and-conquer) head to head on `p ∈ {8, 64}` and
//! `n ∈ {10⁴, 10⁵}` — all bit-identical in output, differing only in
//! how they locate each cell's minimum. Algorithm 1 is quadratic per
//! cell and only run at the small size; the D&C kernel's contract
//! (≥ 3× over Algorithm 2 at p = 64, n = 10⁵) is enforced by the bench
//! gate from the committed `BENCH_dp.json`, this bench is for local
//! profiling of the same claim.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_bench::experiments::runtimes::dp_perf_platform;
use gs_scatter::cost_table::CostTable;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::parallel::{
    optimal_distribution_basic_parallel_timed, optimal_distribution_dc_parallel_timed,
    optimal_distribution_parallel_timed, ParallelOpts,
};

fn bench_dc_dp(c: &mut Criterion) {
    let serial = ParallelOpts { threads: 1, prune: false, chunk: 0 };
    for p in [8usize, 64] {
        let platform = dp_perf_platform(p);
        let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
        let view = platform.ordered(&order);
        let mut group = c.benchmark_group(format!("dc_dp/p{p}"));
        group.sample_size(10);
        for n in [10_000usize, 100_000] {
            // Pre-warmed shared table: every kernel times the solve,
            // not the tabulation.
            let table = CostTable::new();
            for pr in &view {
                table.tabulate(&pr.comm, n);
                table.tabulate(&pr.comp, n);
            }
            // Algorithm 1 is O(p·n²): only feasible at the small size.
            if n <= 10_000 {
                group.bench_with_input(BenchmarkId::new("basic", n), &n, |b, &n| {
                    b.iter(|| {
                        optimal_distribution_basic_parallel_timed(&table, &view, n, &serial)
                            .unwrap()
                    })
                });
            }
            group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, &n| {
                b.iter(|| {
                    optimal_distribution_parallel_timed(&table, &view, n, &serial).unwrap()
                })
            });
            group.bench_with_input(BenchmarkId::new("dc", n), &n, |b, &n| {
                b.iter(|| {
                    optimal_distribution_dc_parallel_timed(&table, &view, n, &serial).unwrap()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_dc_dp);
criterion_main!(benches);
