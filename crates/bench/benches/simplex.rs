//! Criterion bench: exact rational simplex on scatter-shaped LPs.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_lp::{LpProblem, Sense};
use gs_numeric::Rational;

/// Builds the Eq. (3) LP for p synthetic processors and n items.
fn scatter_lp(p: usize, n: u64) -> LpProblem {
    let mut lp = LpProblem::new(Sense::Minimize);
    let t = lp.add_var("T");
    let vars: Vec<_> = (0..p).map(|i| lp.add_var(format!("n{i}"))).collect();
    lp.set_objective([(t, Rational::one())]);
    lp.add_eq(vars.iter().map(|&v| (v, Rational::one())), Rational::from(n));
    for i in 0..p {
        let mut terms: Vec<_> = (0..=i)
            .map(|j| (vars[j], Rational::from_ratio(1 + j as i64, 100_000)))
            .collect();
        terms.push((t, -Rational::one()));
        lp.add_le(terms, Rational::zero());
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for p in [4usize, 8, 16, 32] {
        let lp = scatter_lp(p, 817_101);
        group.bench_with_input(BenchmarkId::new("scatter_lp", p), &lp, |b, lp| {
            b.iter(|| lp.solve().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
