//! Criterion bench: the discrete-event simulator on the Table-1 grid.
use criterion::{criterion_group, criterion_main, Criterion};
use gs_gridsim::sim::{simulate_scatter, SimConfig};
use gs_scatter::distribution::uniform_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::{table1_platform, N_RAYS_1999};

fn bench_sim(c: &mut Criterion) {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let counts = uniform_distribution(16, N_RAYS_1999);
    c.bench_function("simulate_scatter_p16", |b| {
        b.iter(|| simulate_scatter(&view, &counts, &SimConfig::ideal()))
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
