//! Criterion bench: the Algorithm-2 engine variants (serial, parallel,
//! pruned, parallel+pruned) at a fixed problem size — all bit-identical,
//! differing only in wall time.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_scatter::cost_table::CostTable;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::table1_platform;
use gs_scatter::parallel::{optimal_distribution_parallel_timed, ParallelOpts};

fn bench_parallel_dp(c: &mut Criterion) {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let n = 20_000usize;
    // Pre-warmed shared table: every variant times the solve, not the
    // tabulation.
    let table = CostTable::new();
    for pr in &view {
        table.tabulate(&pr.comm, n);
        table.tabulate(&pr.comp, n);
    }
    let variants = [
        ("serial", ParallelOpts { threads: 1, prune: false, chunk: 0 }),
        ("parallel4", ParallelOpts { threads: 4, prune: false, chunk: 0 }),
        ("pruned", ParallelOpts { threads: 1, prune: true, chunk: 0 }),
        ("parallel4_pruned", ParallelOpts { threads: 4, prune: true, chunk: 0 }),
    ];
    let mut group = c.benchmark_group("parallel_dp");
    group.sample_size(10);
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
            b.iter(|| optimal_distribution_parallel_timed(&table, &view, n, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_dp);
criterion_main!(benches);
