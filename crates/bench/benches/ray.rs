//! Criterion bench: per-ray tracing cost (the α being load-balanced).
use criterion::{criterion_group, criterion_main, Criterion};
use gs_seismic::{generate_catalog, EarthModel, WaveType};

fn bench_ray(c: &mut Criterion) {
    let model = EarthModel::default();
    let events = generate_catalog(64, 7);
    c.bench_function("trace_ray_p60deg", |b| {
        b.iter(|| gs_seismic::trace_ray(&model, true, 33.0, 60f64.to_radians()))
    });
    c.bench_function("trace_catalog_64", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for ev in &events {
                let ray = gs_seismic::trace_ray(
                    &model,
                    ev.wave == WaveType::P,
                    ev.source.depth_km,
                    ev.delta().max(0.01),
                );
                sum += ray.travel_time;
            }
            sum
        })
    });
}

criterion_group!(benches, bench_ray);
criterion_main!(benches);
