//! Criterion bench: the extension/baseline machinery — dynamic
//! master/worker, multi-installment simulation, source rewriting.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_gridsim::installments::{simulate_installments, split_installments};
use gs_gridsim::masterworker::{simulate_master_worker, MasterWorkerConfig};
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::table1_platform;
use gs_scatter::planner::{Planner, Strategy};
use gs_transform::transform_source;

fn bench_baselines(c: &mut Criterion) {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let workers: Vec<_> = view[..15].to_vec();

    let mut group = c.benchmark_group("baselines");
    for chunk in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("master_worker_817k", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    simulate_master_worker(
                        &workers,
                        817_101,
                        &MasterWorkerConfig {
                            chunk_size: chunk,
                            request_latency: 0.1,
                            loads: vec![],
                        },
                    )
                })
            },
        );
    }

    let plan = Planner::new(platform.clone())
        .strategy(Strategy::Heuristic)
        .plan(817_101)
        .unwrap();
    let counts = plan.counts_in_order();
    for k in [4usize, 32] {
        let rounds = split_installments(&counts, k);
        group.bench_with_input(BenchmarkId::new("installments", k), &rounds, |b, rounds| {
            b.iter(|| simulate_installments(&view, rounds))
        });
    }

    let source = include_str!("../src/bin/run_all.rs")
        .replace("run_all", "MPI_Scatter(a, 1, T, b, 1, T, 0, C)");
    group.bench_function("transform_source_4kB", |b| {
        b.iter(|| transform_source(&source))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
