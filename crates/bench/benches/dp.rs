//! Criterion bench: Algorithm 1 vs Algorithm 2 across problem sizes —
//! the §5.2 "two days vs six minutes" comparison in miniature.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gs_scatter::dp_basic::optimal_distribution_basic;
use gs_scatter::dp_optimized::optimal_distribution;
use gs_scatter::ordering::{scatter_order, OrderPolicy};
use gs_scatter::paper::table1_platform;

fn bench_dp(c: &mut Criterion) {
    let platform = table1_platform();
    let order = scatter_order(&platform, OrderPolicy::DescendingBandwidth);
    let view = platform.ordered(&order);
    let mut group = c.benchmark_group("dp");
    group.sample_size(10);
    for n in [200usize, 1_000, 4_000] {
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, &n| {
            b.iter(|| optimal_distribution_basic(&view, n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, &n| {
            b.iter(|| optimal_distribution(&view, n).unwrap())
        });
    }
    // Algorithm 2 alone scales much further.
    for n in [20_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, &n| {
            b.iter(|| optimal_distribution(&view, n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
