//! Criterion bench: the exact-arithmetic substrate.
use criterion::{criterion_group, criterion_main, Criterion};
use gs_numeric::{BigUint, Rational};
use std::str::FromStr;

fn bench_numeric(c: &mut Criterion) {
    let a = BigUint::from_str(&"123456789".repeat(12)).unwrap();
    let b = BigUint::from_str(&"987654321".repeat(8)).unwrap();
    c.bench_function("biguint_mul_108x72_digits", |bch| bch.iter(|| &a * &b));
    c.bench_function("biguint_divrem", |bch| bch.iter(|| a.divrem(&b)));
    c.bench_function("biguint_gcd", |bch| bch.iter(|| a.gcd(&b)));

    let x = Rational::from_f64(0.009288).unwrap();
    let y = Rational::from_f64(1.12e-5).unwrap();
    c.bench_function("rational_add_f64_coeffs", |bch| bch.iter(|| &x + &y));
    c.bench_function("rational_mul_f64_coeffs", |bch| bch.iter(|| &x * &y));
}

criterion_group!(benches, bench_numeric);
criterion_main!(benches);
