//! Degraded-grid sweep on the Table-1 platform: what each failure mode
//! costs the fault-oblivious (degraded) run in *lost items* and the
//! recovering run in *makespan* (`docs/robustness.md`).
//!
//! Flags: `--rays N` (items, default the paper's 817,101),
//! `--seeds K` (random fault mixes, default 3),
//! `--json PATH` (machine-readable output, default `BENCH_faults.json`),
//! `--smoke` (tiny size for CI).
use gs_bench::experiments::faultexp::{fault_sweep, fault_sweep_json, replan_timing};
use gs_bench::util::{arg_flag, arg_str, arg_usize};
use gs_scatter::paper::N_RAYS_1999;

fn main() {
    let smoke = arg_flag("--smoke");
    let n = arg_usize("--rays", if smoke { 2_000 } else { N_RAYS_1999 });
    let n_seeds = arg_usize("--seeds", 3);
    let json_path = arg_str("--json", "BENCH_faults.json");
    let seeds: Vec<u64> = (0..n_seeds as u64).map(|s| 1999 + s).collect();

    println!("degraded-grid sweep on the Table-1 platform, n = {n} items");
    let (platform, rows) = fault_sweep(n, &seeds);
    println!(
        "(first-served rank: {}; root: {})\n",
        platform.procs()[0].name,
        platform.procs()[platform.len() - 1].name
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>9} {:>16}",
        "scenario", "clean(s)", "degr.(s)", "lost", "recov.(s)", "ovhd(%)", "flt/rty/rpl"
    );
    for r in &rows {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>10} {:>10.2} {:>9.2} {:>16}",
            r.scenario,
            r.clean_makespan,
            r.degraded_makespan,
            r.degraded_lost,
            r.recovered_makespan,
            r.overhead_pct,
            format!("{}/{}/{}", r.faults, r.retries, r.replans),
        );
    }
    println!(
        "\nreading: `lost` is what the static plan silently never computes; \
         `ovhd` is what full recovery costs over the fault-free makespan."
    );
    let (cold, warm) = replan_timing(n);
    println!(
        "re-plan after losing the first-served rank (bit-identical plans): \
         cold {:.1} ms, warm-start {:.1} ms ({:.2}x faster)",
        cold * 1e3,
        warm * 1e3,
        cold / warm
    );
    let json = fault_sweep_json(n, &rows, Some((cold, warm)));
    std::fs::write(&json_path, &json).expect("writable --json path");
    println!("wrote {json_path}");
}
