//! §5.2 heuristic quality: relative error vs the exact optimum.
use gs_bench::experiments::runtimes::heuristic_error;
use gs_bench::util::arg_usize;
fn main() {
    let max_n = arg_usize("--max-n", 200_000);
    let mut ns = vec![1_000usize, 10_000, 50_000, 200_000];
    ns.retain(|&n| n <= max_n);
    println!("heuristic vs exact optimum on the Table-1 platform (paper: rel. error < 6e-6 at n = 817,101)");
    println!("{:>9} {:>14} {:>14} {:>12} {:>14} {:>7}", "n", "optimal (s)", "heuristic (s)", "rel. error", "Eq.(4) bound", "ok");
    for r in heuristic_error(&ns) {
        println!(
            "{:>9} {:>14.4} {:>14.4} {:>12.2e} {:>14.4} {:>7}",
            r.n, r.optimal, r.heuristic, r.rel_error, r.bound, r.within_bound
        );
    }
}
