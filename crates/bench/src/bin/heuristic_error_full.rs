//! One-off: heuristic error at the paper's exact n.
fn main() {
    let rows = gs_bench::experiments::runtimes::heuristic_error(&[817_101]);
    let r = &rows[0];
    println!("n={} optimal={:.4} heuristic={:.4} rel={:.2e} bound_ok={}", r.n, r.optimal, r.heuristic, r.rel_error, r.within_bound);
}
